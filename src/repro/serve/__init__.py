"""Serving runtime for deployed MF-DFP networks.

Layered front door for heavy-traffic workloads, from a single queue to
a supervised concurrent multi-tenant server:

* :func:`repro.serve.batching.predict_many` — chunk an ``(N, ...)``
  array into order-preserving micro-batches.
* :class:`repro.serve.batching.MicroBatchQueue` — submit single-sample
  requests, flush in batches, collect per-ticket logits; ``close``
  drains or rejects in-flight work, never drops it.
* :class:`repro.serve.batching.AdaptiveBatchPolicy` — SLO-driven batch
  sizing: grow under queue pressure, shrink when recent p99 latency
  exceeds the target.
* :class:`repro.serve.registry.ModelRegistry` — named deployable
  models, built lazily and compiled once behind the thread-safe
  content-addressed :class:`repro.core.engine.EngineCache`; store-backed
  registries pin and roll model versions.
* :class:`repro.serve.supervisor.Supervisor` /
  :class:`repro.serve.supervisor.ModelActor` — the supervision tree:
  per-model actors whose deaths (build crashes, poisoned batches) are
  restarted with capped exponential backoff
  (:class:`repro.serve.supervisor.SupervisorPolicy`) and quarantined
  after repeated failure, isolating faults per model.
* :class:`repro.serve.runtime.ServerRuntime` — the facade: admission
  control (typed load shedding), zero-downtime version rollover, the
  structured health surface, and per-model
  :class:`repro.serve.metrics.ModelMetrics`.
* :mod:`repro.serve.errors` — the typed rejections
  (:class:`UnknownModelError`, :class:`QueueFullError`,
  :class:`ServerClosedError`, :class:`ModelQuarantinedError`).
* :mod:`repro.serve.faults` — deterministic fault-injection doubles
  (crashing engines, flaky builders) for the supervision test harness.

Exposed on the command line as ``python -m repro serve``.
"""

from repro.serve.batching import (
    AdaptiveBatchPolicy,
    MicroBatchQueue,
    ServeStats,
    predict_many,
)
from repro.serve.errors import (
    ModelQuarantinedError,
    QueueFullError,
    ServeError,
    ServerClosedError,
    UnknownModelError,
)
from repro.serve.faults import (
    CrashError,
    CrashingEngine,
    FlakyBuilder,
    crash_schedule,
)
from repro.serve.metrics import ModelMetrics
from repro.serve.registry import ModelRegistry
from repro.serve.runtime import ServerRuntime
from repro.serve.supervisor import ModelActor, Supervisor, SupervisorPolicy

__all__ = [
    "AdaptiveBatchPolicy",
    "CrashError",
    "CrashingEngine",
    "FlakyBuilder",
    "MicroBatchQueue",
    "ModelActor",
    "ModelMetrics",
    "ModelQuarantinedError",
    "ModelRegistry",
    "QueueFullError",
    "ServeError",
    "ServerClosedError",
    "ServerRuntime",
    "ServeStats",
    "Supervisor",
    "SupervisorPolicy",
    "UnknownModelError",
    "crash_schedule",
    "predict_many",
]
