"""Serving front door for deployed MF-DFP networks.

Wraps the compiled :class:`repro.core.engine.BatchedEngine` with request
batching so heavy-traffic workloads amortize per-call overheads across
micro-batches:

* :func:`repro.serve.batching.predict_many` — chunk an ``(N, ...)``
  array into order-preserving micro-batches.
* :class:`repro.serve.batching.MicroBatchQueue` — submit single-sample
  requests, flush in batches, collect per-ticket logits.

Exposed on the command line as ``python -m repro serve``.
"""

from repro.serve.batching import MicroBatchQueue, ServeStats, predict_many

__all__ = ["MicroBatchQueue", "ServeStats", "predict_many"]
