"""Serving runtime for deployed MF-DFP networks.

Layered front door for heavy-traffic workloads, from a single queue to
a concurrent multi-tenant server:

* :func:`repro.serve.batching.predict_many` — chunk an ``(N, ...)``
  array into order-preserving micro-batches.
* :class:`repro.serve.batching.MicroBatchQueue` — submit single-sample
  requests, flush in batches, collect per-ticket logits; ``close``
  drains or rejects in-flight work, never drops it.
* :class:`repro.serve.registry.ModelRegistry` — named deployable
  models, built lazily and compiled once behind the thread-safe
  content-addressed :class:`repro.core.engine.EngineCache`.
* :class:`repro.serve.runtime.ServerRuntime` — a worker pool draining
  per-model bounded queues concurrently, with admission control
  (typed load shedding) and per-model
  :class:`repro.serve.metrics.ModelMetrics`.
* :mod:`repro.serve.errors` — the typed rejections
  (:class:`UnknownModelError`, :class:`QueueFullError`,
  :class:`ServerClosedError`).

Exposed on the command line as ``python -m repro serve``.
"""

from repro.serve.batching import MicroBatchQueue, ServeStats, predict_many
from repro.serve.errors import (
    QueueFullError,
    ServeError,
    ServerClosedError,
    UnknownModelError,
)
from repro.serve.metrics import ModelMetrics
from repro.serve.registry import ModelRegistry
from repro.serve.runtime import ServerRuntime

__all__ = [
    "MicroBatchQueue",
    "ModelMetrics",
    "ModelRegistry",
    "QueueFullError",
    "ServeError",
    "ServerClosedError",
    "ServerRuntime",
    "ServeStats",
    "UnknownModelError",
    "predict_many",
]
