"""Supervised concurrent multi-tenant serving runtime.

:class:`ServerRuntime` hosts any number of registered models at once,
each behind its own supervised actor (see
:mod:`repro.serve.supervisor`): per-model worker threads drain per-model
bounded mailboxes, executing each claim as one micro-batch on the
model's compiled :class:`~repro.core.engine.BatchedEngine`.  The design
in one breath::

    clients ──submit()──▶ per-model actor mailboxes ──claim──▶ per-model workers
                │ admission control                       │ adaptive batch ≤ max
                ▼ (QueueFullError /                       ▼
            Future     ModelQuarantinedError)   engine.run(batch) → futures
                                                    │ crash = actor death
                                                    ▼
                              supervisor: restart w/ capped backoff,
                              quarantine after N consecutive failures

Guarantees:

* **Admission control** — each model's mailbox is bounded at
  ``max_queue``; a submit beyond the bound is shed immediately with a
  typed :class:`~repro.serve.errors.QueueFullError` (never silently
  queued or dropped), and the shed is counted in that model's metrics.
* **Failure isolation** — an exception escaping a model build or a
  batch execution kills only that model's actor: the dead batch's
  futures fail with the original error, the supervisor restarts the
  actor with capped exponential backoff, and after
  ``policy.max_failures`` consecutive failures the model is quarantined
  (typed :class:`~repro.serve.errors.ModelQuarantinedError`) while
  every other model keeps serving.
* **No cross-model bleed** — a claim takes requests from exactly one
  mailbox, so a batch only ever contains one model's samples, and each
  future is resolved from its own batch row (a private copy).
* **SLO-driven batching** — claim sizes follow
  :class:`~repro.serve.batching.AdaptiveBatchPolicy`: grow under queue
  pressure, shrink when the recent p99 exceeds ``target_p99_s``
  (latency-blind greedy fill when no target is set).
* **Zero-downtime rollover** — :meth:`rollover` resolves the new
  version while the old engine keeps serving, then swaps atomically:
  requests claimed before the swap finish on the old engine, requests
  claimed after run on the new one, nothing is dropped, and every
  future's ``serving_version`` attribute names the version that
  produced its (bit-identical) output.  Rolling over a quarantined
  model reinstates it.
* **Clean shutdown** — ``stop(drain=True)`` serves every admitted
  request before returning (crashed actors restart or quarantine mid-
  drain, so the drain always terminates); ``stop(drain=False)`` fails
  the in-flight futures with
  :class:`~repro.serve.errors.ServerClosedError`.  Either way nothing
  is silently dropped.
* **Determinism** — requests can be submitted before ``start()``; with
  one worker and one model, service order is submission order, and
  outputs are bit-identical to running each sample alone (the engine
  guarantee), whatever the interleaving.  The clock *and* the backoff
  sleep are injectable, so every supervision path is testable on a fake
  clock.

Throughput comes from micro-batching (the engine's per-sample speedup)
and per-model worker concurrency (the numpy/BLAS kernels release the
GIL, so batches of *different* models genuinely overlap).  For real
cores past the GIL, ``backend="process"`` executes batches in a
:class:`repro.parallel.ProcessPoolRunner` against engines built over
shared-memory weight planes (one mapping per model per host; see
:mod:`repro.parallel.arena`) — bit-identical outputs, identical
metrics/health surface.  ``benchmarks/bench_serve_concurrency.py``
gates raw throughput; ``benchmarks/bench_serve_slo.py`` gates
sustained-load p99 latency, rollover-under-load with zero drops, and
crash isolation; ``benchmarks/bench_scaleout.py`` gates process-worker
scaling and cross-placement bit-identity.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Callable, Iterable, Optional

import numpy as np

from repro.serve.batching import AdaptiveBatchPolicy
from repro.serve.errors import (
    ModelQuarantinedError,
    QueueFullError,
    ServerClosedError,
    UnknownModelError,
)
from repro.serve.metrics import ModelMetrics
from repro.serve.registry import ModelRegistry
from repro.serve.supervisor import (
    QUARANTINED,
    ModelActor,
    Request,
    Supervisor,
    SupervisorPolicy,
)

#: ``version`` value a rollover passes the engine provider to mean "the
#: newest published version, re-resolved now" — distinct from ``None``,
#: which restarts use to mean "whatever this model currently serves".
LATEST = "latest"


class ServerRuntime:
    """Supervised per-model actors serving micro-batch traffic concurrently.

    Args:
        registry: Where model names resolve to compiled engines (and
            versioned artifacts, when store-backed).
        models: Names to host.  Each is resolved — and compiled, once —
            up front; a *failing* build does not fail construction, it
            starts that model's actor in supervised backoff.
        workers: Worker threads per hosted model started by
            :meth:`start`.
        max_batch: Largest micro-batch one claim may execute.
        max_queue: Per-model pending bound for admission control.
        clock: Seconds-valued monotonic clock used by the metrics and
            the supervisor (injectable for tests).
        accelerator: Optional :class:`repro.hw.Accelerator` whose
            modeled silicon numbers :meth:`hw_profile` surfaces next to
            the measured metrics.
        policy: Restart/quarantine rule (default:
            :class:`SupervisorPolicy` defaults).
        batch_policy: Adaptive sizing rule; defaults to
            ``AdaptiveBatchPolicy(min_batch, max_batch, target_p99_s)``.
        target_p99_s: SLO target for the default batch policy (``None``
            = latency-blind greedy fill at ``max_batch``).
        min_batch: Smallest adaptive batch for the default policy.
        sleep: Backoff sleep used by the supervisor (injectable; tests
            pass a fake-clock-advancing sleep).
        engine_provider: ``provider(name, version) -> (engine, label)``
            override for how actors obtain engines — the seam the
            fault-injection tests use to serve crashing engines.
        backend: ``"thread"`` (default) executes batches on the actor
            worker threads in-process.  ``"process"`` is the opt-in
            scale-out mode: each model's decoded weight planes are
            published once into a :class:`repro.parallel.SharedWeightArena`
            segment and actors execute batches in
            :class:`repro.parallel.ProcessPoolRunner` workers through
            :class:`repro.parallel.SharedEngineProxy` — supervision,
            metrics, health, and rollover behave identically (a crashed
            pool surfaces as actor death with a typed
            :class:`repro.parallel.WorkerCrashedError`).
        pool_workers: Process count for ``backend="process"``
            (default: ``os.cpu_count()``).  The pool forks eagerly in
            the constructor, before any serving thread starts.
        mp_context: Start method for the process pool (name or
            :mod:`multiprocessing` context).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        models: Iterable[str],
        workers: int = 2,
        max_batch: int = 64,
        max_queue: int = 256,
        clock: Callable[[], float] = time.monotonic,
        accelerator=None,
        policy: Optional[SupervisorPolicy] = None,
        batch_policy: Optional[AdaptiveBatchPolicy] = None,
        target_p99_s: Optional[float] = None,
        min_batch: int = 1,
        sleep: Callable[[float], None] = time.sleep,
        engine_provider=None,
        backend: str = "thread",
        pool_workers: Optional[int] = None,
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker per model")
        if batch_policy is None:
            if max_batch < 1:
                raise ValueError("max_batch must be at least 1")
            batch_policy = AdaptiveBatchPolicy(
                min_batch=min_batch, max_batch=max_batch, target_p99_s=target_p99_s
            )
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        names = list(models)
        if not names:
            raise ValueError("need at least one model to host")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names in {names}")
        self.registry = registry
        self.workers = workers
        self.max_batch = batch_policy.max_batch
        self.max_queue = max_queue
        self.accelerator = accelerator
        self.batch_policy = batch_policy
        self.policy = policy or SupervisorPolicy()
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}; choose 'thread' or 'process'")
        self.backend = backend
        self._runner = None
        self._arena = None
        base_provider = engine_provider or self._default_provider
        if backend == "process":
            import os as _os

            from repro.parallel import ProcessPoolRunner, SharedWeightArena
            from repro.parallel import worker as _worker

            self._arena = SharedWeightArena()
            # Eager fork: no serving threads exist yet, so the pool's
            # workers never inherit a mid-critical-section lock.
            self._runner = ProcessPoolRunner(
                pool_workers or (_os.cpu_count() or 1),
                mp_context=mp_context,
                initializer=_worker.mark_decode_baseline,
            )
            self._provider = self._wrap_process_provider(base_provider)
        else:
            self._provider = base_provider
        for name in names:
            if name not in registry:
                raise UnknownModelError(name, tuple(registry.names()))
        self._actors: dict[str, ModelActor] = {
            name: ModelActor(name, ModelMetrics(name, clock=clock), batch_policy)
            for name in names
        }
        self._order = list(self._actors.values())
        self._supervisor = Supervisor(
            self._order,
            self.policy,
            self._provider,
            workers=workers,
            clock=clock,
            sleep=sleep,
        )
        self._stopping = False
        self._started = False
        self._supervisor.prime()

    def _wrap_process_provider(self, inner):
        """Decorate a provider so resolved engines execute in pool workers.

        The inner provider still resolves/compiles the engine (registry
        memoization, version pinning, and the fault-injection test seam
        all keep working); its deployed artifact's weight planes are
        published to the shared arena — once per content per host — and
        the actor gets a :class:`~repro.parallel.SharedEngineProxy`
        instead.  Engines without a deployed artifact (test doubles)
        pass through and execute in-process.
        """

        def provider(name: str, version):
            engine, label = inner(name, version)
            deployed = getattr(engine, "deployed", None)
            if deployed is None:
                return engine, label
            from repro.parallel import SharedEngineProxy

            spec = self._arena.publish(deployed)
            return SharedEngineProxy(self._runner, deployed, spec), label

        return provider

    def _default_provider(self, name: str, version):
        """Resolve an engine (+ version label) through the registry.

        ``version`` is ``None`` (the model's *current* content,
        memoized — what restarts rebuild), :data:`LATEST` (re-resolve
        the newest published version — what a default rollover asks
        for), or an int pinning one store version.
        """
        if version is None:
            engine = self.registry.engine(name)
        elif version is LATEST:
            engine = self.registry.reload(name, None)
        else:
            engine = self.registry.reload(name, version)
        return engine, self.registry.version_label(name)

    def _actor(self, model: str) -> ModelActor:
        actor = self._actors.get(model)
        if actor is None:
            raise UnknownModelError(model, tuple(self._actors))
        return actor

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServerRuntime":
        """Spawn the per-model worker threads (idempotent); returns ``self``."""
        if self._stopping:
            raise ServerClosedError("cannot start a stopped runtime")
        self._started = True
        self._supervisor.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; drain admitted requests or reject them, never drop.

        ``drain=True`` serves everything already admitted (inline on the
        calling thread if :meth:`start` was never called) before
        returning.  ``drain=False`` fails every pending future with
        :class:`ServerClosedError` and counts the rejections.  Further
        submits raise :class:`ServerClosedError`; ``stop`` is
        idempotent.
        """
        self._stopping = True
        self._supervisor.stop(drain)
        # Only after the drain: pool workers may still be executing the
        # final batches, and the arena segments back their engines.
        if self._runner is not None:
            self._runner.close()
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "ServerRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- submission --------------------------------------------------------
    def models(self) -> list[str]:
        """Hosted model names, in hosting order."""
        return [actor.name for actor in self._order]

    def submit(self, model: str, sample: np.ndarray) -> Future:
        """Admit one sample for ``model``; resolves to its logits row.

        Raises :class:`UnknownModelError` for unhosted models,
        ``ValueError`` for a shape mismatch,
        :class:`ModelQuarantinedError` while the model is quarantined,
        :class:`QueueFullError` when the model's mailbox is at bound
        (the request is shed, never queued), and
        :class:`ServerClosedError` after :meth:`stop`.  The returned
        future gains a ``serving_version`` attribute when it resolves —
        the version label of the engine that produced (or failed) it.
        """
        actor = self._actor(model)
        sample = np.asarray(sample)
        with actor.work:
            if self._stopping or actor.stopping:
                raise ServerClosedError(f"server is closed; {model!r} request refused")
            if actor.state == QUARANTINED:
                actor.metrics.record_reject()
                raise actor.quarantine_error()
            if actor.input_shape is not None and sample.shape != actor.input_shape:
                raise ValueError(  # repro-lint: disable=error-taxonomy (caller-input shape validation; ValueError is the documented submit contract)
                    f"model {model!r} expects one sample of shape "
                    f"{actor.input_shape}, got {sample.shape}"
                )
            if len(actor.pending) >= self.max_queue:
                actor.metrics.record_reject()
                raise QueueFullError(model, len(actor.pending), self.max_queue)
            future: Future = Future()
            submitted_at = actor.metrics.record_submit()
            actor.pending.append(Request(sample, future, submitted_at))
            actor.work.notify()  # each admitted request can employ one more worker
        return future

    def queue_depth(self, model: str) -> int:
        """Pending (admitted, not yet claimed) requests for ``model``."""
        actor = self._actor(model)
        with actor.lock:
            return len(actor.pending)

    # -- rollover ----------------------------------------------------------
    def rollover(self, model: str, version: Optional[int] = None) -> Optional[str]:
        """Atomically swap ``model`` to a new version; returns its label.

        The new engine is resolved *before* the swap — through the
        registry (``version`` pins a store version; ``None`` re-resolves
        the newest content) or the injected provider — so the old engine
        serves every request claimed in the meantime.  The swap itself
        happens under the actor lock: no request is dropped, each is
        served bit-identically by whichever version claimed it (recorded
        on the future's ``serving_version``).  A resolution failure
        raises to the caller and leaves the old version serving —
        rollover is never a supervision event.  Success resets the
        failure budget and reinstates a quarantined model.
        """
        actor = self._actor(model)
        if self._stopping:
            raise ServerClosedError("cannot roll over a stopped runtime")
        engine, label = self._provider(model, LATEST if version is None else version)
        with actor.work:
            actor.consecutive_failures = 0
            actor.install_engine_locked(engine, label)
        return label

    # -- readout -----------------------------------------------------------
    def metrics(self, model: str) -> ModelMetrics:
        """The live :class:`ModelMetrics` for one hosted model."""
        return self._actor(model).metrics

    def metrics_summary(self) -> dict[str, dict]:
        """``{model: metrics snapshot}`` for every hosted model."""
        return {actor.name: actor.metrics.snapshot() for actor in self._order}

    def health(self) -> dict:
        """The structured admin surface: supervision + metrics per model.

        JSON-serializable (modulo NaN percentiles before any traffic):
        per model the full metrics snapshot plus ``state`` /
        ``active_version`` / ``restarts`` / ``consecutive_failures`` /
        ``restart_budget_remaining`` / ``crashes`` / ``last_error`` /
        ``current_batch`` (and an ``slo`` block when a p99 target is
        set), alongside runtime-level configuration.  Exposed on the
        command line as ``python -m repro serve --health``.
        """
        return {
            "models": {
                actor.name: self._supervisor.health_locked_snapshot(actor)
                for actor in self._order
            },
            "workers_per_model": self.workers,
            "max_queue": self.max_queue,
            "stopping": self._stopping,
            "policy": {
                "max_failures": self.policy.max_failures,
                "backoff_initial_s": self.policy.backoff_initial_s,
                "backoff_factor": self.policy.backoff_factor,
                "backoff_cap_s": self.policy.backoff_cap_s,
            },
            "batch_policy": {
                "min_batch": self.batch_policy.min_batch,
                "max_batch": self.batch_policy.max_batch,
                "target_p99_s": self.batch_policy.target_p99_s,
            },
        }

    def hw_profile(self, model: str, batch_size: Optional[int] = None) -> Optional[dict]:
        """Modeled silicon profile for one hosted model, if available.

        Returns :meth:`repro.hw.Accelerator.batch_profile` for the
        model's deployed artifact at ``batch_size`` (default: the
        runtime's ``max_batch``), or ``None`` when the runtime was built
        without an accelerator or the model has no live engine (crashed
        or quarantined).
        """
        if self.accelerator is None:
            return None
        actor = self._actor(model)
        with actor.lock:
            engine = actor.engine
        deployed = getattr(engine, "deployed", None)
        if deployed is None:
            return None
        return self.accelerator.batch_profile(deployed, batch_size or self.max_batch)
