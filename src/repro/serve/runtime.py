"""Concurrent multi-tenant serving runtime.

:class:`ServerRuntime` hosts any number of registered models at once: a
pool of worker threads drains per-model request queues, executing each
claim as one micro-batch on the model's compiled
:class:`~repro.core.engine.BatchedEngine`.  The design in one breath::

    clients ──submit()──▶ per-model bounded deques ──claim──▶ worker pool
                │ admission control                      │ round-robin,
                ▼ (QueueFullError)                       ▼ ≤ max_batch
            Future                         engine.run(batch) → futures

Guarantees:

* **Admission control** — each model's queue is bounded at
  ``max_queue``; a submit beyond the bound is shed immediately with a
  typed :class:`~repro.serve.errors.QueueFullError` (never silently
  queued or dropped), and the shed is counted in that model's metrics.
* **No cross-model bleed** — a claim takes requests from exactly one
  queue, so a batch only ever contains one model's samples, and each
  future is resolved from its own batch row (a private copy).
* **Clean shutdown** — ``stop(drain=True)`` serves every admitted
  request before returning; ``stop(drain=False)`` fails the in-flight
  futures with :class:`~repro.serve.errors.ServerClosedError`.  Either
  way nothing is silently dropped.
* **Determinism** — requests can be submitted before ``start()``; with
  one worker and one model, service order is submission order, and
  outputs are bit-identical to running each sample alone (the engine
  guarantee), whatever the interleaving.

Throughput comes from two directions: micro-batching (the engine's
per-sample speedup) and worker concurrency (the numpy/BLAS kernels
release the GIL, so batches of *different* models genuinely overlap).
``benchmarks/bench_serve_concurrency.py`` gates the combination at ≥ 3x
the serialized single-worker baseline.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from repro.core.engine import BatchedEngine
from repro.serve.errors import QueueFullError, ServerClosedError, UnknownModelError
from repro.serve.metrics import ModelMetrics
from repro.serve.registry import ModelRegistry


@dataclass
class _Request:
    """One admitted request: its payload, its future, its admission time."""

    sample: np.ndarray
    future: Future
    submitted_at: float


@dataclass
class _HostedModel:
    """Per-model serving state: engine, bounded queue, metrics."""

    name: str
    engine: BatchedEngine
    metrics: ModelMetrics
    pending: deque = field(default_factory=deque)


class ServerRuntime:
    """Worker pool serving several models' micro-batch queues concurrently.

    Args:
        registry: Where model names resolve to compiled engines.
        models: Names to host (each resolved — and compiled, once —
            at construction).
        workers: Worker threads started by :meth:`start`.
        max_batch: Largest micro-batch one claim may execute.
        max_queue: Per-model pending bound for admission control.
        clock: Seconds-valued monotonic clock used by the metrics
            (injectable for tests).
        accelerator: Optional :class:`repro.hw.Accelerator` whose
            modeled silicon numbers :meth:`hw_profile` surfaces next to
            the measured metrics.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        models: Iterable[str],
        workers: int = 2,
        max_batch: int = 64,
        max_queue: int = 256,
        clock: Callable[[], float] = time.monotonic,
        accelerator=None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        names = list(models)
        if not names:
            raise ValueError("need at least one model to host")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate model names in {names}")
        self.registry = registry
        self.workers = workers
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.accelerator = accelerator
        self._hosts: dict[str, _HostedModel] = {}
        for name in names:  # UnknownModelError propagates from the registry
            self._hosts[name] = _HostedModel(
                name=name,
                engine=registry.engine(name),
                metrics=ModelMetrics(name, clock=clock),
            )
        self._order = list(self._hosts.values())
        self._rr = 0
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServerRuntime":
        """Spawn the worker pool (idempotent); returns ``self``."""
        with self._lock:
            if self._stopping:
                raise ServerClosedError("cannot start a stopped runtime")
            if self._threads:
                return self
            self._threads = [
                threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; drain admitted requests or reject them, never drop.

        ``drain=True`` serves everything already admitted (inline on the
        calling thread if :meth:`start` was never called) before
        returning.  ``drain=False`` fails every pending future with
        :class:`ServerClosedError` and counts the rejections.  Further
        submits raise :class:`ServerClosedError`; ``stop`` is
        idempotent.
        """
        with self._work:
            self._stopping = True
            if not drain:
                for host in self._order:
                    if host.pending:
                        error = ServerClosedError(
                            f"server stopped before serving this {host.name!r} request"
                        )
                        host.metrics.record_reject(len(host.pending))
                        for request in host.pending:
                            if request.future.set_running_or_notify_cancel():
                                request.future.set_exception(error)
                        host.pending.clear()
                        host.metrics.set_queue_depth(0)
            self._work.notify_all()
        threads, self._threads = self._threads, []
        for thread in threads:
            thread.join()
        if drain and not threads:
            # Never started: serve the backlog on the calling thread.
            while True:
                with self._lock:
                    host, requests = self._claim_locked()
                if requests is None:
                    break
                self._execute(host, requests)

    def __enter__(self) -> "ServerRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- submission --------------------------------------------------------
    def models(self) -> list[str]:
        """Hosted model names, in hosting order."""
        return [host.name for host in self._order]

    def submit(self, model: str, sample: np.ndarray) -> Future:
        """Admit one sample for ``model``; resolves to its logits row.

        Raises :class:`UnknownModelError` for unhosted models,
        ``ValueError`` for a shape mismatch, :class:`QueueFullError`
        when the model's queue is at bound (the request is shed, never
        queued), and :class:`ServerClosedError` after :meth:`stop`.
        """
        host = self._hosts.get(model)
        if host is None:
            raise UnknownModelError(model, tuple(self._hosts))
        sample = np.asarray(sample)
        if sample.shape != host.engine.input_shape:
            raise ValueError(
                f"model {model!r} expects one sample of shape "
                f"{host.engine.input_shape}, got {sample.shape}"
            )
        with self._work:
            if self._stopping:
                raise ServerClosedError(f"server is closed; {model!r} request refused")
            if len(host.pending) >= self.max_queue:
                host.metrics.record_reject()
                raise QueueFullError(model, len(host.pending), self.max_queue)
            future: Future = Future()
            submitted_at = host.metrics.record_submit()
            host.pending.append(_Request(sample, future, submitted_at))
            host.metrics.set_queue_depth(len(host.pending))
            self._work.notify()  # each admitted request can employ one more worker
        return future

    def queue_depth(self, model: str) -> int:
        """Pending (admitted, not yet executed) requests for ``model``."""
        host = self._hosts.get(model)
        if host is None:
            raise UnknownModelError(model, tuple(self._hosts))
        with self._lock:
            return len(host.pending)

    # -- worker pool -------------------------------------------------------
    def _claim_locked(self):
        """Pop ≤ ``max_batch`` requests from the next non-empty queue.

        Round-robin over hosts for cross-model fairness; a claim never
        mixes models.  Caller holds the lock.  Returns ``(None, None)``
        when every queue is empty.
        """
        n = len(self._order)
        for i in range(n):
            host = self._order[(self._rr + i) % n]
            if host.pending:
                self._rr = (self._rr + i + 1) % n
                take = min(self.max_batch, len(host.pending))
                requests = [host.pending.popleft() for _ in range(take)]
                host.metrics.set_queue_depth(len(host.pending))
                return host, requests
        return None, None

    def _execute(self, host: _HostedModel, requests: list[_Request]) -> None:
        """Run one single-model micro-batch and resolve its futures."""
        live = [r for r in requests if r.future.set_running_or_notify_cancel()]
        host.metrics.record_batch(len(live))
        if not live:
            return
        try:
            logits = host.engine.run(np.stack([r.sample for r in live]))
        except BaseException as error:  # surface engine failures per-future
            for request in live:
                request.future.set_exception(error)
            return
        for request, row in zip(live, logits):
            request.future.set_result(row.copy())  # private row: no aliasing
            host.metrics.record_done(request.submitted_at)

    def _worker(self) -> None:
        while True:
            with self._work:
                host, requests = self._claim_locked()
                while requests is None:
                    if self._stopping:
                        return
                    self._work.wait()
                    host, requests = self._claim_locked()
            self._execute(host, requests)

    # -- readout -----------------------------------------------------------
    def metrics(self, model: str) -> ModelMetrics:
        """The live :class:`ModelMetrics` for one hosted model."""
        host = self._hosts.get(model)
        if host is None:
            raise UnknownModelError(model, tuple(self._hosts))
        return host.metrics

    def metrics_summary(self) -> dict[str, dict]:
        """``{model: metrics snapshot}`` for every hosted model."""
        return {host.name: host.metrics.snapshot() for host in self._order}

    def hw_profile(self, model: str, batch_size: Optional[int] = None) -> Optional[dict]:
        """Modeled silicon profile for one hosted model, if available.

        Returns :meth:`repro.hw.Accelerator.batch_profile` for the
        model's deployed artifact at ``batch_size`` (default: the
        runtime's ``max_batch``), or ``None`` when the runtime was built
        without an accelerator.
        """
        if self.accelerator is None:
            return None
        host = self._hosts.get(model)
        if host is None:
            raise UnknownModelError(model, tuple(self._hosts))
        return self.accelerator.batch_profile(
            host.engine.deployed, batch_size or self.max_batch
        )
