"""Deterministic fault-injection doubles for the serving supervision tree.

The supervision paths in :mod:`repro.serve.supervisor` — actor death on
a poisoned batch, death inside a model build, restart with backoff,
quarantine — only matter when something breaks, so this module ships the
breakage: engine and builder doubles whose failures are *scheduled*, not
random.  Everything is driven by explicit call indices (optionally drawn
once from a seeded RNG via :func:`crash_schedule`), so a test that
injects "crash on the 2nd and 5th call" replays bit-identically on every
run and under any thread interleaving that preserves call order.

Since the cross-layer chaos harness landed, the doubles are thin fronts
over :mod:`repro.chaos`: each owns a private
:class:`~repro.chaos.plan.FaultPlan` firing the registered serve sites
(``serve.engine.run``, ``serve.builder.build``), so the same trigger
grammar, thread-safe call counting and fault catalog drive scheduled
serve failures and the io/parallel drills alike.  The public API —
class names, constructor signatures, ``.calls``, the exact crash-message
format — is unchanged.

These live in the installed package (not under ``tests/``) on purpose:
``tests/`` is not importable as a package here, and the doubles are also
what ``benchmarks/bench_serve_slo.py`` uses to gate crash-recovery
behaviour under load.

* :class:`CrashError` — the marker exception every double raises, so
  tests can assert the *original* error surfaces on failed futures.
* :class:`CrashingEngine` — wraps a real engine; ``run`` raises on the
  scheduled call numbers and delegates otherwise.  Drop-in wherever an
  engine is expected (duck-typed: ``run``/``input_shape``/
  ``output_shape``/``deployed``).
* :class:`LatencySpikeEngine` — wraps a real engine; ``run`` sleeps (on
  an injectable sleeper, so fake clocks work) on the scheduled call
  numbers before delegating — SLO/backpressure tests without wall-clock
  flake.
* :class:`FlakyBuilder` — a zero-argument builder (registry-compatible)
  raising on the scheduled build numbers; also usable as the engine
  provider seam's resolution step via :meth:`provider`.
* :func:`crash_schedule` — draw a reproducible set of 1-based call
  indices from a seeded RNG, for property tests that randomise *which*
  calls fail while staying replayable from the seed.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

import numpy as np

from repro.chaos.plan import FaultPlan, FaultRule
from repro.chaos.registry import register_site


class CrashError(RuntimeError):
    """The deterministic injected failure (distinguishable from real bugs)."""


ENGINE_RUN_SITE = register_site(
    "serve.engine.run",
    layer="serve",
    description="Every run() call on a CrashingEngine/LatencySpikeEngine "
    "double; context has label and (for latency) sleep.",
)
BUILDER_BUILD_SITE = register_site(
    "serve.builder.build",
    layer="serve",
    description="Every build/resolution attempt on a FlakyBuilder double; "
    "context has label.",
)


def crash_schedule(
    seed: int, n_calls: int, n_crashes: int
) -> frozenset[int]:
    """A reproducible set of 1-based call indices that should crash.

    Draws ``n_crashes`` distinct indices from ``1..n_calls`` using a
    generator seeded with ``seed`` — same seed, same schedule, forever.
    """
    if n_crashes > n_calls:
        raise ValueError(f"cannot schedule {n_crashes} crashes in {n_calls} calls")  # repro-lint: disable=error-taxonomy (argument validation in the test-harness helper; ValueError is the documented contract)
    rng = np.random.default_rng(seed)
    picks = rng.choice(n_calls, size=n_crashes, replace=False)
    return frozenset(int(i) + 1 for i in picks)


def _schedule_plan(site: str, schedule, what: str, name: str) -> FaultPlan:
    """A private one-rule plan crashing ``site`` on the scheduled calls.

    ``schedule`` is an iterable of 1-based call numbers, or
    :data:`FlakyBuilder.ALWAYS` for every call; an empty schedule yields
    a rule-free plan (the site still counts firings — ``.calls`` keeps
    working — but nothing ever fires).
    """
    if schedule == FlakyBuilder.ALWAYS:
        trigger = {"always": True}
    else:
        calls = sorted(int(c) for c in schedule)
        if not calls:
            return FaultPlan(rules=(), name=name)
        trigger = {"calls": calls}
    rule = FaultRule(site=site, fault="crash", trigger=trigger, params={"what": what})
    return FaultPlan(rules=(rule,), name=name)


class CrashingEngine:
    """An engine double that raises :class:`CrashError` on scheduled calls.

    Wraps a real :class:`~repro.core.engine.BatchedEngine` and delegates
    ``run`` except on the 1-based call numbers in ``crash_on`` (count
    shared across threads is monotone: each ``run`` attempt takes the
    next number whether it crashes or not).  ``crash_on=()`` never
    crashes — useful as the post-restart "healthy replacement".

    Args:
        engine: The real engine to delegate to.
        crash_on: 1-based ``run`` call numbers that raise.
        label: Echoed in the crash message, for assertable errors.
    """

    def __init__(self, engine, crash_on: Iterable[int] = (), label: str = "injected"):
        self._engine = engine
        self.crash_on = frozenset(crash_on)
        self.label = label
        self._plan = _schedule_plan(
            ENGINE_RUN_SITE, self.crash_on, "crash on run() call", f"{label}-engine"
        )

    @property
    def calls(self) -> int:
        """How many ``run`` attempts this engine has seen (crashed or not)."""
        return self._plan.calls(ENGINE_RUN_SITE)

    @property
    def input_shape(self):
        return self._engine.input_shape

    @property
    def output_shape(self):
        return self._engine.output_shape

    @property
    def deployed(self):
        return self._engine.deployed

    def run(self, batch: np.ndarray) -> np.ndarray:
        self._plan.fire(ENGINE_RUN_SITE, {"label": self.label})
        return self._engine.run(batch)


class LatencySpikeEngine:
    """An engine double that stalls ``run`` on scheduled calls, then delegates.

    The spike sleeps through ``sleep`` (default :func:`time.sleep`);
    tests pass a fake-clock sleeper so SLO/backpressure behaviour under
    slow batches replays with zero wall-clock time.  The same duck-typed
    engine surface as :class:`CrashingEngine`.

    Args:
        engine: The real engine to delegate to.
        spike_on: 1-based ``run`` call numbers that stall.
        spike_s: Stall duration in (possibly fake) seconds.
        label: Echoed in plan logs.
        sleep: Injectable sleeper for the stall.
    """

    def __init__(
        self,
        engine,
        spike_on: Iterable[int] = (),
        spike_s: float = 0.05,
        label: str = "latency",
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._engine = engine
        self.spike_on = frozenset(spike_on)
        self.spike_s = float(spike_s)
        self.label = label
        self._sleep = sleep
        if self.spike_on:
            rules = (
                FaultRule(
                    site=ENGINE_RUN_SITE,
                    fault="latency",
                    trigger={"calls": sorted(self.spike_on)},
                    params={"seconds": self.spike_s},
                ),
            )
        else:
            rules = ()
        self._plan = FaultPlan(rules=rules, name=f"{label}-engine")

    @property
    def calls(self) -> int:
        return self._plan.calls(ENGINE_RUN_SITE)

    @property
    def input_shape(self):
        return self._engine.input_shape

    @property
    def output_shape(self):
        return self._engine.output_shape

    @property
    def deployed(self):
        return self._engine.deployed

    def run(self, batch: np.ndarray) -> np.ndarray:
        self._plan.fire(ENGINE_RUN_SITE, {"label": self.label, "sleep": self._sleep})
        return self._engine.run(batch)


class FlakyBuilder:
    """A builder double that raises :class:`CrashError` on scheduled builds.

    Callable with zero arguments (a :class:`ModelRegistry` builder) —
    returns ``artifact`` except on the 1-based build numbers in
    ``fail_on``.  ``fail_on=range(1, N+1)`` models a build broken for
    the first N attempts that then heals (restart-path recovery);
    ``fail_on=ALWAYS`` never succeeds (quarantine path).

    :meth:`provider` adapts the same schedule to the runtime's
    ``engine_provider(name, version)`` seam, compiling the artifact on
    each successful resolution.
    """

    #: Sentinel schedule: every build fails, forever.
    ALWAYS = "always"

    def __init__(self, artifact, fail_on, label: str = "flaky"):
        self.artifact = artifact
        self.fail_on = fail_on if fail_on == self.ALWAYS else frozenset(fail_on)
        self.label = label
        self._plan = _schedule_plan(
            BUILDER_BUILD_SITE, self.fail_on, "failure on build", f"{label}-builder"
        )

    @property
    def calls(self) -> int:
        """How many build attempts this builder has seen (failed or not)."""
        return self._plan.calls(BUILDER_BUILD_SITE)

    def _attempt(self):
        self._plan.fire(BUILDER_BUILD_SITE, {"label": self.label})

    def __call__(self):
        self._attempt()
        return self.artifact

    def provider(
        self, engine_factory: Callable, version_label: str = "flaky-v1"
    ) -> Callable:
        """An ``engine_provider(name, version)`` running this schedule.

        ``engine_factory(artifact)`` turns the artifact into an engine
        on each successful resolution (pass ``BatchedEngine``, or a
        lambda wrapping it in a :class:`CrashingEngine`).
        """

        def provide(name: str, version: Optional[int]):
            self._attempt()
            return engine_factory(self.artifact), version_label

        return provide
