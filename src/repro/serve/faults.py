"""Deterministic fault-injection doubles for the serving supervision tree.

The supervision paths in :mod:`repro.serve.supervisor` — actor death on
a poisoned batch, death inside a model build, restart with backoff,
quarantine — only matter when something breaks, so this module ships the
breakage: engine and builder doubles whose failures are *scheduled*, not
random.  Everything is driven by explicit call indices (optionally drawn
once from a seeded RNG via :func:`crash_schedule`), so a test that
injects "crash on the 2nd and 5th call" replays bit-identically on every
run and under any thread interleaving that preserves call order.

These live in the installed package (not under ``tests/``) on purpose:
``tests/`` is not importable as a package here, and the doubles are also
what ``benchmarks/bench_serve_slo.py`` uses to gate crash-recovery
behaviour under load.

* :class:`CrashError` — the marker exception every double raises, so
  tests can assert the *original* error surfaces on failed futures.
* :class:`CrashingEngine` — wraps a real engine; ``run`` raises on the
  scheduled call numbers and delegates otherwise.  Drop-in wherever an
  engine is expected (duck-typed: ``run``/``input_shape``/
  ``output_shape``/``deployed``).
* :class:`FlakyBuilder` — a zero-argument builder (registry-compatible)
  raising on the scheduled build numbers; also usable as the engine
  provider seam's resolution step via :meth:`provider`.
* :func:`crash_schedule` — draw a reproducible set of 1-based call
  indices from a seeded RNG, for property tests that randomise *which*
  calls fail while staying replayable from the seed.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional

import numpy as np


class CrashError(RuntimeError):
    """The deterministic injected failure (distinguishable from real bugs)."""


def crash_schedule(
    seed: int, n_calls: int, n_crashes: int
) -> frozenset[int]:
    """A reproducible set of 1-based call indices that should crash.

    Draws ``n_crashes`` distinct indices from ``1..n_calls`` using a
    generator seeded with ``seed`` — same seed, same schedule, forever.
    """
    if n_crashes > n_calls:
        raise ValueError(f"cannot schedule {n_crashes} crashes in {n_calls} calls")  # repro-lint: disable=error-taxonomy (argument validation in the test-harness helper; ValueError is the documented contract)
    rng = np.random.default_rng(seed)
    picks = rng.choice(n_calls, size=n_crashes, replace=False)
    return frozenset(int(i) + 1 for i in picks)


class CrashingEngine:
    """An engine double that raises :class:`CrashError` on scheduled calls.

    Wraps a real :class:`~repro.core.engine.BatchedEngine` and delegates
    ``run`` except on the 1-based call numbers in ``crash_on`` (count
    shared across threads is monotone: each ``run`` attempt takes the
    next number whether it crashes or not).  ``crash_on=()`` never
    crashes — useful as the post-restart "healthy replacement".

    Args:
        engine: The real engine to delegate to.
        crash_on: 1-based ``run`` call numbers that raise.
        label: Echoed in the crash message, for assertable errors.
    """

    def __init__(self, engine, crash_on: Iterable[int] = (), label: str = "injected"):
        self._engine = engine
        self.crash_on = frozenset(crash_on)
        self.label = label
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def input_shape(self):
        return self._engine.input_shape

    @property
    def output_shape(self):
        return self._engine.output_shape

    @property
    def deployed(self):
        return self._engine.deployed

    def run(self, batch: np.ndarray) -> np.ndarray:
        with self._lock:
            self.calls += 1
            call = self.calls
        if call in self.crash_on:
            raise CrashError(f"{self.label}: scheduled crash on run() call {call}")
        return self._engine.run(batch)


class FlakyBuilder:
    """A builder double that raises :class:`CrashError` on scheduled builds.

    Callable with zero arguments (a :class:`ModelRegistry` builder) —
    returns ``artifact`` except on the 1-based build numbers in
    ``fail_on``.  ``fail_on=range(1, N+1)`` models a build broken for
    the first N attempts that then heals (restart-path recovery);
    ``fail_on=ALWAYS`` never succeeds (quarantine path).

    :meth:`provider` adapts the same schedule to the runtime's
    ``engine_provider(name, version)`` seam, compiling the artifact on
    each successful resolution.
    """

    #: Sentinel schedule: every build fails, forever.
    ALWAYS = "always"

    def __init__(self, artifact, fail_on, label: str = "flaky"):
        self.artifact = artifact
        self.fail_on = fail_on if fail_on == self.ALWAYS else frozenset(fail_on)
        self.label = label
        self.calls = 0
        self._lock = threading.Lock()

    def _attempt(self):
        with self._lock:
            self.calls += 1
            call = self.calls
        if self.fail_on == self.ALWAYS or call in self.fail_on:
            raise CrashError(f"{self.label}: scheduled failure on build {call}")

    def __call__(self):
        self._attempt()
        return self.artifact

    def provider(
        self, engine_factory: Callable, version_label: str = "flaky-v1"
    ) -> Callable:
        """An ``engine_provider(name, version)`` running this schedule.

        ``engine_factory(artifact)`` turns the artifact into an engine
        on each successful resolution (pass ``BatchedEngine``, or a
        lambda wrapping it in a :class:`CrashingEngine`).
        """

        def provide(name: str, version: Optional[int]):
            self._attempt()
            return engine_factory(self.artifact), version_label

        return provide
