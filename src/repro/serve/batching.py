"""Request micro-batching over a compiled :class:`BatchedEngine`.

Deployment front door for serving-style workloads: single-sample
requests are accumulated into micro-batches and executed together on
the batched engine, trading a bounded amount of queueing for the large
per-sample speedup of vectorized execution (see
``benchmarks/bench_engine_throughput.py``).  Everything here is
synchronous and deterministic — the queue flushes when full or when a
result is demanded — so serving results are reproducible and always
bit-identical to running each sample alone.

:class:`AdaptiveBatchPolicy` is the SLO-driven sizing rule the
supervised runtime's actors consult at every claim: batches grow under
queue pressure and shrink when the recent p99 latency exceeds the
target (``benchmarks/bench_serve_slo.py`` gates the resulting sustained
-load latency).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.engine import BatchedEngine
from repro.serve.errors import ServerClosedError

#: Recent batch fills kept by :class:`ServeStats` (totals are unbounded).
FILL_HISTORY = 1024


@dataclass(frozen=True)
class AdaptiveBatchPolicy:
    """SLO-driven micro-batch sizing: grow under pressure, shrink on latency.

    A pure decision function the serving actors consult at every claim:
    given the current batch size, the queue depth behind it, and the
    recent p99 latency, return the next batch size.  The feedback loop
    is multiplicative-increase/multiplicative-decrease over
    ``[min_batch, max_batch]``:

    * **shrink** when the recent p99 exceeds ``target_p99_s`` — smaller
      batches bound per-request queueing delay at the cost of
      vectorization efficiency;
    * **grow** when the queue holds at least ``grow_pressure`` batches'
      worth of work and the SLO is currently met — pressure means the
      throughput of bigger batches is worth more than their latency;
    * otherwise hold.

    With ``target_p99_s=None`` the policy is latency-blind and sizing
    stays pinned at ``max_batch`` (the pre-supervision greedy-fill
    behaviour); deterministic tests rely on that.  The policy object is
    frozen — all mutable sizing state lives in the actor, so one policy
    instance can steer any number of models.
    """

    min_batch: int = 1
    max_batch: int = 64
    target_p99_s: Optional[float] = None
    grow_pressure: float = 2.0
    step: float = 2.0
    slo_window: int = 256

    def __post_init__(self):
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be at least 1, got {self.min_batch}")
        if self.max_batch < self.min_batch:
            raise ValueError(
                f"max_batch ({self.max_batch}) must be >= min_batch ({self.min_batch})"
            )
        if self.target_p99_s is not None and self.target_p99_s <= 0:
            raise ValueError(f"target_p99_s must be positive, got {self.target_p99_s}")
        if self.grow_pressure <= 0:
            raise ValueError(f"grow_pressure must be positive, got {self.grow_pressure}")
        if self.step <= 1:
            raise ValueError(f"step must exceed 1, got {self.step}")
        if self.slo_window < 1:
            raise ValueError(f"slo_window must be positive, got {self.slo_window}")

    @property
    def initial(self) -> int:
        """The starting batch size (greedy fill until the SLO pushes back)."""
        return self.max_batch

    def next_size(self, current: int, queue_depth: int, p99_s: float = float("nan")) -> int:
        """The batch size to claim next (see class docstring for the loop)."""
        current = min(max(current, self.min_batch), self.max_batch)
        if self.target_p99_s is None:
            return self.max_batch
        if not math.isnan(p99_s) and p99_s > self.target_p99_s:
            return max(self.min_batch, int(current / self.step))
        if queue_depth >= self.grow_pressure * current:
            return min(self.max_batch, max(current + 1, int(current * self.step)))
        return current


@dataclass
class ServeStats:
    """Batch-fill accounting for one queue (or one ``predict_many`` run).

    ``batches``/``samples`` count everything ever recorded; ``fills``
    keeps only the most recent :data:`FILL_HISTORY` batch sizes so a
    long-running queue cannot grow memory without bound.
    """

    batches: int = 0
    samples: int = 0
    fills: deque = field(default_factory=lambda: deque(maxlen=FILL_HISTORY))

    def record(self, n: int) -> None:
        self.batches += 1
        self.samples += n
        self.fills.append(n)

    @property
    def mean_fill(self) -> float:
        """Average samples per executed batch (0.0 before any batch)."""
        return self.samples / self.batches if self.batches else 0.0


def predict_many(
    engine: BatchedEngine, x: np.ndarray, max_batch: int = 64, stats: Optional[ServeStats] = None
) -> np.ndarray:
    """Run ``(N, ...)`` samples in order through micro-batches.

    Chunks ``x`` into batches of at most ``max_batch`` samples (the tail
    batch may be smaller) and concatenates the float logits.  Order is
    preserved and the result is bit-identical to ``engine.run(x)``.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be at least 1")  # repro-lint: disable=error-taxonomy (public-API argument validation; ValueError is the documented contract)
    x = np.asarray(x)
    out = []
    for start in range(0, x.shape[0], max_batch):
        chunk = x[start : start + max_batch]
        out.append(engine.run(chunk))
        if stats is not None:
            stats.record(chunk.shape[0])
    if not out:
        return np.empty((0,) + engine.output_shape, dtype=np.float64)
    return np.concatenate(out, axis=0)


class MicroBatchQueue:
    """Accumulate single-sample requests and execute them in batches.

    ``submit`` enqueues one sample and returns a ticket; the queue runs
    the engine whenever ``max_batch`` requests are pending, and
    ``result`` (or an explicit ``flush``) drains any remainder.  Results
    are float logits, bit-identical to single-sample execution.

    Shutdown never drops work silently: :meth:`close` either drains the
    in-flight requests (``drain=True``, the default — their results stay
    collectable) or rejects them, making ``result`` raise the typed
    :class:`~repro.serve.errors.ServerClosedError`.  Submitting to a
    closed queue also raises :class:`ServerClosedError`.  The queue is a
    context manager; leaving the ``with`` block closes it draining.

    Args:
        engine: Compiled engine to execute batches on.
        max_batch: Flush threshold (the engine batch size).
    """

    def __init__(self, engine: BatchedEngine, max_batch: int = 64):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.engine = engine
        self.max_batch = max_batch
        self.stats = ServeStats()
        self._pending: list[tuple[int, np.ndarray]] = []
        self._results: dict[int, np.ndarray] = {}
        self._rejected: set[int] = set()
        self._next_ticket = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Number of pending (not yet executed) requests."""
        return len(self._pending)

    def submit(self, sample: np.ndarray) -> int:
        """Enqueue one sample (shape = the network's input shape)."""
        if self._closed:
            raise ServerClosedError("queue is closed; submission refused")
        sample = np.asarray(sample)
        if sample.shape != self.engine.input_shape:
            raise ValueError(  # repro-lint: disable=error-taxonomy (caller-input shape validation; ValueError is the documented submit contract)
                f"expected one sample of shape {self.engine.input_shape}, got {sample.shape}"
            )
        ticket = self._next_ticket
        self._next_ticket += 1
        self._pending.append((ticket, sample))
        if len(self._pending) >= self.max_batch:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Execute all pending requests now; returns how many ran."""
        if not self._pending:
            return 0
        tickets = [t for t, _ in self._pending]
        batch = np.stack([s for _, s in self._pending])
        self._pending.clear()
        logits = self.engine.run(batch)
        for ticket, row in zip(tickets, logits):
            self._results[ticket] = row
        self.stats.record(len(tickets))
        return len(tickets)

    def result(self, ticket: int) -> np.ndarray:
        """Logits for one ticket, flushing pending work only if needed.

        Unknown or already-consumed tickets raise without touching the
        queue — an error lookup must not force other callers' pending
        requests into a premature partial batch.
        """
        if not 0 <= ticket < self._next_ticket:
            raise KeyError(f"unknown ticket {ticket}")
        if ticket in self._rejected:
            self._rejected.discard(ticket)
            raise ServerClosedError(f"ticket {ticket} was rejected when the queue closed")
        if ticket not in self._results:
            if all(t != ticket for t, _ in self._pending):
                raise KeyError(f"already-consumed ticket {ticket}")
            self.flush()
        return self._results.pop(ticket)

    def close(self, drain: bool = True) -> int:
        """Shut the queue down without dropping in-flight work.

        ``drain=True`` executes the pending remainder (results stay
        collectable through :meth:`result`); ``drain=False`` rejects it,
        so those tickets' :meth:`result` raises
        :class:`~repro.serve.errors.ServerClosedError`.  Returns how
        many pending requests were drained or rejected; idempotent.
        """
        if self._closed:
            return 0
        if drain:
            count = self.flush()
        else:
            count = len(self._pending)
            self._rejected.update(t for t, _ in self._pending)
            self._pending.clear()
        self._closed = True
        return count

    def __enter__(self) -> "MicroBatchQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
