"""Per-model serving instrumentation.

:class:`ModelMetrics` is the one instrumentation object the runtime
keeps per hosted model: request counters (submitted / completed /
rejected), batch-fill accounting, a live queue-depth gauge, a bounded
latency reservoir with percentile readout, and wall-clock throughput.

The clock is injectable (any zero-argument callable returning seconds)
so tests drive a fake clock and assert exact latencies and throughput;
production code uses ``time.monotonic``.  All mutators take the
instance lock — workers and client threads record concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Optional

#: Most recent per-request latencies kept for percentile readout.
LATENCY_RESERVOIR = 4096


class ModelMetrics:
    """Thread-safe counters, gauges and latency percentiles for one model.

    Args:
        model: Model name the metrics describe (echoed in snapshots).
        clock: Seconds-valued monotonic clock; injectable for tests.
    """

    def __init__(self, model: str, clock: Callable[[], float] = time.monotonic):
        self.model = model
        self.clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.batches = 0
        self.batch_samples = 0
        self.queue_depth = 0
        self._latencies: deque = deque(maxlen=LATENCY_RESERVOIR)

    # -- recording ---------------------------------------------------------
    def record_submit(self) -> float:
        """Count one admitted request; returns its admission timestamp."""
        now = self.clock()
        with self._lock:
            self.submitted += 1
        return now

    def record_reject(self, n: int = 1) -> None:
        """Count ``n`` requests refused (admission shed or shutdown)."""
        with self._lock:
            self.rejected += n

    def record_batch(self, n: int) -> None:
        """Count one executed batch of ``n`` samples."""
        with self._lock:
            self.batches += 1
            self.batch_samples += n

    def record_done(self, submitted_at: float) -> None:
        """Count one completed request; latency = now - admission time."""
        now = self.clock()
        with self._lock:
            self.completed += 1
            self._latencies.append(now - submitted_at)

    def set_queue_depth(self, depth: int) -> None:
        """Update the live pending-request gauge."""
        with self._lock:
            self.queue_depth = depth

    # -- readout -----------------------------------------------------------
    @property
    def mean_fill(self) -> float:
        """Average samples per executed batch (0.0 before any batch).

        Counts the samples each batch *claimed* (``record_batch``), not
        completions, so a failed batch does not skew the fill.
        """
        with self._lock:
            return self.batch_samples / self.batches if self.batches else 0.0

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of recorded latencies, in seconds.

        Nearest-rank always returns an observed latency and is monotone
        in ``q``; returns ``nan`` before any completion.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            ordered = sorted(self._latencies)
        if not ordered:
            return float("nan")
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def throughput_rps(self, now: Optional[float] = None) -> float:
        """Completed requests per second of wall clock since construction."""
        if now is None:
            now = self.clock()
        elapsed = now - self._started
        with self._lock:
            completed = self.completed
        return completed / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """One consistent dict of every counter, gauge and percentile."""
        now = self.clock()
        with self._lock:
            counters = {
                "model": self.model,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "batches": self.batches,
                "queue_depth": self.queue_depth,
                "mean_fill": self.batch_samples / self.batches if self.batches else 0.0,
            }
        counters["throughput_rps"] = self.throughput_rps(now)
        counters["latency_p50_s"] = self.latency_percentile(50)
        counters["latency_p99_s"] = self.latency_percentile(99)
        return counters
