"""Per-model serving instrumentation.

:class:`ModelMetrics` is the one instrumentation object the runtime
keeps per hosted model: request counters (submitted / completed /
rejected / crashed), batch-fill accounting, a live queue-depth gauge, a
bounded latency reservoir with (optionally windowed) percentile
readout, and wall-clock throughput.

The queue-depth gauge is **owned by the counters**, not by call sites:
``record_submit`` is the only increment and ``record_claim`` the only
decrement, so admission-control rejections (``record_reject``) cannot
leak a depth increment and the gauge can never drift from the queue it
describes.  Requests removed from the queue without being served
(shutdown without drain, quarantine) are a claim *followed by* a
reject — two calls, one invariant: ``depth == submitted admitted - claimed``.

The clock is injectable (any zero-argument callable returning seconds)
so tests drive a fake clock and assert exact latencies and throughput;
production code uses ``time.monotonic``.  All mutators take the
instance lock — workers and client threads record concurrently.
"""

from __future__ import annotations

import math
import numbers
import threading
import time
from collections import deque
from typing import Callable, Optional

#: Most recent per-request latencies kept for percentile readout.
LATENCY_RESERVOIR = 4096

#: Default recent-window size for SLO-facing percentile readout.
SLO_WINDOW = 256


class ModelMetrics:
    """Thread-safe counters, gauges and latency percentiles for one model.

    Args:
        model: Model name the metrics describe (echoed in snapshots).
        clock: Seconds-valued monotonic clock; injectable for tests.
    """

    def __init__(self, model: str, clock: Callable[[], float] = time.monotonic):
        self.model = model
        self.clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.crashed = 0
        self.batches = 0
        self.batch_samples = 0
        self.queue_depth = 0
        self._latencies: deque = deque(maxlen=LATENCY_RESERVOIR)

    # -- recording ---------------------------------------------------------
    def record_submit(self) -> float:
        """Count one admitted request (gauge +1); returns its admission time."""
        now = self.clock()
        with self._lock:
            self.submitted += 1
            self.queue_depth += 1
        return now

    def record_claim(self, n: int) -> None:
        """Count ``n`` requests leaving the queue (gauge -n).

        Every departure is a claim — whether the requests go on to
        execute, get rejected at shutdown, or fall to quarantine — so
        the gauge always equals the number of requests actually
        pending.
        """
        with self._lock:
            self.queue_depth -= n
            if self.queue_depth < 0:  # pragma: no cover - call-site bug guard
                raise AssertionError(
                    f"queue-depth gauge for {self.model!r} went negative; "
                    f"record_claim({n}) without matching record_submit calls"
                )

    def record_reject(self, n: int = 1) -> None:
        """Count ``n`` requests refused; never touches the depth gauge.

        Admission-control sheds were never queued; post-admission
        rejections (shutdown, quarantine) must call :meth:`record_claim`
        first — rejection itself is depth-neutral by construction.
        """
        with self._lock:
            self.rejected += n

    def record_crash(self, n: int = 1) -> None:
        """Count ``n`` requests failed by an actor crash (poisoned batch)."""
        with self._lock:
            self.crashed += n

    def record_batch(self, n: int) -> None:
        """Count one executed batch of ``n`` samples."""
        with self._lock:
            self.batches += 1
            self.batch_samples += n

    def record_done(self, submitted_at: float) -> None:
        """Count one completed request; latency = now - admission time."""
        now = self.clock()
        with self._lock:
            self.completed += 1
            self._latencies.append(now - submitted_at)

    # -- readout -----------------------------------------------------------
    @property
    def mean_fill(self) -> float:
        """Average samples per executed batch (0.0 before any batch).

        Counts the samples each batch *claimed* (``record_batch``), not
        completions, so a failed batch does not skew the fill.
        """
        with self._lock:
            return self.batch_samples / self.batches if self.batches else 0.0

    def latency_percentile(self, q: float, window: Optional[int] = None) -> float:
        """Nearest-rank percentile of recorded latencies, in seconds.

        Nearest-rank always returns an observed latency and is monotone
        in ``q``; returns ``nan`` before any completion.  ``window``
        restricts the readout to the most recent ``window`` completions
        — the SLO-facing view the adaptive batcher steers on, which must
        react to *current* latency, not the whole reservoir's history.

        Edge cases are pinned, never accidental: ``q=0`` is the minimum
        and ``q=100`` the maximum recorded latency; a ``window`` larger
        than the reservoir reads everything retained; ``q`` outside
        ``[0, 100]`` (including NaN) and non-integral or non-positive
        ``window`` raise the documented ``ValueError``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")  # repro-lint: disable=error-taxonomy (public-API argument validation; ValueError is the documented contract)
        if window is not None:
            if isinstance(window, bool) or not isinstance(window, numbers.Integral):
                raise ValueError(f"window must be an integer, got {window!r}")  # repro-lint: disable=error-taxonomy (public-API argument validation; ValueError is the documented contract)
            if window < 1:
                raise ValueError(f"window must be positive, got {window}")  # repro-lint: disable=error-taxonomy (public-API argument validation; ValueError is the documented contract)
            window = int(window)
        with self._lock:
            recent = list(self._latencies)
        if window is not None:
            recent = recent[-window:]
        if not recent:
            return float("nan")
        ordered = sorted(recent)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def throughput_rps(self, now: Optional[float] = None) -> float:
        """Completed requests per second of wall clock since construction."""
        if now is None:
            now = self.clock()
        elapsed = now - self._started
        with self._lock:
            completed = self.completed
        return completed / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """One consistent dict of every counter, gauge and percentile."""
        now = self.clock()
        with self._lock:
            counters = {
                "model": self.model,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "crashed": self.crashed,
                "batches": self.batches,
                "queue_depth": self.queue_depth,
                "mean_fill": self.batch_samples / self.batches if self.batches else 0.0,
            }
        counters["throughput_rps"] = self.throughput_rps(now)
        counters["latency_p50_s"] = self.latency_percentile(50)
        counters["latency_p99_s"] = self.latency_percentile(99)
        return counters
