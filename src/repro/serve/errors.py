"""Typed serving errors.

Every way the serving layer refuses work has its own exception type, so
clients (and tests) can distinguish *shed* load from *misrouted* load
from *shutdown*:

* :class:`UnknownModelError` — the request names a model the registry
  does not host.
* :class:`QueueFullError` — admission control: the model's queue is at
  its bound and the request is shed immediately rather than queued.
* :class:`ServerClosedError` — the runtime (or queue) has shut down;
  raised both for new submissions after close and for in-flight
  requests rejected by a non-draining shutdown.
* :class:`ModelQuarantinedError` — supervision took one model out of
  service after too many consecutive actor crashes; requests to it are
  refused while every other hosted model keeps serving.

All of them derive from :class:`ServeError`; ``UnknownModelError`` also
derives from :class:`KeyError` so registry lookups behave like a
mapping.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for all serving-layer failures."""


class UnknownModelError(ServeError, KeyError):
    """A request named a model that is not registered/hosted."""

    def __init__(self, name: str, known: tuple = ()):
        self.name = name
        self.known = tuple(known)
        hint = f"; registered: {', '.join(self.known)}" if self.known else ""
        super().__init__(f"unknown model {name!r}{hint}")

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message
        return self.args[0]


class QueueFullError(ServeError):
    """Admission control shed a request: the model's queue is at bound."""

    def __init__(self, model: str, depth: int, bound: int):
        self.model = model
        self.depth = depth
        self.bound = bound
        super().__init__(
            f"queue for model {model!r} is full ({depth}/{bound}); request shed"
        )


class ServerClosedError(ServeError):
    """The runtime/queue is shut down; the request was not (or will not be) served."""

    def __init__(self, message: str = "server is closed"):
        super().__init__(message)


class ModelQuarantinedError(ServeError):
    """Supervision quarantined one model after repeated actor crashes.

    Raised for new submissions to the quarantined model and used to fail
    its pending futures at the moment of quarantine.  Other hosted
    models are unaffected; a successful
    :meth:`~repro.serve.runtime.ServerRuntime.rollover` reinstates the
    model.
    """

    def __init__(self, model: str, failures: int, last_error: str = ""):
        self.model = model
        self.failures = failures
        self.last_error = last_error
        detail = f" (last error: {last_error})" if last_error else ""
        super().__init__(
            f"model {model!r} is quarantined after {failures} consecutive "
            f"failures{detail}; rollover a fixed version to reinstate it"
        )
