"""Named deployable models behind a shared compile-once engine cache.

:class:`ModelRegistry` maps model names to *builders* — zero-argument
callables producing a :class:`~repro.core.mfdfp.DeployedMFDFP`.  The
artifact is built lazily on first use and memoized; its compiled
:class:`~repro.core.engine.BatchedEngine` is memoized behind a
thread-safe, content-addressed :class:`~repro.core.engine.EngineCache`,
so a long-running multi-tenant server compiles each network exactly
once no matter how many workers race for it.

The default registry (:meth:`ModelRegistry.with_defaults`) hosts the
zoo's serving entry points (``repro.zoo.DEPLOYABLE_BUILDERS``):
surrogate-scale ``cifar10_full`` and ``alexnet`` artifacts that build in
well under a second each.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from repro.core.engine import BatchedEngine, EngineCache, engine_fingerprint
from repro.core.mfdfp import DeployedMFDFP
from repro.serve.errors import UnknownModelError


class ModelRegistry:
    """Thread-safe name → deployable-artifact → compiled-engine mapping.

    Args:
        cache_capacity: Bound on distinct compiled engines kept live.
        check_widths: Compile engines with accumulator width checking
            (slower; verification runs only).
    """

    def __init__(self, cache_capacity: int = 8, check_widths: bool = False):
        self.check_widths = check_widths
        self._lock = threading.RLock()
        self._builders: dict[str, Callable[[], DeployedMFDFP]] = {}
        self._artifacts: dict[str, DeployedMFDFP] = {}
        self._cache = EngineCache(capacity=cache_capacity)
        self._store = None
        self._store_names: set[str] = set()
        self._store_versions: dict[str, int] = {}

    @classmethod
    def with_defaults(cls, **kwargs) -> "ModelRegistry":
        """A registry pre-loaded with the zoo's serving entry points."""
        from repro.zoo import DEPLOYABLE_BUILDERS

        registry = cls(**kwargs)
        for name, builder in DEPLOYABLE_BUILDERS.items():
            registry.register(name, builder)
        return registry

    @classmethod
    def from_store(
        cls, store, names: Optional[Sequence[str]] = None, **kwargs
    ) -> "ModelRegistry":
        """A registry whose models load from an on-disk artifact store.

        ``store`` is an :class:`~repro.io.store.ArtifactStore` or a path
        to one (opened read-only — a missing store raises
        :class:`~repro.io.artifacts.ArtifactError` rather than creating
        a directory).  Every model in the store (or the given ``names``)
        is registered with a builder that loads the newest published
        version lazily on first use; loaded artifacts carry the same
        engine fingerprints as their in-memory builds, so a cold-started
        server compiles exactly the engines a warm one would.
        """
        from repro.io.store import ArtifactStore

        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store, create=False)
        registry = cls(**kwargs)
        registry._store = store
        available = store.model_names()
        if names is None:
            names = available
        for name in names:
            if name not in available:
                raise UnknownModelError(name, tuple(available))
            registry._register_store_builder(name, None)
        return registry

    def _register_store_builder(self, name: str, version: Optional[int]) -> None:
        """(Re)bind ``name`` to a store load of one version (None = newest).

        The loaded version number is recorded at build time, so
        :meth:`version_label` reports the version actually served even
        when the builder floats on "newest".  Floating builds resolve
        through :meth:`~repro.io.store.ArtifactStore.load_newest_verified`,
        so a corrupted newest version is quarantined and the cold start
        silently serves the newest version that verifies; a *pinned*
        version that fails verification raises
        :class:`~repro.io.store.QuarantinedArtifactError` instead (the
        caller asked for those bytes specifically).
        """

        def build() -> DeployedMFDFP:
            if version is not None:
                pinned, artifact = version, self._store.load_deployed(name, version)
            else:
                pinned, artifact = self._store.load_newest_verified(name)
            with self._lock:
                self._store_versions[name] = pinned
            return artifact

        self.register(name, build, replace=name in self._store_names)
        with self._lock:
            self._store_names.add(name)

    # -- registration ------------------------------------------------------
    def register(
        self,
        name: str,
        builder: Callable[[], DeployedMFDFP],
        replace: bool = False,
    ) -> None:
        """Register a lazily-built deployable model under ``name``.

        ``builder`` runs at most once, on first use.  Re-registering an
        existing name requires ``replace=True`` and drops the memoized
        artifact (the engine cache is content-addressed, so a replaced
        model that builds identical tensors still hits the cache).
        """
        if not name:
            raise ValueError("model name must be non-empty")  # repro-lint: disable=error-taxonomy (registration argument validation; ValueError is the documented contract)
        with self._lock:
            if name in self._builders and not replace:
                raise ValueError(f"model {name!r} is already registered (replace=True to override)")  # repro-lint: disable=error-taxonomy (registration argument validation; ValueError is the documented contract)
            self._builders[name] = builder
            self._artifacts.pop(name, None)
            self._store_names.discard(name)
            self._store_versions.pop(name, None)

    def names(self) -> list[str]:
        """Registered model names, in registration order."""
        with self._lock:
            return list(self._builders)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._builders

    def __len__(self) -> int:
        with self._lock:
            return len(self._builders)

    # -- resolution --------------------------------------------------------
    def deployed(self, name: str) -> DeployedMFDFP:
        """The model's deployed artifact, building (once) if needed.

        Builds run under the registry lock: concurrent callers for the
        same name get the same object with one builder call.
        """
        with self._lock:
            try:
                builder = self._builders[name]
            except KeyError:
                raise UnknownModelError(name, tuple(self._builders)) from None
            artifact = self._artifacts.get(name)
            if artifact is None:
                artifact = self._artifacts[name] = builder()
            return artifact

    def engine(self, name: str) -> BatchedEngine:
        """The model's compiled engine — same object on every cache hit."""
        return self._cache.get(self.deployed(name), check_widths=self.check_widths)

    def reload(self, name: str, version: Optional[int] = None) -> BatchedEngine:
        """Re-resolve a model and return its fresh engine (rollover hook).

        For a store-backed model the builder is rebound to ``version``
        (``None`` = the newest version published *now*, not the one
        loaded at cold start) and the artifact reloaded from disk.  For
        an in-memory model the memoized artifact is dropped so the
        registered builder runs again — re-register with
        ``replace=True`` first to roll to genuinely new content;
        ``version`` is meaningless without a store and rejected.  The
        engine cache is content-addressed, so reloading identical bytes
        costs one disk read and zero recompiles.
        """
        with self._lock:
            if name not in self._builders:
                raise UnknownModelError(name, tuple(self._builders))
            store_backed = name in self._store_names
        if store_backed:
            self._register_store_builder(name, version)
        else:
            if version is not None:
                raise ValueError(  # repro-lint: disable=error-taxonomy (registration argument validation; ValueError is the documented contract)
                    f"model {name!r} is not store-backed; cannot pin version {version}"
                )
            with self._lock:
                self._artifacts.pop(name, None)
        return self.engine(name)

    def version_label(self, name: str) -> Optional[str]:
        """A human-readable version for what ``name`` currently serves.

        Store-backed models report their store version (``"v0003"``);
        in-memory models report a content fingerprint prefix.  ``None``
        until the model has actually been built.
        """
        with self._lock:
            version = self._store_versions.get(name)
            if version is not None:
                return f"v{version:04d}"
            artifact = self._artifacts.get(name)
        if artifact is not None:
            return engine_fingerprint(artifact)[:12]
        return None

    def cache_stats(self) -> dict:
        """Engine-cache occupancy and hit/miss counters."""
        return {
            "engines": len(self._cache),
            "hits": self._cache.hits,
            "misses": self._cache.misses,
        }
