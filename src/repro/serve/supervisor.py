"""Per-model supervised actors: crash detection, restart, quarantine.

This module is the supervision tree under
:class:`~repro.serve.runtime.ServerRuntime` (the style of message-driven
runtime gridworks-scada's ``proactor``/``actors`` packages build for
SCADA nodes, transplanted to model serving):

* :class:`ModelActor` — one hosted model's mailbox and serving state: a
  bounded pending deque, the live engine (plus the version label it
  serves), adaptive batch size, and the failure bookkeeping supervision
  steers on.  Actors never share queues, so one model's failures cannot
  starve another's traffic.
* :class:`SupervisorPolicy` — the restart rule: capped exponential
  backoff between restarts and quarantine after ``max_failures``
  consecutive crashes.
* :class:`Supervisor` — owns the actors and their worker threads.  A
  worker draining an actor's queue treats any exception escaping a
  model build or a batch execution as **actor death**: the dead batch's
  futures fail with the original error, the engine is discarded, and
  the actor re-enters service through rebuild-with-backoff — or, once
  the consecutive-failure budget is spent, is quarantined (pending and
  future requests fail with
  :class:`~repro.serve.errors.ModelQuarantinedError`) without taking
  the runtime down.

Determinism hooks: the clock *and* the backoff sleep are injectable, so
the fault-injection tests (``tests/serve``) drive crashes, restarts and
quarantine entirely on a fake clock — no wall-clock races.  Engine
(re)solution goes through an injectable ``provider(name, version)``
callable, which is also how :meth:`ServerRuntime.rollover` swaps model
versions without dropping requests: every claim pins the engine object,
version label, and actor *generation* it executes under, and stale
completions/crashes from a retired generation are recognised and kept
from corrupting the new one's supervision state.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.retry import RetryPolicy
from repro.serve.batching import AdaptiveBatchPolicy
from repro.serve.errors import ModelQuarantinedError, ServerClosedError
from repro.serve.metrics import ModelMetrics

#: Actor lifecycle states, as reported by the health surface.
RUNNING = "running"
BACKOFF = "backoff"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart-with-backoff and quarantine rule for model actors.

    ``backoff_s(k)`` after the ``k``-th consecutive failure is
    ``backoff_initial_s * backoff_factor**(k-1)`` capped at
    ``backoff_cap_s``; once ``max_failures`` consecutive failures
    accumulate (each with no successful batch in between), the actor is
    quarantined instead of restarted.
    """

    max_failures: int = 3
    backoff_initial_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0

    def __post_init__(self):
        if self.max_failures < 1:
            raise ValueError(f"max_failures must be at least 1, got {self.max_failures}")
        if self.backoff_initial_s <= 0:
            raise ValueError(f"backoff_initial_s must be positive, got {self.backoff_initial_s}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_cap_s < self.backoff_initial_s:
            raise ValueError(
                f"backoff_cap_s ({self.backoff_cap_s}) must be >= backoff_initial_s "
                f"({self.backoff_initial_s})"
            )

    def retry_policy(self) -> RetryPolicy:
        """This policy's backoff schedule as the repo-wide :class:`RetryPolicy`.

        ``attempts`` maps from ``max_failures`` (the k-th failure being
        terminal is the same shape as "k attempts, then give up");
        supervision keeps its own quarantine bookkeeping and uses only
        the backoff curve.
        """
        return RetryPolicy(
            attempts=self.max_failures,
            backoff_initial_s=self.backoff_initial_s,
            backoff_factor=self.backoff_factor,
            backoff_cap_s=self.backoff_cap_s,
        )

    def backoff_s(self, consecutive_failures: int) -> float:
        """Backoff before the restart following the k-th consecutive failure."""
        if consecutive_failures < 1:
            raise ValueError("backoff is only defined after at least one failure")  # repro-lint: disable=error-taxonomy (precondition on a diagnostics property; ValueError is the documented contract)
        return self.retry_policy().backoff_s(consecutive_failures)


@dataclass
class Request:
    """One admitted request: its payload, its future, its admission time."""

    sample: np.ndarray
    future: Future
    submitted_at: float


class ModelActor:
    """One hosted model's mailbox and supervised serving state.

    All mutable state is guarded by ``self.work`` (a condition on the
    actor's own lock); the actor owns no threads itself — the
    :class:`Supervisor` runs worker loops against it.
    """

    def __init__(
        self,
        name: str,
        metrics: ModelMetrics,
        batch_policy: AdaptiveBatchPolicy,
    ):
        self.name = name
        self.metrics = metrics
        self.batch_policy = batch_policy
        self.lock = threading.Lock()
        self.work = threading.Condition(self.lock)
        self.pending: deque = deque()
        self.engine = None
        self.input_shape: Optional[tuple] = None
        self.version: Optional[str] = None
        #: Bumped whenever the engine binding changes (install, crash,
        #: rollover) so in-flight work can detect it raced a swap.
        self.generation = 0
        self.state = RUNNING
        self.building = False
        self.stopping = False
        self.restarts = 0
        self.consecutive_failures = 0
        self.crashes = 0
        self.last_error: Optional[str] = None
        self.retry_at = 0.0
        self.current_batch = batch_policy.initial

    # All methods below expect ``self.work`` to be held by the caller.
    def install_engine_locked(self, engine, version: Optional[str]) -> None:
        """Bind a live engine (initial build, restart, or rollover)."""
        self.engine = engine
        self.input_shape = tuple(engine.input_shape)
        self.version = version
        self.generation += 1
        self.state = RUNNING
        self.retry_at = 0.0
        self.work.notify_all()

    def claim_locked(self) -> list[Request]:
        """Pop up to ``current_batch`` requests off the mailbox."""
        n = min(self.current_batch, len(self.pending))
        requests = [self.pending.popleft() for _ in range(n)]
        self.metrics.record_claim(n)
        return requests

    def fail_pending_locked(self, error: BaseException) -> int:
        """Reject every queued request with ``error`` (never silently drop)."""
        n = len(self.pending)
        if n:
            self.metrics.record_claim(n)
            self.metrics.record_reject(n)
            for request in self.pending:
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(error)
            self.pending.clear()
        return n

    def quarantine_error(self) -> ModelQuarantinedError:
        return ModelQuarantinedError(
            self.name, self.consecutive_failures, self.last_error or ""
        )


class Supervisor:
    """Owns the model actors and the worker threads draining them.

    Args:
        actors: The hosted :class:`ModelActor` objects, in hosting order.
        policy: Restart/quarantine rule.
        provider: ``provider(name, version) -> (engine, version_label)``;
            raising is an actor failure, handled by supervision.
        workers: Worker threads **per actor**.
        clock: Seconds-valued monotonic clock (injectable for tests).
        sleep: Backoff sleep (injectable; tests advance a fake clock).
    """

    def __init__(
        self,
        actors: list[ModelActor],
        policy: SupervisorPolicy,
        provider: Callable[[str, Optional[int]], tuple],
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.actors = list(actors)
        self.policy = policy
        self.provider = provider
        self.workers = workers
        self.clock = clock
        self.sleep = sleep
        self.threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------
    def prime(self) -> None:
        """Attempt the initial engine build of every actor, supervised.

        A builder crash here is the first failure of that actor — it
        starts life in backoff (or straight in quarantine when
        ``max_failures == 1``) instead of failing construction, so one
        broken model cannot keep the whole runtime from starting.
        """
        for actor in self.actors:
            try:
                engine, label = self.provider(actor.name, None)
            except Exception as error:
                with actor.work:
                    self._record_failure_locked(actor, error)
            else:
                with actor.work:
                    actor.install_engine_locked(engine, label)

    def start(self) -> None:
        """Spawn ``workers`` daemon threads per actor (idempotent)."""
        if self.threads:
            return
        self.threads = [
            threading.Thread(
                target=self._worker,
                args=(actor,),
                name=f"serve-{actor.name}-{i}",
                daemon=True,
            )
            for actor in self.actors
            for i in range(self.workers)
        ]
        for thread in self.threads:
            thread.start()

    def stop(self, drain: bool) -> None:
        """Signal shutdown, then join the workers.

        ``drain=True`` lets the workers serve everything already
        admitted (including surviving restarts/backoff mid-drain — a
        permanently broken model quarantines, which fails its backlog
        with a typed error, so drains always terminate).  ``drain=False``
        fails every pending future with :class:`ServerClosedError`
        immediately.  If no workers were ever started, a draining stop
        serves the backlog inline on the calling thread.
        """
        for actor in self.actors:
            with actor.work:
                actor.stopping = True
                if not drain:
                    actor.fail_pending_locked(
                        ServerClosedError(
                            f"server stopped before serving this {actor.name!r} request"
                        )
                    )
                actor.work.notify_all()
        threads, self.threads = self.threads, []
        for thread in threads:
            thread.join()
        if drain and not threads:
            for actor in self.actors:
                self._worker(actor)  # stopping is set: runs the backlog, returns

    # -- the worker loop ---------------------------------------------------
    def _worker(self, actor: ModelActor) -> None:
        while True:
            kind, payload = self._next_action(actor)
            if kind == "exit":
                return
            if kind == "sleep":
                self.sleep(payload)
            elif kind == "build":
                self._build(actor)
            else:  # "execute"
                self._execute(actor, *payload)

    def _next_action(self, actor: ModelActor):
        """Block until there is something to do for this actor.

        Returns one of ``("exit", None)``, ``("sleep", seconds)``,
        ``("build", None)`` or ``("execute", (engine, version,
        generation, requests))``.  Sleeping and building happen outside
        the actor lock so the mailbox stays live throughout.
        """
        with actor.work:
            while True:
                if not actor.pending:
                    if actor.stopping:
                        return ("exit", None)
                    actor.work.wait()
                    continue
                if actor.state == QUARANTINED:
                    # Late arrivals that raced the quarantine decision.
                    actor.fail_pending_locked(actor.quarantine_error())
                    continue
                if actor.engine is None:
                    if actor.building:
                        actor.work.wait()  # another worker is rebuilding
                        continue
                    now = self.clock()
                    if now < actor.retry_at:
                        return ("sleep", actor.retry_at - now)
                    actor.building = True
                    return ("build", None)
                if actor.batch_policy.target_p99_s is not None:
                    p99 = actor.metrics.latency_percentile(
                        99, window=actor.batch_policy.slo_window
                    )
                    actor.current_batch = actor.batch_policy.next_size(
                        actor.current_batch, len(actor.pending), p99
                    )
                requests = actor.claim_locked()
                return ("execute", (actor.engine, actor.version, actor.generation, requests))

    def _build(self, actor: ModelActor) -> None:
        """(Re)build the actor's engine outside the lock; supervised."""
        with actor.lock:
            generation = actor.generation
        try:
            engine, label = self.provider(actor.name, None)
        except Exception as error:
            with actor.work:
                actor.building = False
                if actor.generation == generation:
                    self._record_failure_locked(actor, error)
                actor.work.notify_all()
            return
        with actor.work:
            actor.building = False
            if actor.generation == generation and actor.engine is None:
                if actor.consecutive_failures > 0:
                    actor.restarts += 1
                actor.install_engine_locked(engine, label)
            actor.work.notify_all()  # wake waiters even if the build went stale

    def _execute(self, actor: ModelActor, engine, version, generation, requests) -> None:
        """Run one micro-batch; a crash escaping the engine kills the actor."""
        live = [r for r in requests if r.future.set_running_or_notify_cancel()]
        good = []
        for request in live:
            if request.sample.shape != engine.input_shape:
                # A malformed request admitted before the first build
                # resolved the input shape: fail it alone, don't let it
                # poison the whole batch (or the actor).
                actor.metrics.record_reject()
                request.future.set_exception(
                    ValueError(
                        f"model {actor.name!r} expects one sample of shape "
                        f"{engine.input_shape}, got {request.sample.shape}"
                    )
                )
            else:
                good.append(request)
        if not good:
            return
        actor.metrics.record_batch(len(good))
        try:
            logits = engine.run(np.stack([r.sample for r in good]))
        except BaseException as error:  # actor death: poisoned batch / broken engine
            actor.metrics.record_crash(len(good))
            for request in good:
                request.future.serving_version = version
                request.future.set_exception(error)
            with actor.work:
                if actor.generation == generation:
                    self._record_failure_locked(actor, error)
                actor.work.notify_all()
            return
        for request, row in zip(good, logits):
            request.future.serving_version = version
            request.future.set_result(row.copy())  # private row: no aliasing
            actor.metrics.record_done(request.submitted_at)
        with actor.lock:
            if actor.generation == generation:
                actor.consecutive_failures = 0

    def _record_failure_locked(self, actor: ModelActor, error: BaseException) -> None:
        """Supervision decision after an actor death (caller holds the lock)."""
        actor.crashes += 1
        actor.consecutive_failures += 1
        actor.last_error = f"{type(error).__name__}: {error}"
        actor.engine = None  # input_shape survives: submits stay validated
        actor.generation += 1
        if actor.consecutive_failures >= self.policy.max_failures:
            actor.state = QUARANTINED
            actor.fail_pending_locked(actor.quarantine_error())
        else:
            actor.state = BACKOFF
            actor.retry_at = self.clock() + self.policy.backoff_s(actor.consecutive_failures)
        actor.work.notify_all()

    # -- readout -----------------------------------------------------------
    def health_locked_snapshot(self, actor: ModelActor) -> dict:
        """One actor's supervision state + metrics, consistently."""
        with actor.lock:
            snap = actor.metrics.snapshot()
            snap.update(
                state=actor.state,
                active_version=actor.version,
                restarts=actor.restarts,
                consecutive_failures=actor.consecutive_failures,
                restart_budget_remaining=max(
                    0, self.policy.max_failures - actor.consecutive_failures
                ),
                crashes=actor.crashes,
                last_error=actor.last_error,
                current_batch=actor.current_batch,
            )
            target = actor.batch_policy.target_p99_s
            if target is not None:
                p99 = actor.metrics.latency_percentile(
                    99, window=actor.batch_policy.slo_window
                )
                snap["slo"] = {
                    "target_p99_s": target,
                    "recent_p99_s": p99,
                    "met": bool(not (p99 == p99) or p99 <= target),  # nan → vacuously met
                }
            return snap
