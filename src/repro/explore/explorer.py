"""Successive-halving design-space exploration with Pareto pruning.

The explorer walks a :class:`~repro.explore.space.DesignSpace` through a
ladder of evaluation fidelities ("rungs"):

* rung 0 (and any rung with epoch budget 0) quantizes the trained float
  network and measures accuracy with **no fine-tuning** — the epoch-0
  point of Figure 3, costing one calibration pass;
* intermediate rungs run a few epochs of phase-1 fine-tuning — a cheap
  surrogate for where the full pipeline will land;
* the final rung runs the complete MF-DFP pipeline (Algorithm 1 phases
  1+2 via :func:`repro.core.pipeline.run_algorithm1`) on the survivors.

Before rung 0, *cost twins* are eliminated without any evaluation:
designs identical in quantization (bits, clamp, rounding mode, PU
count) but differing in a cost-only axis (technology node) measure
bit-identical accuracy at every fidelity — the RNG contract below —
so within such a group only the cost-Pareto-optimal members can ever
reach a frontier.  After every surrogate rung, points that are
Pareto-dominated on (accuracy, energy, area) — with a configurable
accuracy ``margin`` protecting against low-fidelity noise — are pruned
(:func:`repro.analysis.frontier.prune_dominated`), so the expensive full
pipeline runs only on candidates that could still matter.  The reported
frontier is the exact (margin-free) Pareto set of the full-fidelity
survivors.

Determinism contract: every evaluation derives its RNG from
``SeedSequence([seed, rung, bits, -min_exp, weight-mode, member])`` —
keyed on the *quantization identity*, never on the point's position in
the grid, so nothing about pruning decisions, fan-out
(``jobs``/``backend``), chunking, or kill-and-resume can change any
point's measured accuracy, and designs that differ only in the
cost-side axis (technology node) measure bit-identical accuracy — which
is why a dominated node is pruned by *exactly* the frontier the
exhaustive run would have found.  The cost
metrics (area/power from :class:`repro.hw.cost.CostModel`, latency from
:class:`repro.hw.scheduler.TileScheduler`, energy = power × latency) are
closed-form and computed host-side.  The whole exploration is therefore
bit-identical across ``jobs=1``/thread, ``jobs=N``/process, and a
mid-run SIGKILL + resume — pinned by the cross-backend property tests.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.campaign import evaluate_batched, parallel_map
from repro.analysis.frontier import Objective, pareto_frontier, prune_dominated
from repro.core.ensemble import Ensemble
from repro.core.mfdfp import MFDFPNetwork
from repro.core.pipeline import MFDFPConfig, phase1_finetune, run_algorithm1
from repro.explore.space import WEIGHT_MODES, DesignPoint, DesignSpace
from repro.hw.cost import CostModel, NPUDesign, technology
from repro.hw.scheduler import TileScheduler
from repro.nn.data import ArrayDataset
from repro.nn.network import Network

#: Pipeline fill depth of the MF-DFP shift datapath (see repro.hw.accelerator).
_MFDFP_PIPELINE_DEPTH = 4


class ExploreConfigError(ValueError):
    """An exploration configuration is out of range or inconsistent."""


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs of one exploration run.

    Attributes:
        seed: Root of every per-point RNG stream
            (``SeedSequence([seed, rung, bits, -min_exp, mode, member])``).
        rung_epochs: Phase-1 epoch budget per surrogate rung, cheapest
            first; ``0`` means quantize-only (no fine-tuning).  The full
            pipeline always runs as one extra final rung after these.
        final_epochs: Phase-1 *and* phase-2 epoch budget of the final
            full-pipeline rung.
        margin: Accuracy slack for surrogate-rung pruning — a point
            survives unless it is dominated by more than this on the
            (noisy) accuracy axis.  Exact objectives (energy, area)
            always prune with zero slack.
        prune: ``False`` evaluates every point at full fidelity
            (exhaustive mode — the reference the pruning benchmark
            compares against).
        lr: Fine-tuning learning rate for the surrogate and final rungs.
        batch_size: Evaluation batch size.
        checkpoint_every: Evaluations between checkpoint saves when a
            checkpointer is attached (smaller = finer resume granularity).
    """

    seed: int = 0
    rung_epochs: tuple = (0, 1)
    final_epochs: int = 2
    margin: float = 0.02
    prune: bool = True
    lr: float = 5e-3
    batch_size: int = 256
    checkpoint_every: int = 8

    def __post_init__(self):
        if isinstance(self.seed, bool) or not isinstance(self.seed, numbers.Integral):
            raise ExploreConfigError(f"seed must be an integer, got {self.seed!r}")
        object.__setattr__(self, "seed", int(self.seed))
        epochs = tuple(self.rung_epochs)
        for e in epochs:
            if isinstance(e, bool) or not isinstance(e, numbers.Integral) or e < 0:
                raise ExploreConfigError(f"rung_epochs must be ints >= 0, got {e!r}")
        if list(epochs) != sorted(epochs):
            raise ExploreConfigError(
                f"rung_epochs must be non-decreasing (cheapest rung first), got {epochs}"
            )
        object.__setattr__(self, "rung_epochs", tuple(int(e) for e in epochs))
        if (
            isinstance(self.final_epochs, bool)
            or not isinstance(self.final_epochs, numbers.Integral)
            or self.final_epochs < 1
        ):
            raise ExploreConfigError(f"final_epochs must be an int >= 1, got {self.final_epochs!r}")
        object.__setattr__(self, "final_epochs", int(self.final_epochs))
        if not (self.margin >= 0):  # also rejects NaN
            raise ExploreConfigError(f"margin must be >= 0, got {self.margin!r}")
        if self.checkpoint_every < 1:
            raise ExploreConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every!r}"
            )

    @property
    def final_rung(self) -> int:
        """Index of the full-pipeline rung (after every surrogate rung)."""
        return len(self.rung_epochs)

    def spec(self) -> dict:
        """JSON-serializable description embedded in checkpoints."""
        return {
            "seed": self.seed,
            "rung_epochs": list(self.rung_epochs),
            "final_epochs": self.final_epochs,
            "margin": float(self.margin),
            "prune": bool(self.prune),
            "lr": float(self.lr),
            "batch_size": int(self.batch_size),
        }


@dataclass(frozen=True)
class EvaluatedPoint:
    """One design point measured at one fidelity rung.

    ``accuracy`` comes from the rung's evaluation; the cost metrics are
    closed-form model outputs and identical across rungs.  ``full``
    marks final-rung (complete MF-DFP pipeline) evaluations — only those
    appear in frontiers.
    """

    point: DesignPoint
    rung: int
    accuracy: float
    area_mm2: float
    power_mw: float
    latency_us: float
    energy_uj: float
    full: bool


@dataclass
class ExplorationResult:
    """Everything one exploration produced.

    ``evaluations`` holds every (point, rung) measurement in canonical
    order (rung-major, then point index).  ``frontier`` is the exact
    Pareto set — maximize accuracy, minimize energy and area — over the
    full-fidelity survivors.  ``full_evaluations`` counts complete
    MF-DFP pipeline runs, the currency the successive-halving gate is
    measured in.
    """

    space: DesignSpace
    config: ExploreConfig
    evaluations: list
    frontier: list
    survivors_per_rung: list
    full_evaluations: int

    @property
    def total_evaluations(self) -> int:
        return len(self.evaluations)

    def rows(self) -> list[dict]:
        """Frontier as printable/serializable dicts, canonical order."""
        return [
            {
                "label": e.point.label,
                "bits": e.point.bits,
                "min_exp": e.point.min_exp,
                "weight_mode": e.point.weight_mode,
                "num_pus": e.point.num_pus,
                "technology": e.point.technology,
                "accuracy": e.accuracy,
                "area_mm2": e.area_mm2,
                "power_mw": e.power_mw,
                "latency_us": e.latency_us,
                "energy_uj": e.energy_uj,
            }
            for e in self.frontier
        ]


def _member_rng(seed: int, rung: int, point: DesignPoint, member: int) -> np.random.Generator:
    """The one RNG stream of an ensemble member's evaluation.

    Keyed on the quantization identity ``(seed, rung, bits, -min_exp,
    weight mode, member)`` — independent of pruning decisions, fan-out,
    chunking, resume, *and* of the cost-only technology axis, so two
    grid points that quantize identically measure identical accuracy.
    (``-min_exp`` because clamps are negative and seed entries must not be.)
    """
    mode = WEIGHT_MODES.index(point.weight_mode)
    return np.random.default_rng(
        np.random.SeedSequence([seed, rung, point.bits, -point.min_exp, mode, member])
    )


def _member_start(net: Network, rng: np.random.Generator, member: int) -> Network:
    """Starting float network for ensemble member ``member``.

    Member 0 is the trained network itself; later members perturb the
    trained weights (as the paper's Phase 3 restarts from different
    float networks) so the ensemble members decorrelate.
    """
    start = net.clone()
    if member > 0:
        for p in start.params:
            p.data = p.data + rng.normal(scale=0.02, size=p.data.shape).astype(p.data.dtype)
    return start


class _PointTask:
    """Picklable zero-argument task: one design point at one rung.

    Returns ``(point index, rung, accuracy)`` — plain floats cross the
    process boundary; cost metrics are computed host-side.  Carries the
    float network and datasets by value (pickled per task on the process
    backend, shared by reference on the thread backend).
    """

    def __init__(self, net, train, val, calibration_x, point, rung, epochs, full, config):
        self.net = net
        self.train = train
        self.val = val
        self.calibration_x = calibration_x
        self.point = point
        self.rung = rung
        self.epochs = epochs
        self.full = full
        self.config = config

    def __call__(self) -> tuple:
        acc = _point_accuracy(
            self.net,
            self.train,
            self.val,
            self.calibration_x,
            self.point,
            self.rung,
            self.epochs,
            self.full,
            self.config,
        )
        return (self.point.index, self.rung, acc)


def _point_accuracy(
    net: Network,
    train: ArrayDataset,
    val: ArrayDataset,
    calibration_x: np.ndarray,
    point: DesignPoint,
    rung: int,
    epochs: int,
    full: bool,
    config: ExploreConfig,
) -> float:
    """Accuracy of one design point at one fidelity, bit-deterministic."""
    members = []
    for member in range(point.num_pus):
        rng = _member_rng(config.seed, rung, point, member)
        start = _member_start(net, rng, member)
        mf_config = MFDFPConfig(
            bits=point.bits,
            min_exp=point.min_exp,
            weight_mode=point.weight_mode,
            lr=config.lr,
            phase1_epochs=config.final_epochs if full else epochs,
            phase2_epochs=config.final_epochs,
            snapshot_phase1=False,
        )
        if full:
            result = run_algorithm1(start, train, val, calibration_x, mf_config, rng=rng)
            members.append(result.mfdfp)
            continue
        mf = MFDFPNetwork.from_float(
            start,
            calibration_x,
            bits=point.bits,
            min_exp=point.min_exp,
            weight_mode=point.weight_mode,
            rng=rng,
        )
        if epochs > 0:
            phase1_finetune(mf, train, val, mf_config, rng=rng)
        members.append(mf)
    if len(members) == 1:
        return evaluate_batched(members[0], val.x, val.y, batch_size=config.batch_size)
    return Ensemble(members).accuracy(val, batch_size=config.batch_size)


def _cost_metrics(net: Network, point: DesignPoint, models: dict) -> tuple:
    """(area_mm2, power_mw, latency_us, energy_uj) — closed-form, host-side.

    Latency schedules the workload on one PU (ensemble members run in
    parallel on their own PUs); power and area scale with ``num_pus``
    through the cost model, so the ensemble pays energy, not time.
    """
    model = models.get(point.technology)
    if model is None:
        model = models[point.technology] = CostModel(technology(point.technology))
    breakdown = model.evaluate_design(
        NPUDesign(activation_bits=point.bits, num_pus=point.num_pus)
    )
    schedule = TileScheduler(
        pipeline_depth=_MFDFP_PIPELINE_DEPTH,
        activation_bits=point.bits,
        weight_bits=4,
    ).schedule_network(net)
    latency_us = schedule.time_us()
    energy_uj = breakdown.power_mw * 1e-3 * latency_us
    return (breakdown.area_mm2, breakdown.power_mw, latency_us, energy_uj)


def _cost_twin_survivors(points: list, costs: dict) -> list:
    """Drop designs that a quantization-identical sibling cost-dominates.

    Designs sharing (bits, min_exp, weight_mode, num_pus) measure
    bit-identical accuracy at every rung (the RNG contract), so within
    such a group only the members on the (energy, area) Pareto set can
    ever reach any frontier — the rest are eliminated before rung 0
    without spending a single evaluation.  Margin-relaxed pruning cannot
    do this: an exact accuracy tie is never "dominated by more than the
    margin".  Grid order is preserved; equal-cost ties are kept.
    """
    groups: dict = {}
    for p in points:
        groups.setdefault((p.bits, p.min_exp, p.weight_mode, p.num_pus), []).append(p)
    cost_axes = [
        Objective("energy_uj", key=lambda p: costs[p.index][3]),
        Objective("area_mm2", key=lambda p: costs[p.index][0]),
    ]
    kept = set()
    for group in groups.values():
        for p in group if len(group) == 1 else pareto_frontier(group, cost_axes):
            kept.add(p.index)
    return [p for p in points if p.index in kept]


def _objectives(margin: float) -> list[Objective]:
    """Maximize accuracy (with slack on noisy rungs), minimize energy/area."""
    return [
        Objective("accuracy", key=lambda e: e.accuracy, maximize=True, margin=margin),
        Objective("energy_uj", key=lambda e: e.energy_uj),
        Objective("area_mm2", key=lambda e: e.area_mm2),
    ]


def explore(
    net: Network,
    train: ArrayDataset,
    val: ArrayDataset,
    calibration_x: np.ndarray,
    space: DesignSpace,
    config: Optional[ExploreConfig] = None,
    *,
    jobs: Optional[int] = 1,
    backend: str = "thread",
    mp_context=None,
    checkpoint=None,
) -> ExplorationResult:
    """Run one multi-dimensional co-design exploration.

    Evaluates ``space`` through the successive-halving rung ladder of
    ``config``, fanning each rung's evaluations out through
    :func:`repro.analysis.campaign.parallel_map` (``backend="thread"``
    shares the network; ``backend="process"`` pickles per-point tasks
    across real cores).  ``checkpoint`` is an optional
    :class:`repro.io.exploration.ExplorationCheckpointer`: completed
    evaluations are persisted every ``config.checkpoint_every`` points
    and a restarted exploration reloads them, re-derives every pruning
    decision from the stored rows, and continues — bit-identically,
    because no measurement depends on which run performed it.
    """
    config = config or ExploreConfig()
    points = space.points()
    done: dict = {}
    if checkpoint is not None:
        done = checkpoint.load(space, config)

    models: dict = {}
    costs = {p.index: _cost_metrics(net, p, models) for p in points}

    def materialize(index: int, rung: int, accuracy: float, full: bool) -> EvaluatedPoint:
        area, power, latency, energy = costs[index]
        return EvaluatedPoint(
            point=points[index],
            rung=rung,
            accuracy=accuracy,
            area_mm2=area,
            power_mw=power,
            latency_us=latency,
            energy_uj=energy,
            full=full,
        )

    def run_rung(survivors: list, rung: int, epochs: int, full: bool) -> list:
        pending = [p for p in survivors if (rung, p.index) not in done]
        for chunk_start in range(0, len(pending), config.checkpoint_every):
            chunk = pending[chunk_start : chunk_start + config.checkpoint_every]
            results = parallel_map(
                [
                    _PointTask(net, train, val, calibration_x, p, rung, epochs, full, config)
                    for p in chunk
                ],
                jobs=jobs,
                backend=backend,
                mp_context=mp_context,
            )
            for index, r, acc in results:
                done[(r, index)] = materialize(index, r, acc, full)
            if checkpoint is not None:
                checkpoint.save(list(done.values()), space, config)
        return [done[(rung, p.index)] for p in survivors]

    survivors = points
    survivors_per_rung = []
    if config.prune:
        survivors = _cost_twin_survivors(points, costs)
        for rung, epochs in enumerate(config.rung_epochs):
            rung_evals = run_rung(survivors, rung, epochs, full=False)
            kept = prune_dominated(rung_evals, _objectives(config.margin))
            survivors = [e.point for e in kept]
            survivors_per_rung.append(len(survivors))

    final_evals = run_rung(survivors, config.final_rung, config.final_epochs, full=True)
    survivors_per_rung.append(len(survivors))
    frontier = pareto_frontier(final_evals, _objectives(0.0))

    evaluations = [done[key] for key in sorted(done)]
    return ExplorationResult(
        space=space,
        config=config,
        evaluations=evaluations,
        frontier=frontier,
        survivors_per_rung=survivors_per_rung,
        full_evaluations=sum(1 for e in evaluations if e.full),
    )
