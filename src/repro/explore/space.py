"""The co-design grid: quantization knobs × NPU configuration × technology.

A :class:`DesignSpace` is a declarative cross product over the axes the
paper's Table-2/Fig-3 story trades against each other — activation bit
width, weight-exponent clamp, rounding mode, processing-unit count, and
the technology corner pricing the silicon.  Points enumerate in a fixed
lexicographic order (the declared axis order, each axis in its declared
sequence), so a point's ``index`` is a stable identity: the explorer's
per-point RNG streams, checkpoints, and resume logic all key on it.

Spaces round-trip losslessly through :meth:`DesignSpace.spec` /
:meth:`DesignSpace.from_spec` — the exploration checkpointer embeds the
spec so a resumed search can refuse to mix rows from a different grid.
"""

from __future__ import annotations

import itertools
import numbers
from dataclasses import dataclass

from repro.hw.cost import TECHNOLOGY_PRESETS, CostModelError, NPUDesign

#: Rounding modes understood by ``MFDFPNetwork.from_float``.
WEIGHT_MODES = ("deterministic", "stochastic")


class DesignSpaceError(ValueError):
    """A design-space declaration is empty, malformed, or out of range."""


def _int_axis(name: str, values, lo: int, hi: int) -> tuple:
    values = tuple(values)
    if not values:
        raise DesignSpaceError(f"{name} axis must not be empty")
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, numbers.Integral):
            raise DesignSpaceError(f"{name} values must be integers, got {v!r}")
        v = int(v)
        if not lo <= v <= hi:
            raise DesignSpaceError(f"{name} values must be in [{lo}, {hi}], got {v}")
        out.append(v)
    if len(set(out)) != len(out):
        raise DesignSpaceError(f"{name} axis has duplicate values: {values}")
    return tuple(out)


@dataclass(frozen=True)
class DesignPoint:
    """One candidate co-design: quantization format + NPU + technology.

    ``index`` is the point's position in its space's lexicographic
    enumeration — the stable key for RNG derivation and checkpoints.
    """

    index: int
    bits: int
    min_exp: int
    weight_mode: str
    num_pus: int
    technology: str

    @property
    def label(self) -> str:
        return (
            f"b{self.bits}/e{self.min_exp}/{self.weight_mode[:5]}"
            f"/pu{self.num_pus}/{self.technology}"
        )


@dataclass(frozen=True)
class DesignSpace:
    """A cross product of co-design axes, enumerated lexicographically.

    Axis order is fixed (bits, min_exps, weight_modes, num_pus,
    technologies); each axis iterates in its declared sequence.  The
    default space is the paper's neighborhood: 4/8-bit activations, the
    e ≥ -7 clamp against a looser one, deterministic rounding, one or
    two processing units, the 65 nm synthesis node.
    """

    bits: tuple = (4, 8)
    min_exps: tuple = (-7, -9)
    weight_modes: tuple = ("deterministic",)
    num_pus: tuple = (1, 2)
    technologies: tuple = ("65nm",)

    def __post_init__(self):
        object.__setattr__(self, "bits", _int_axis("bits", self.bits, 1, 16))
        object.__setattr__(self, "min_exps", _int_axis("min_exps", self.min_exps, -32, -1))
        object.__setattr__(self, "num_pus", _int_axis("num_pus", self.num_pus, 1, 8))
        modes = tuple(self.weight_modes)
        if not modes:
            raise DesignSpaceError("weight_modes axis must not be empty")
        for mode in modes:
            if mode not in WEIGHT_MODES:
                raise DesignSpaceError(
                    f"unknown weight mode {mode!r}; choose from {WEIGHT_MODES}"
                )
        if len(set(modes)) != len(modes):
            raise DesignSpaceError(f"weight_modes axis has duplicate values: {modes}")
        object.__setattr__(self, "weight_modes", modes)
        techs = tuple(self.technologies)
        if not techs:
            raise DesignSpaceError("technologies axis must not be empty")
        for tech in techs:
            if tech not in TECHNOLOGY_PRESETS:
                known = ", ".join(sorted(TECHNOLOGY_PRESETS))
                raise DesignSpaceError(f"unknown technology {tech!r} (known: {known})")
        if len(set(techs)) != len(techs):
            raise DesignSpaceError(f"technologies axis has duplicate values: {techs}")
        object.__setattr__(self, "technologies", techs)
        # every (bits, num_pus) pair must be a priceable NPU design
        for b in self.bits:
            for n in self.num_pus:
                try:
                    NPUDesign(activation_bits=b, num_pus=n)
                except CostModelError as exc:
                    raise DesignSpaceError(str(exc)) from exc

    def __len__(self) -> int:
        return (
            len(self.bits)
            * len(self.min_exps)
            * len(self.weight_modes)
            * len(self.num_pus)
            * len(self.technologies)
        )

    def points(self) -> list[DesignPoint]:
        """Every point, in the space's canonical lexicographic order."""
        return [
            DesignPoint(index=i, bits=b, min_exp=e, weight_mode=m, num_pus=n, technology=t)
            for i, (b, e, m, n, t) in enumerate(
                itertools.product(
                    self.bits, self.min_exps, self.weight_modes, self.num_pus, self.technologies
                )
            )
        ]

    def spec(self) -> dict:
        """A JSON-serializable description that round-trips the space."""
        return {
            "bits": list(self.bits),
            "min_exps": list(self.min_exps),
            "weight_modes": list(self.weight_modes),
            "num_pus": list(self.num_pus),
            "technologies": list(self.technologies),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "DesignSpace":
        """Rebuild a space from :meth:`spec` output (validates everything)."""
        if not isinstance(spec, dict):
            raise DesignSpaceError(f"space spec must be a dict, got {type(spec).__name__}")
        missing = {"bits", "min_exps", "weight_modes", "num_pus", "technologies"} - set(spec)
        if missing:
            raise DesignSpaceError(f"space spec missing axes: {sorted(missing)}")
        return cls(
            bits=tuple(spec["bits"]),
            min_exps=tuple(spec["min_exps"]),
            weight_modes=tuple(spec["weight_modes"]),
            num_pus=tuple(spec["num_pus"]),
            technologies=tuple(spec["technologies"]),
        )
