"""Hardware/quantization co-design exploration (the lumos-scale DSE).

* :mod:`repro.explore.space` — the declarative co-design grid
  (bit width × exponent clamp × rounding mode × PU count × technology)
  with a canonical lexicographic enumeration.
* :mod:`repro.explore.explorer` — the successive-halving scheduler:
  cheap low-epoch surrogate rungs prune Pareto-dominated designs
  (:mod:`repro.analysis.frontier`) before the surviving candidates pay
  for full MF-DFP pipelines, fanned out through the campaign runner and
  checkpointed through :mod:`repro.io.exploration` so a killed search
  resumes bit-identically.

Driven by ``python -m repro explore``.
"""

from repro.explore.explorer import (
    EvaluatedPoint,
    ExplorationResult,
    ExploreConfig,
    ExploreConfigError,
    explore,
)
from repro.explore.space import (
    WEIGHT_MODES,
    DesignPoint,
    DesignSpace,
    DesignSpaceError,
)

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceError",
    "EvaluatedPoint",
    "ExplorationResult",
    "ExploreConfig",
    "ExploreConfigError",
    "WEIGHT_MODES",
    "explore",
]
