"""ImageNet surrogate.

Full ImageNet (1.28M images, 1000 classes, 3x227x227 after cropping) is
neither available offline nor trainable in numpy at this scale.  The
surrogate keeps the *accuracy experiments* tractable by generating a
downscaled class-conditional dataset, while the *hardware experiments*
(Tables 1–3) use the full AlexNet tensor shapes analytically via
:mod:`repro.zoo.alexnet` — no training is needed for those.
"""

from __future__ import annotations

from repro.datasets.synthetic import make_classification_images
from repro.nn.data import ArrayDataset

#: Input shape the paper's AlexNet operates on (Caffe's 227x227 crop).
IMAGENET_SHAPE = (3, 227, 227)
IMAGENET_CLASSES = 1000


def imagenet_surrogate(
    n_train: int = 4000,
    n_test: int = 1000,
    num_classes: int = 20,
    size: int = 32,
    noise: float = 0.3,
    seed: int = 7,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Downscaled ImageNet stand-in.

    Defaults (20 classes at 32x32) keep AlexNet-style training runnable on
    a laptop; pass larger ``num_classes``/``size`` to stress the pipeline.
    The higher class count and noise relative to the CIFAR surrogate mimic
    ImageNet's harder operating point (lower absolute accuracy).
    """
    return make_classification_images(
        n_train,
        n_test,
        num_classes=num_classes,
        channels=3,
        size=size,
        noise=noise,
        seed=seed,
    )
