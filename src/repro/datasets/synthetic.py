"""Class-conditional synthetic image generator.

Each class owns a small set of low-frequency "texture" prototypes
(smooth random fields).  A sample is a randomly chosen prototype with a
random spatial shift, per-sample contrast/brightness jitter, and additive
Gaussian noise.  The task is learnable by small conv nets but not
linearly trivial, so quantization-induced accuracy differences — the
quantity the paper's experiments measure — remain visible.

Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import ArrayDataset


def _low_frequency_field(rng: np.random.Generator, channels: int, h: int, w: int, coarse: int = 4):
    """Smooth random field: coarse Gaussian grid upsampled bilinearly."""
    ch = max(2, h // coarse)
    cw = max(2, w // coarse)
    grid = rng.normal(0.0, 1.0, size=(channels, ch, cw))
    ys = np.linspace(0, ch - 1, h)
    xs = np.linspace(0, cw - 1, w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, ch - 1)
    x1 = np.minimum(x0 + 1, cw - 1)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    top = grid[:, y0][:, :, x0] * (1 - wx) + grid[:, y0][:, :, x1] * wx
    bot = grid[:, y1][:, :, x0] * (1 - wx) + grid[:, y1][:, :, x1] * wx
    field = top * (1 - wy) + bot * wy
    field /= max(1e-8, np.abs(field).max())
    return field.astype(np.float32)


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Shape and difficulty knobs of the generator."""

    num_classes: int = 10
    channels: int = 3
    height: int = 32
    width: int = 32
    prototypes_per_class: int = 2
    noise: float = 0.25
    max_shift: int = 2
    jitter: float = 0.15


class SyntheticImageGenerator:
    """Deterministic class-conditional image sampler.

    Args:
        config: Shape/difficulty configuration.
        seed: Seeds the prototype bank; sampling uses a caller-provided or
            derived generator so that train/test splits are disjoint
            streams over the same prototypes.
    """

    def __init__(self, config: SyntheticImageConfig | None = None, seed: int = 0):
        self.config = config or SyntheticImageConfig()
        self.seed = seed
        rng = np.random.default_rng(seed)
        c = self.config
        self.prototypes = np.stack(
            [
                np.stack(
                    [
                        _low_frequency_field(rng, c.channels, c.height, c.width)
                        for _ in range(c.prototypes_per_class)
                    ]
                )
                for _ in range(c.num_classes)
            ]
        )  # (classes, protos, C, H, W)

    @property
    def sample_shape(self) -> tuple:
        c = self.config
        return (c.channels, c.height, c.width)

    def sample(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled images using ``rng``."""
        c = self.config
        labels = rng.integers(0, c.num_classes, size=n)
        proto_idx = rng.integers(0, c.prototypes_per_class, size=n)
        x = self.prototypes[labels, proto_idx].copy()
        if c.max_shift > 0:
            shifts = rng.integers(-c.max_shift, c.max_shift + 1, size=(n, 2))
            for i, (dy, dx) in enumerate(shifts):
                x[i] = np.roll(x[i], (int(dy), int(dx)), axis=(1, 2))
        if c.jitter > 0:
            contrast = 1.0 + rng.uniform(-c.jitter, c.jitter, size=(n, 1, 1, 1))
            brightness = rng.uniform(-c.jitter, c.jitter, size=(n, 1, 1, 1))
            x = x * contrast + brightness
        if c.noise > 0:
            x = x + rng.normal(0.0, c.noise, size=x.shape)
        return np.clip(x, -2.0, 2.0).astype(np.float32), labels.astype(np.int64)

    def dataset(self, n: int, stream: int = 0) -> ArrayDataset:
        """Dataset of ``n`` samples from an independent stream.

        Streams with different ids (e.g. train=0, test=1) never share
        random draws, but all use the same class prototypes.
        """
        rng = np.random.default_rng((self.seed, stream))
        x, y = self.sample(n, rng)
        return ArrayDataset(x, y)


def make_classification_images(
    n_train: int,
    n_test: int,
    num_classes: int = 10,
    channels: int = 3,
    size: int = 32,
    noise: float = 0.25,
    seed: int = 0,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Convenience wrapper: (train, test) datasets from one generator."""
    config = SyntheticImageConfig(
        num_classes=num_classes, channels=channels, height=size, width=size, noise=noise
    )
    gen = SyntheticImageGenerator(config, seed=seed)
    return gen.dataset(n_train, stream=0), gen.dataset(n_test, stream=1)
