"""Dataset substrates.

Real CIFAR-10 / ImageNet files are not available in this offline
environment, so the default providers are deterministic *surrogates*:
class-conditional structured image generators with the same tensor shapes
as the originals (see DESIGN.md, "Substitutions").  When the real CIFAR-10
binary batches are present on disk, :func:`repro.datasets.cifar10.load_real_cifar10`
loads them instead, so the whole pipeline runs unmodified on real data.
"""

from repro.datasets.cifar10 import CIFAR10_SHAPE, cifar10_surrogate, load_real_cifar10
from repro.datasets.imagenet import IMAGENET_SHAPE, imagenet_surrogate
from repro.datasets.synthetic import SyntheticImageGenerator, make_classification_images

__all__ = [
    "CIFAR10_SHAPE",
    "IMAGENET_SHAPE",
    "SyntheticImageGenerator",
    "cifar10_surrogate",
    "imagenet_surrogate",
    "load_real_cifar10",
    "make_classification_images",
]
