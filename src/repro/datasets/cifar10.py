"""CIFAR-10: real-file loader plus offline surrogate.

The paper's CIFAR-10 experiments use the 10-class 3x32x32 benchmark of
Krizhevsky & Hinton.  :func:`load_real_cifar10` parses the original binary
batches when they are available; :func:`cifar10_surrogate` generates a
deterministic synthetic stand-in with identical shapes (see DESIGN.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import make_classification_images
from repro.nn.data import ArrayDataset

CIFAR10_SHAPE = (3, 32, 32)
CIFAR10_CLASSES = 10
_RECORD_BYTES = 1 + 3 * 32 * 32


def cifar10_surrogate(
    n_train: int = 2000,
    n_test: int = 500,
    size: int = 32,
    noise: float = 0.25,
    seed: int = 0,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Synthetic CIFAR-10 stand-in: 10 classes, 3 channels, ``size``².

    ``size`` defaults to the real 32 but can be reduced for fast tests.
    """
    return make_classification_images(
        n_train, n_test, num_classes=CIFAR10_CLASSES, channels=3, size=size, noise=noise, seed=seed
    )


def _parse_batch(path: Path) -> tuple[np.ndarray, np.ndarray]:
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size % _RECORD_BYTES:
        raise ValueError(f"{path} is not a CIFAR-10 binary batch (size {raw.size})")
    raw = raw.reshape(-1, _RECORD_BYTES)
    labels = raw[:, 0].astype(np.int64)
    images = raw[:, 1:].reshape(-1, 3, 32, 32).astype(np.float32)
    return images, labels


def load_real_cifar10(data_dir: str | os.PathLike) -> tuple[ArrayDataset, ArrayDataset]:
    """Load the original CIFAR-10 binary batches from ``data_dir``.

    Expects ``data_batch_{1..5}.bin`` and ``test_batch.bin`` (the
    "CIFAR-10 binary version" distribution).  Images are scaled to
    ``[-0.5, 0.5]`` (global mean subtraction, as in the Caffe recipe the
    paper follows).
    """
    data_dir = Path(data_dir)
    train_files = [data_dir / f"data_batch_{i}.bin" for i in range(1, 6)]
    test_file = data_dir / "test_batch.bin"
    missing = [str(p) for p in train_files + [test_file] if not p.exists()]
    if missing:
        raise FileNotFoundError(f"CIFAR-10 binaries not found: {missing}")
    xs, ys = zip(*(_parse_batch(p) for p in train_files))
    train_x = np.concatenate(xs) / 255.0
    train_y = np.concatenate(ys)
    test_x, test_y = _parse_batch(test_file)
    test_x = test_x / 255.0
    mean = train_x.mean()
    return (
        ArrayDataset((train_x - mean).astype(np.float32), train_y),
        ArrayDataset((test_x - mean).astype(np.float32), test_y),
    )
