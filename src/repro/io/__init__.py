"""Artifact persistence: one container format, checkpoints, and a store.

Everything the reproduction writes to disk flows through this package:

* :mod:`repro.io.artifacts` — the versioned ``.npz``+JSON container
  (schema-validated, fingerprint-checked, typed
  :class:`~repro.io.artifacts.ArtifactError` hierarchy) with codecs for
  deployed MF-DFP networks, float networks, optimizer state, training
  checkpoints and full :class:`~repro.core.pipeline.MFDFPResult`
  objects.  The legacy ``repro.hw.export`` format loads here too.
* :mod:`repro.io.checkpoint` — periodic epoch-boundary checkpoints for
  :class:`~repro.nn.trainer.Trainer` and Algorithm 1, with exact
  (bit-identical) resume.
* :mod:`repro.io.store` — :class:`~repro.io.store.ArtifactStore`, the
  versioned on-disk layout that
  :meth:`repro.serve.ModelRegistry.from_store` cold-starts from and
  ``python -m repro export/import/resume`` operate on.
* :mod:`repro.io.exploration` — whole-exploration checkpoints for the
  co-design explorer (``python -m repro explore``): completed
  evaluations persist as one container per save, and a killed search
  resumes bit-identically.
"""

from repro.io.artifacts import (
    FORMAT_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactSchemaError,
    ArtifactVersionError,
    load_checkpoint,
    load_deployed,
    load_mfdfp_result,
    load_network_into,
    load_network_state,
    load_optimizer_state,
    read_container,
    read_header,
    save_checkpoint,
    save_deployed,
    save_mfdfp_result,
    save_network,
    save_optimizer,
    write_container,
)
from repro.io.checkpoint import (
    Checkpointer,
    CheckpointStateError,
    PipelineCheckpointer,
    resume_algorithm1,
)
from repro.io.exploration import ExplorationCheckpointer
from repro.io.store import (
    ArtifactStore,
    QuarantinedArtifactError,
    TransientStoreError,
)

__all__ = [
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactSchemaError",
    "ArtifactStore",
    "ArtifactVersionError",
    "Checkpointer",
    "ExplorationCheckpointer",
    "FORMAT_VERSION",
    "PipelineCheckpointer",
    "QuarantinedArtifactError",
    "TransientStoreError",
    "load_checkpoint",
    "load_deployed",
    "load_mfdfp_result",
    "load_network_into",
    "load_network_state",
    "load_optimizer_state",
    "read_container",
    "read_header",
    "resume_algorithm1",
    "save_checkpoint",
    "save_deployed",
    "save_mfdfp_result",
    "save_network",
    "save_optimizer",
    "write_container",
]
