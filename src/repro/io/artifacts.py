"""Versioned single-file artifact container and its typed error hierarchy.

Every artifact the reproduction persists — deployed MF-DFP networks,
float network weights, optimizer state, training checkpoints, full
:class:`~repro.core.pipeline.MFDFPResult` objects — travels in one
container format: an ``.npz`` whose ``__header__`` entry is a JSON
document ``{magic, format_version, kind, meta}`` and whose remaining
entries are the integer/float tensors.  The header carries everything
JSON-able (geometry, radix indices, RNG states, loss curves); the arrays
carry everything bit-exact.

Integrity is layered:

* **container level** — unreadable zips, truncated files and mangled
  JSON raise :class:`ArtifactCorruptError`; an unknown
  ``format_version`` raises :class:`ArtifactVersionError` *before* any
  reconstruction is attempted.
* **schema level** — missing fields, wrong types, out-of-range weight
  codes and shape mismatches raise :class:`ArtifactSchemaError` with
  the offending field named.
* **content level** — deployed artifacts embed their
  :func:`~repro.core.engine.engine_fingerprint`; a load whose
  recomputed fingerprint differs from the stored one raises
  :class:`ArtifactCorruptError`, so bit rot that survives the zip CRC
  still cannot reach the serving registry.

All three are :class:`ArtifactError`, which subclasses ``ValueError``
so callers of the pre-container ``repro.hw.export`` API (now a shim
over this module) keep working.

Version 1 is the legacy ``repro.hw.export`` layout (deployed networks
only, no magic, no fingerprint, no ``groups`` field); its loader lives
here so every artifact ever written stays loadable.  Version 2 is the
current container.  ``DEPLOYED_LOADERS`` maps each supported version to
its loader — the format-stability test requires an entry per version,
so bumping :data:`FORMAT_VERSION` without writing a loader branch fails
tier-1.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional

import numpy as np

from repro.chaos.registry import inject, register_site
from repro.core.dfp import DFPFormat
from repro.core.engine import engine_fingerprint
from repro.core.mfdfp import DeployedLayer, DeployedMFDFP
from repro.core.quantizer import LayerQuantSpec, QuantizationPlan

#: Current container format version.  Bumping it requires adding the
#: matching loader branch to :data:`DEPLOYED_LOADERS` (enforced by
#: ``tests/io/test_golden_artifact.py``).
FORMAT_VERSION = 2

#: Marker distinguishing container files from the legacy v1 layout.
MAGIC = "repro-artifact"

register_site(
    "io.artifact.write",
    layer="io",
    description="after an atomic container write lands at its final path; "
    "faults here tear or corrupt the durable bytes (storage that lied)",
)
register_site(
    "io.artifact.read",
    layer="io",
    description="before a container file is opened; faults here corrupt the "
    "file or raise typed read errors the load path must classify",
)


class ArtifactError(ValueError):
    """Base class for artifact persistence failures.

    Subclasses ``ValueError`` for compatibility with the original
    ``repro.hw.export`` error contract.
    """


class ArtifactCorruptError(ArtifactError):
    """The file is unreadable, truncated, or fails an integrity check."""


class ArtifactSchemaError(ArtifactError):
    """The file parses but a required field is missing or mistyped."""


class ArtifactVersionError(ArtifactError):
    """The file declares a format version this code cannot load."""


# -- container level -------------------------------------------------------------
def _header_array(header: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)


def write_container(path, kind: str, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    """Write one artifact: JSON header + named arrays in a single npz.

    The write is atomic (temp file + ``os.replace`` in the target
    directory): a process killed mid-write — e.g. during the very
    epoch-boundary checkpoint whose survival this format exists for —
    leaves the previous file intact rather than a truncated newest one.
    The dot-prefixed temp name is invisible to every checkpoint/store
    glob, so a leftover from a kill is inert.
    """
    for key in arrays:
        if key.startswith("__"):
            raise ArtifactError(f"array name {key!r} collides with the reserved header slot")
    header = {"magic": MAGIC, "format_version": FORMAT_VERSION, "kind": kind, "meta": meta}
    final = Path(path)
    if final.suffix != ".npz":  # np.savez would silently append .npz
        final = final.with_name(final.name + ".npz")
    tmp = final.with_name(f".tmp.{os.getpid()}.{final.name}")
    try:
        np.savez(tmp, __header__=_header_array(header), **arrays)
        os.replace(tmp, final)
    finally:
        tmp.unlink(missing_ok=True)
    inject("io.artifact.write", path=final, kind=kind)


def _parse_header(raw: bytes, path, expect_kind: Optional[str]) -> dict:
    """Validate raw header bytes into a normalized header dict."""
    try:
        header = json.loads(raw.decode())
    except Exception as exc:
        raise ArtifactCorruptError(f"{path}: artifact header is not valid JSON") from exc
    if not isinstance(header, dict):
        raise ArtifactCorruptError(f"{path}: artifact header must be a JSON object")

    if "magic" not in header:
        # Legacy repro.hw.export layout: the header *is* the deployed meta.
        version = header.get("format_version")
        if version == 1 and isinstance(header.get("ops"), list):
            header = {"magic": MAGIC, "format_version": 1, "kind": "deployed", "meta": header}
        else:
            raise ArtifactVersionError(
                f"{path}: unsupported format version {version!r} "
                f"(supported: 1..{FORMAT_VERSION})"
            )
    if header.get("magic") != MAGIC:
        raise ArtifactCorruptError(
            f"{path}: bad artifact magic {header.get('magic')!r} (expected {MAGIC!r})"
        )
    version = header.get("format_version")
    if not isinstance(version, int) or not 1 <= version <= FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{path}: unsupported format version {version!r} (supported: 1..{FORMAT_VERSION})"
        )
    if not isinstance(header.get("kind"), str) or not isinstance(header.get("meta"), dict):
        raise ArtifactSchemaError(f"{path}: artifact header is missing 'kind'/'meta'")
    if expect_kind is not None and header["kind"] != expect_kind:
        raise ArtifactSchemaError(
            f"{path}: artifact kind is {header['kind']!r}, expected {expect_kind!r}"
        )
    return header


def _load_entries(path, want_arrays: bool) -> tuple[bytes, dict]:
    try:
        # Inside the try on purpose: an injected fault that raises a raw
        # error exercises (and is converted by) the same classification
        # the real failure modes go through.
        inject("io.artifact.read", path=path)
        with np.load(path) as data:
            if "__header__" not in data.files:
                raise ArtifactSchemaError(
                    f"{path} is not a deployed MF-DFP file (missing header)"
                )
            raw = bytes(data["__header__"])
            arrays = (
                {k: data[k] for k in data.files if k != "__header__"} if want_arrays else {}
            )
    except ArtifactError:
        raise
    except Exception as exc:  # BadZipFile, OSError, zlib/pickle errors, ...
        raise ArtifactCorruptError(f"{path}: unreadable artifact container: {exc}") from exc
    return raw, arrays


def read_container(path, expect_kind: Optional[str] = None) -> tuple[dict, dict]:
    """Read an artifact container; returns ``(header, arrays)``.

    Accepts both the current container layout and legacy version-1
    deployed files (which are normalized to a synthetic v1 header).
    Raises the typed :class:`ArtifactError` hierarchy — never a raw
    zip/JSON/numpy exception — on any malformed input.
    """
    raw, arrays = _load_entries(path, want_arrays=True)
    return _parse_header(raw, path, expect_kind), arrays


def read_header(path) -> dict:
    """Read only the JSON header of an artifact (cheap: no tensor data).

    Tensor entries stay on disk (``NpzFile`` is lazy), so listing a
    store or re-checking fingerprints on publish never decompresses
    weight arrays.
    """
    raw, _ = _load_entries(path, want_arrays=False)
    return _parse_header(raw, path, None)


# -- schema-level helpers --------------------------------------------------------
def _field(meta: dict, name: str, types, ctx: str):
    if name not in meta:
        raise ArtifactSchemaError(f"{ctx}: missing required field {name!r}")
    value = meta[name]
    if not isinstance(value, types):
        raise ArtifactSchemaError(
            f"{ctx}: field {name!r} has type {type(value).__name__}, "
            f"expected {types if isinstance(types, type) else '/'.join(t.__name__ for t in types)}"
        )
    return value


def _int_field(meta: dict, name: str, ctx: str) -> int:
    value = _field(meta, name, (int, bool), ctx)
    if isinstance(value, bool):
        raise ArtifactSchemaError(f"{ctx}: field {name!r} must be an integer, got bool")
    return value


def _check_integer_array(arr: np.ndarray, ctx: str) -> np.ndarray:
    if not np.issubdtype(arr.dtype, np.integer):
        raise ArtifactSchemaError(f"{ctx}: expected an integer array, got dtype {arr.dtype}")
    return arr


def _pack(prefix: str, mapping: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {f"{prefix}/{name}": value for name, value in mapping.items()}


def _unpack(arrays: dict[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    cut = len(prefix) + 1
    return {key[cut:]: value for key, value in arrays.items() if key.startswith(prefix + "/")}


# -- deployed networks -----------------------------------------------------------
#: Scalar DeployedLayer fields carried in the header, with their types.
_OP_META_FIELDS = {
    "kind": str,
    "name": str,
    "in_frac": int,
    "out_frac": int,
    "activation": str,
    "in_channels": int,
    "out_channels": int,
    "kernel_size": int,
    "stride": int,
    "pad": int,
    "groups": int,
    "ceil_mode": bool,
    "in_features": int,
    "out_features": int,
}

#: Fields absent from legacy v1 files (with the value v1 implied).
_V1_OP_DEFAULTS = {"groups": 1}


def deployed_meta(deployed: DeployedMFDFP) -> dict:
    """Header metadata of a deployed network, fingerprint included."""
    return {
        "name": deployed.name,
        "input_shape": list(deployed.input_shape),
        "input_frac": deployed.input_frac,
        "bits": deployed.bits,
        "fingerprint": engine_fingerprint(deployed),
        "ops": [
            {field: getattr(op, field) for field in _OP_META_FIELDS} for op in deployed.ops
        ],
    }


def deployed_arrays(deployed: DeployedMFDFP, prefix: str = "op") -> dict[str, np.ndarray]:
    """Tensor entries of a deployed network (canonical dtypes)."""
    arrays: dict[str, np.ndarray] = {}
    for i, op in enumerate(deployed.ops):
        if op.weight_codes is not None:
            arrays[f"{prefix}{i}.weight_codes"] = np.ascontiguousarray(
                op.weight_codes, dtype=np.uint8
            )
        if op.bias_int is not None:
            arrays[f"{prefix}{i}.bias_int"] = np.ascontiguousarray(op.bias_int, dtype=np.int64)
    return arrays


def save_deployed(deployed: DeployedMFDFP, path) -> None:
    """Write a deployed MF-DFP network as a version-2 container."""
    write_container(path, "deployed", deployed_meta(deployed), deployed_arrays(deployed))


def _validate_op_meta(op_meta, index: int, ctx: str, v1: bool) -> dict:
    if not isinstance(op_meta, dict):
        raise ArtifactSchemaError(f"{ctx}: op {index} metadata must be an object")
    octx = f"{ctx}: op {index}"
    fields = {}
    for name, typ in _OP_META_FIELDS.items():
        if v1 and name in _V1_OP_DEFAULTS and name not in op_meta:
            fields[name] = _V1_OP_DEFAULTS[name]
            continue
        if typ is int:
            fields[name] = _int_field(op_meta, name, octx)
        else:
            fields[name] = _field(op_meta, name, typ, octx)
    unknown = set(op_meta) - set(_OP_META_FIELDS)
    if unknown:
        raise ArtifactSchemaError(f"{octx}: unknown fields {sorted(unknown)}")
    return fields


def _attach_op_tensors(op: DeployedLayer, arrays: dict, index: int, ctx: str, v1: bool) -> None:
    octx = f"{ctx}: op {index} ({op.name})"
    key = f"op{index}.weight_codes"
    if key in arrays:
        codes = _check_integer_array(arrays[key], f"{octx} weight_codes")
        if v1:
            shape_key = f"op{index}.weight_shape"
            if shape_key in arrays:
                shape = tuple(int(v) for v in arrays[shape_key])
                if int(np.prod(shape)) != codes.size:
                    raise ArtifactSchemaError(
                        f"{octx}: weight_codes size {codes.size} does not match "
                        f"recorded shape {shape}"
                    )
                codes = codes.reshape(shape)
        if codes.size and (codes.min() < 0 or codes.max() > 0x0F):
            raise ArtifactSchemaError(f"{octx}: weight codes exceed 4 bits")
        op.weight_codes = codes
    bkey = f"op{index}.bias_int"
    if bkey in arrays:
        op.bias_int = _check_integer_array(arrays[bkey], f"{octx} bias_int")


def _load_deployed_meta(meta: dict, arrays: dict, path, v1: bool) -> DeployedMFDFP:
    ctx = str(path)
    name = _field(meta, "name", str, ctx)
    input_shape = _field(meta, "input_shape", list, ctx)
    if not all(isinstance(v, int) and not isinstance(v, bool) for v in input_shape):
        raise ArtifactSchemaError(f"{ctx}: input_shape entries must be integers")
    deployed = DeployedMFDFP(
        name=name,
        input_shape=tuple(input_shape),
        input_frac=_int_field(meta, "input_frac", ctx),
        bits=_int_field(meta, "bits", ctx),
    )
    ops_meta = _field(meta, "ops", list, ctx)
    for i, op_meta in enumerate(ops_meta):
        op = DeployedLayer(**_validate_op_meta(op_meta, i, ctx, v1=v1))
        _attach_op_tensors(op, arrays, i, ctx, v1=v1)
        deployed.ops.append(op)
    return deployed


def _load_deployed_v1(meta: dict, arrays: dict, path) -> DeployedMFDFP:
    return _load_deployed_meta(meta, arrays, path, v1=True)


def _load_deployed_v2(meta: dict, arrays: dict, path) -> DeployedMFDFP:
    return _load_deployed_meta(meta, arrays, path, v1=False)


#: Loader branch per supported container version.  The format-stability
#: guard requires ``set(DEPLOYED_LOADERS) == {1..FORMAT_VERSION}``.
DEPLOYED_LOADERS = {1: _load_deployed_v1, 2: _load_deployed_v2}


def load_deployed(path) -> DeployedMFDFP:
    """Read a deployed MF-DFP network (current or legacy format).

    Validates every field and tensor before reconstruction and verifies
    the stored content fingerprint (when present) against the loaded
    tensors.  Raises :class:`ArtifactError` subclasses on any problem.
    """
    header, arrays = read_container(path, expect_kind="deployed")
    loader = DEPLOYED_LOADERS[header["format_version"]]
    deployed = loader(header["meta"], arrays, path)
    stored = header["meta"].get("fingerprint")
    if stored is not None:
        actual = engine_fingerprint(deployed)
        if actual != stored:
            raise ArtifactCorruptError(
                f"{path}: content fingerprint mismatch "
                f"(stored {stored!r}, recomputed {actual!r})"
            )
    return deployed


# -- float networks --------------------------------------------------------------
def network_meta(net) -> dict:
    return {
        "name": net.name,
        "input_shape": None if net.input_shape is None else list(net.input_shape),
        "params": [
            {"name": p.name, "dtype": str(p.data.dtype), "shape": list(p.shape)}
            for p in net.params
        ],
    }


def save_network(net, path) -> None:
    """Persist a float network's parameters (dtype-exact)."""
    write_container(
        path, "network", network_meta(net), _pack("weights", {p.name: p.data for p in net.params})
    )


def load_network_state(path) -> dict[str, np.ndarray]:
    """Load a network artifact's parameters as a name → array dict."""
    header, arrays = read_container(path, expect_kind="network")
    meta = header["meta"]
    ctx = str(path)
    weights = _unpack(arrays, "weights")
    for spec in _field(meta, "params", list, ctx):
        name = _field(spec, "name", str, ctx)
        if name not in weights:
            raise ArtifactSchemaError(f"{ctx}: missing tensor for parameter {name!r}")
        arr = weights[name]
        if str(arr.dtype) != spec.get("dtype"):
            raise ArtifactSchemaError(
                f"{ctx}: parameter {name!r} has dtype {arr.dtype}, "
                f"header says {spec.get('dtype')!r}"
            )
        if list(arr.shape) != spec.get("shape"):
            raise ArtifactSchemaError(
                f"{ctx}: parameter {name!r} has shape {list(arr.shape)}, "
                f"header says {spec.get('shape')}"
            )
    return weights


def load_network_into(net, path) -> None:
    """Restore a network artifact into ``net`` (strict name/shape match)."""
    weights = load_network_state(path)
    try:
        net.set_weights(weights)
    except (KeyError, ValueError) as exc:
        raise ArtifactSchemaError(f"{path}: artifact does not match network: {exc}") from exc


# -- optimizer state -------------------------------------------------------------
def save_optimizer(optimizer, path) -> None:
    """Persist an SGD optimizer's hyper-parameters and velocity state."""
    state = optimizer.state_dict()
    velocity = state.pop("velocity")
    write_container(path, "optimizer", state, _pack("velocity", velocity))


def load_optimizer_state(path) -> dict:
    """Load an optimizer artifact back into ``SGD.load_state_dict`` form."""
    header, arrays = read_container(path, expect_kind="optimizer")
    meta = dict(header["meta"])
    ctx = str(path)
    for name in ("lr", "momentum", "weight_decay"):
        _field(meta, name, (int, float), ctx)
    meta["velocity"] = _unpack(arrays, "velocity")
    return meta


# -- quantization plans ----------------------------------------------------------
def plan_to_meta(plan: QuantizationPlan) -> dict:
    """JSON-able encoding of a quantization plan."""
    return {
        "bits": plan.bits,
        "input_fmt": {"bits": plan.input_fmt.bits, "frac": plan.input_fmt.frac},
        "min_exp": plan.min_exp,
        "max_exp": plan.max_exp,
        "dynamic": plan.dynamic,
        "layers": [
            {
                "layer_name": s.layer_name,
                "in_fmt": {"bits": s.in_fmt.bits, "frac": s.in_fmt.frac},
                "out_fmt": {"bits": s.out_fmt.bits, "frac": s.out_fmt.frac},
                "quantize_output": s.quantize_output,
                "quantize_weights": s.quantize_weights,
            }
            for s in plan.layers
        ],
    }


def _fmt(meta: dict, ctx: str) -> DFPFormat:
    return DFPFormat(_int_field(meta, "bits", ctx), _int_field(meta, "frac", ctx))


def plan_from_meta(meta: dict, ctx: str = "plan") -> QuantizationPlan:
    """Rebuild a :class:`QuantizationPlan` from :func:`plan_to_meta` output."""
    plan = QuantizationPlan(
        bits=_int_field(meta, "bits", ctx),
        input_fmt=_fmt(_field(meta, "input_fmt", dict, ctx), ctx),
        min_exp=_int_field(meta, "min_exp", ctx),
        max_exp=_int_field(meta, "max_exp", ctx),
        dynamic=bool(_field(meta, "dynamic", bool, ctx)),
    )
    for spec in _field(meta, "layers", list, ctx):
        if not isinstance(spec, dict):
            raise ArtifactSchemaError(f"{ctx}: layer spec must be an object")
        plan.layers.append(
            LayerQuantSpec(
                layer_name=_field(spec, "layer_name", str, ctx),
                in_fmt=_fmt(_field(spec, "in_fmt", dict, ctx), ctx),
                out_fmt=_fmt(_field(spec, "out_fmt", dict, ctx), ctx),
                quantize_output=bool(_field(spec, "quantize_output", bool, ctx)),
                quantize_weights=bool(_field(spec, "quantize_weights", bool, ctx)),
            )
        )
    return plan


# -- trainer checkpoints ---------------------------------------------------------
def _trainer_state_split(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a ``Trainer.state_dict()`` into (JSON meta, tensor arrays)."""
    optimizer = dict(state["optimizer"])
    velocity = optimizer.pop("velocity")
    meta = {
        "optimizer": optimizer,
        "scheduler": state["scheduler"],
        "rng": state["rng"],
        "history": state["history"],
    }
    arrays = {**_pack("weights", state["weights"]), **_pack("velocity", velocity)}
    return meta, arrays


def _trainer_state_join(meta: dict, arrays: dict, ctx: str) -> dict:
    optimizer = dict(_field(meta, "optimizer", dict, ctx))
    optimizer["velocity"] = _unpack(arrays, "velocity")
    return {
        "weights": _unpack(arrays, "weights"),
        "optimizer": optimizer,
        "scheduler": _field(meta, "scheduler", (dict, type(None)), ctx)
        if "scheduler" in meta
        else None,
        "rng": _field(meta, "rng", dict, ctx),
        "history": _field(meta, "history", list, ctx),
    }


def save_checkpoint(path, trainer_state: dict, phase: str = "train", extra: Optional[dict] = None) -> None:
    """Persist one epoch-boundary training checkpoint.

    ``trainer_state`` is ``Trainer.state_dict()`` output; ``extra`` is
    an optional JSON-able dict stored alongside (e.g. run labels).
    """
    meta, arrays = _trainer_state_split(trainer_state)
    meta["phase"] = phase
    meta["extra"] = extra or {}
    write_container(path, "checkpoint", meta, arrays)


def load_checkpoint(path) -> tuple[str, dict, dict]:
    """Load a checkpoint; returns ``(phase, trainer_state, extra)``."""
    header, arrays = read_container(path, expect_kind="checkpoint")
    meta = header["meta"]
    ctx = str(path)
    state = _trainer_state_join(meta, arrays, ctx)
    return _field(meta, "phase", str, ctx), state, meta.get("extra", {})


# -- MF-DFP pipeline results -----------------------------------------------------
def _snapshot_arrays(snapshots) -> dict[str, np.ndarray]:
    arrays = {}
    for e, snap in enumerate(snapshots or []):
        arrays.update(_pack(f"snap{e}", snap))
    return arrays


def _snapshots_from_arrays(arrays: dict, count: int) -> list[dict]:
    return [_unpack(arrays, f"snap{e}") for e in range(count)]


def save_mfdfp_result(result, path, weight_mode: str = "deterministic") -> None:
    """Persist an :class:`~repro.core.pipeline.MFDFPResult`.

    Stores the quantization plan, the student's master weights, both
    phase histories, the float baseline error and the per-epoch phase-1
    quantized-weight snapshots.  ``weight_mode`` records how weight
    hooks should be reconstructed on load.
    """
    net = result.mfdfp.net
    snapshots = result.phase1_snapshots
    meta = {
        "plan": plan_to_meta(result.plan),
        "weight_mode": weight_mode,
        "float_val_error": result.float_val_error,
        "phase1_history": [asdict(e) for e in result.phase1.epochs],
        "phase2_history": [asdict(e) for e in result.phase2.epochs],
        "network": network_meta(net),
        "n_snapshots": 0 if snapshots is None else len(snapshots),
        "has_snapshots": snapshots is not None,
    }
    arrays = {
        **_pack("weights", {p.name: p.data for p in net.params}),
        **_snapshot_arrays(snapshots),
    }
    write_container(path, "mfdfp_result", meta, arrays)


def load_mfdfp_result(path, float_net, rng: Optional[np.random.Generator] = None):
    """Rebuild an :class:`~repro.core.pipeline.MFDFPResult` from disk.

    ``float_net`` supplies the architecture (it is converted in place:
    quantization hooks are attached per the stored plan and the stored
    master weights restored — the same in-place contract as
    ``run_algorithm1``).  ``rng`` seeds stochastic weight hooks when the
    artifact was trained with ``weight_mode="stochastic"``.
    """
    from repro.core.mfdfp import MFDFPNetwork
    from repro.core.pipeline import MFDFPResult
    from repro.core.quantizer import NetworkQuantizer
    from repro.nn.trainer import EpochResult, TrainHistory

    header, arrays = read_container(path, expect_kind="mfdfp_result")
    meta = header["meta"]
    ctx = str(path)
    plan = plan_from_meta(_field(meta, "plan", dict, ctx), ctx)
    weight_mode = _field(meta, "weight_mode", str, ctx)
    quantizer = NetworkQuantizer(
        bits=plan.bits,
        min_exp=plan.min_exp,
        max_exp=plan.max_exp,
        weight_mode=weight_mode,
        dynamic=plan.dynamic,
        rng=rng,
    )
    quantizer.apply(float_net, plan)
    try:
        float_net.set_weights(_unpack(arrays, "weights"))
    except (KeyError, ValueError) as exc:
        raise ArtifactSchemaError(f"{ctx}: artifact does not match network: {exc}") from exc
    snapshots = None
    if meta.get("has_snapshots"):
        snapshots = _snapshots_from_arrays(arrays, _int_field(meta, "n_snapshots", ctx))
    histories = []
    for key in ("phase1_history", "phase2_history"):
        entries = _field(meta, key, list, ctx)
        try:
            histories.append(TrainHistory([EpochResult(**e) for e in entries]))
        except TypeError as exc:
            raise ArtifactSchemaError(f"{ctx}: malformed {key}: {exc}") from exc
    return MFDFPResult(
        mfdfp=MFDFPNetwork(float_net, plan),
        plan=plan,
        phase1=histories[0],
        phase2=histories[1],
        float_val_error=float(_field(meta, "float_val_error", (int, float), ctx)),
        phase1_snapshots=snapshots,
    )
