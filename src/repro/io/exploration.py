"""Whole-exploration checkpoints: kill a 10k-point search, resume exactly.

An exploration's durable state is just its completed evaluations — every
measurement is keyed by ``(rung, point index)`` and bit-determined by the
:class:`~repro.explore.explorer.ExploreConfig` seed, so persisting the
result rows is enough to reconstruct pruning decisions and continue.  The
checkpointer writes them as parallel arrays in one
:func:`~repro.io.artifacts.write_container` artifact (atomic temp +
rename, like every io write), embeds the space and config specs, and
refuses on load to mix rows from a different grid or configuration
(:class:`~repro.io.artifacts.ArtifactSchemaError`).

Files are ``exploration_<count>.npz`` where ``<count>`` is the number of
evaluations inside — monotone over a run, so "newest" and "most
complete" coincide.  Rolling retention and torn-file handling reuse the
trainer checkpointer's machinery: only *verified* files count toward the
kept window, and a truncated newest file (a kill mid-write never
produces one, but a torn copy might) is skipped, not trusted.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.io.artifacts import ArtifactSchemaError, read_container, write_container
from repro.io.checkpoint import _is_readable, _list_checkpoints, _prune_verified

_PREFIX = "exploration"


class ExplorationCheckpointer:
    """Persist/restore completed exploration evaluations.

    Args:
        directory: Checkpoint directory (created on first save).
        keep: Newest verified files retained (older ones are pruned).

    Duck-typed against :func:`repro.explore.explorer.explore`'s
    ``checkpoint`` parameter: ``save`` is called every
    ``checkpoint_every`` evaluations with the full row set, ``load``
    once at startup.
    """

    def __init__(self, directory, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep

    # -- write ---------------------------------------------------------------
    def save(self, evaluations, space, config) -> Path:
        """Write every completed evaluation; returns the file written."""
        from repro.explore.explorer import EvaluatedPoint  # avoid import cycle at module load

        for row in evaluations:
            if not isinstance(row, EvaluatedPoint):
                raise TypeError(f"expected EvaluatedPoint rows, got {type(row).__name__}")
        rows = sorted(evaluations, key=lambda e: (e.rung, e.point.index))
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{_PREFIX}_{len(rows)}.npz"
        write_container(
            path,
            kind="exploration",
            meta={
                "space": space.spec(),
                "config": config.spec(),
                "count": len(rows),
            },
            arrays={
                "point_index": np.array([r.point.index for r in rows], dtype=np.int64),
                "rung": np.array([r.rung for r in rows], dtype=np.int64),
                "full": np.array([r.full for r in rows], dtype=np.uint8),
                "accuracy": np.array([r.accuracy for r in rows], dtype=np.float64),
                "area_mm2": np.array([r.area_mm2 for r in rows], dtype=np.float64),
                "power_mw": np.array([r.power_mw for r in rows], dtype=np.float64),
                "latency_us": np.array([r.latency_us for r in rows], dtype=np.float64),
                "energy_uj": np.array([r.energy_uj for r in rows], dtype=np.float64),
            },
        )
        _prune_verified(_list_checkpoints(self.directory, _PREFIX), self.keep)
        return path

    # -- read ----------------------------------------------------------------
    def latest(self):
        """Newest *verified* checkpoint path, or None."""
        for path in reversed(_list_checkpoints(self.directory, _PREFIX)):
            if _is_readable(path):
                return path
        return None

    def load(self, space, config) -> dict:
        """Restore ``{(rung, point index): EvaluatedPoint}`` or ``{}``.

        Raises :class:`~repro.io.artifacts.ArtifactSchemaError` when the
        stored space or config spec does not match the caller's — rows
        measured on a different grid or seed must never silently seed a
        resumed search.
        """
        from repro.explore.explorer import EvaluatedPoint

        path = self.latest()
        if path is None:
            return {}
        header, arrays = read_container(path, expect_kind="exploration")
        meta = header["meta"]
        if meta.get("space") != space.spec():
            raise ArtifactSchemaError(
                f"{path}: checkpoint was written for a different design space "
                f"({meta.get('space')!r} != {space.spec()!r})"
            )
        if meta.get("config") != config.spec():
            raise ArtifactSchemaError(
                f"{path}: checkpoint was written for a different exploration config "
                f"({meta.get('config')!r} != {config.spec()!r})"
            )
        required = (
            "point_index", "rung", "full", "accuracy",
            "area_mm2", "power_mw", "latency_us", "energy_uj",
        )
        missing = [name for name in required if name not in arrays]
        if missing:
            raise ArtifactSchemaError(f"{path}: checkpoint missing arrays {missing}")
        lengths = {name: len(arrays[name]) for name in required}
        if len(set(lengths.values())) != 1:
            raise ArtifactSchemaError(f"{path}: ragged checkpoint arrays {lengths}")
        points = space.points()
        final_rung = config.final_rung
        done = {}
        for i in range(lengths["point_index"]):
            index = int(arrays["point_index"][i])
            rung = int(arrays["rung"][i])
            if not 0 <= index < len(points):
                raise ArtifactSchemaError(
                    f"{path}: point index {index} outside the {len(points)}-point space"
                )
            if not 0 <= rung <= final_rung:
                raise ArtifactSchemaError(
                    f"{path}: rung {rung} outside the {final_rung + 1}-rung ladder"
                )
            done[(rung, index)] = EvaluatedPoint(
                point=points[index],
                rung=rung,
                accuracy=float(arrays["accuracy"][i]),
                area_mm2=float(arrays["area_mm2"][i]),
                power_mw=float(arrays["power_mw"][i]),
                latency_us=float(arrays["latency_us"][i]),
                energy_uj=float(arrays["energy_uj"][i]),
                full=bool(arrays["full"][i]),
            )
        return done
