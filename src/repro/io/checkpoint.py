"""Periodic training checkpoints and exact (bit-identical) resume.

Two checkpointers, one contract: state is captured at an epoch boundary
— after the epoch's optimizer steps, validation sweep, history append
and scheduler step — which is exactly what ``Trainer.state_dict``
serializes (master weights, velocity, scheduler progress, every RNG
site, history).  A run killed at any epoch boundary and resumed in a
fresh process produces bit-identical weights, loss curves and
distillation results to the uninterrupted run, on both the eager and
compiled training paths; ``tests/io/test_resume_bit_identity.py``
proves this in subprocesses.

* :class:`Checkpointer` — for a plain :class:`~repro.nn.trainer.Trainer`;
  pass it as ``Trainer.fit(..., checkpoint=ck)`` and later
  ``ck.resume(trainer)`` + ``fit(..., resume=True)``.
* :class:`PipelineCheckpointer` — for Algorithm 1
  (:func:`~repro.core.pipeline.run_algorithm1`); it additionally
  persists the quantization plan, the frozen teacher, the phase-1
  snapshot series and the config, so :func:`resume_algorithm1` can
  rebuild the MF-DFP student in a process that never ran phase 1.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Optional

import numpy as np

from repro.io.artifacts import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactSchemaError,
    _field,
    _int_field,
    _pack,
    _snapshot_arrays,
    _snapshots_from_arrays,
    _trainer_state_join,
    _trainer_state_split,
    _unpack,
    load_checkpoint,
    plan_from_meta,
    plan_to_meta,
    read_container,
    read_header,
    save_checkpoint,
    write_container,
)


class CheckpointStateError(ArtifactError):
    """A checkpointer method was called out of lifecycle order.

    Raised when :class:`PipelineCheckpointer` is asked to save before
    :meth:`~PipelineCheckpointer.begin` established the run context —
    programmer error at the call site, not a corrupt artifact, but still
    part of the :class:`~repro.io.artifacts.ArtifactError` taxonomy so
    resume drivers can catch the whole io tier by meaning.
    """


def _epoch_of(path: Path) -> int:
    try:
        return int(path.stem.rsplit("_", 1)[-1])
    except ValueError:
        return -1


def _list_checkpoints(directory: Path, prefix: str) -> list[Path]:
    """Checkpoint files named ``<prefix>_<number>.npz``, oldest first."""
    if not directory.is_dir():
        return []
    return sorted(
        (p for p in directory.glob(f"{prefix}_*.npz") if _epoch_of(p) >= 0),
        key=_epoch_of,
    )


def _is_readable(path: Path) -> bool:
    """Cheap validity probe: does the file's container header read?

    A torn write (truncated zip) loses the central directory at the
    file's tail, so a header read fails — which makes this probe catch
    exactly the damage the torn-write fault model produces, without
    decompressing any tensor data.
    """
    try:
        read_header(path)
    except ArtifactError:
        return False
    return True


def _prune_verified(files: list[Path], keep: int) -> list[Path]:
    """Delete all but the newest ``keep`` *verified* files; return deletions.

    Only files that pass :func:`_is_readable` count toward (or are
    eligible for) pruning: when the newest file on disk is torn, the
    newest *valid* one is still within the kept window, so resume always
    has something to fall back to.  Torn files are left in place as
    evidence — resume skips them and they never crowd out valid state.
    """
    verified = [p for p in files if _is_readable(p)]
    doomed = verified[:-keep] if keep else []
    for old in doomed:
        old.unlink(missing_ok=True)
    return doomed


class Checkpointer:
    """Writes (and restores) epoch-boundary checkpoints of one training run.

    Args:
        directory: Where checkpoint files live; created on first save.
            Files are named ``epoch_0003.npz`` by completed-epoch count.
        every: Save every k-th epoch (the final state of a run killed
            between saves is recovered by re-running the few epochs
            since the last checkpoint — bit-identical either way).
        phase: Label stored in each checkpoint (pipeline phases use
            ``phase1``/``phase2``).
        keep: Retain only the newest ``keep`` *verified* checkpoints
            (``None`` keeps everything).  Pruning never counts or
            deletes an unreadable (torn) file: if the newest file on
            disk is damaged, the newest valid one stays within the kept
            window and :meth:`resume` falls back to it.

    An instance is callable with the trainer, matching the
    ``Trainer.fit(checkpoint=...)`` hook.
    """

    def __init__(
        self,
        directory,
        every: int = 1,
        phase: str = "train",
        keep: Optional[int] = None,
    ):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep is not None and keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = Path(directory)
        self.every = every
        self.phase = phase
        self.keep = keep

    def __call__(self, trainer) -> None:
        epoch = len(trainer.history.epochs)
        if epoch % self.every == 0:
            self.save(trainer)

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"epoch_{epoch:04d}.npz"

    def save(self, trainer) -> Path:
        """Write the trainer's current epoch-boundary state."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(len(trainer.history.epochs))
        save_checkpoint(path, trainer.state_dict(), phase=self.phase)
        if self.keep is not None:
            _prune_verified(self.checkpoints(), self.keep)
        return path

    def checkpoints(self) -> list[Path]:
        """Existing checkpoint files, oldest first."""
        return _list_checkpoints(self.directory, "epoch")

    def latest(self) -> Optional[Path]:
        found = self.checkpoints()
        return found[-1] if found else None

    def resume(self, trainer) -> int:
        """Restore the newest *loadable* checkpoint into ``trainer``.

        Returns the number of completed epochs restored (0 when no
        checkpoint exists — the caller trains from scratch).  Continue
        with ``trainer.fit(..., resume=True, checkpoint=self)``.

        A torn newest file (e.g. the process was killed mid-write and
        the filesystem surfaced a truncated replacement) is skipped and
        the next-newest checkpoint restored instead; resume then re-runs
        the lost epochs, which is bit-identical by the epoch-boundary
        contract.  If checkpoint files exist but *none* load,
        :class:`~repro.io.artifacts.ArtifactCorruptError` is raised
        rather than silently training from scratch.
        """
        found = self.checkpoints()
        if not found:
            return 0
        last_error: Optional[ArtifactError] = None
        for path in reversed(found):
            try:
                _, state, _ = load_checkpoint(path)
            except ArtifactError as exc:
                last_error = exc
                continue
            trainer.load_state_dict(state)
            return len(trainer.history.epochs)
        raise ArtifactCorruptError(
            f"{self.directory}: all {len(found)} checkpoint file(s) failed to load; "
            f"newest error: {last_error}"
        ) from last_error


class PipelineCheckpointer:
    """Checkpoints Algorithm 1 across both fine-tuning phases.

    Pass to :func:`repro.core.pipeline.run_algorithm1` as
    ``checkpoint=``; the pipeline calls :meth:`begin` once with the run
    context and :meth:`phase1`/:meth:`phase2` at each epoch boundary.
    Each file is self-contained: config, plan, teacher weights, the
    phase trainer state, completed phase-1 history and the snapshot
    series — enough for :func:`resume_algorithm1` to continue in a
    process with no memory of the original run.
    """

    def __init__(self, directory, every: int = 1, keep: int = 3):
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self._ctx: Optional[dict] = None
        self._phase1_history: list = []

    # -- pipeline protocol -------------------------------------------------
    def begin(self, plan, config, teacher, float_val_error, snapshots) -> None:
        """Bind the run context (called by ``run_algorithm1``)."""
        self._ctx = {
            "plan": plan_to_meta(plan),
            "config": asdict(config),
            "teacher": {p.name: p.data.copy() for p in teacher.params},
            "float_val_error": float(float_val_error),
            "snapshots": snapshots,
        }

    def phase1_complete(self, history) -> None:
        self._phase1_history = [asdict(e) for e in history.epochs]

    def phase1(self, trainer) -> None:
        epochs = len(trainer.history.epochs)
        if epochs % self.every == 0:
            self._save("phase1", trainer, seq=epochs)

    def phase2(self, trainer) -> None:
        epochs = len(trainer.history.epochs)
        if epochs % self.every == 0:
            self._save("phase2", trainer, seq=len(self._phase1_history) + epochs)

    # -- persistence -------------------------------------------------------
    def _save(self, phase: str, trainer, seq: int) -> Path:
        if self._ctx is None:
            raise CheckpointStateError("PipelineCheckpointer.begin was never called")
        self.directory.mkdir(parents=True, exist_ok=True)
        meta, arrays = _trainer_state_split(trainer.state_dict())
        snapshots = self._ctx["snapshots"]
        meta.update(
            {
                "phase": phase,
                "plan": self._ctx["plan"],
                "config": self._ctx["config"],
                "float_val_error": self._ctx["float_val_error"],
                "phase1_history": self._phase1_history,
                "has_snapshots": snapshots is not None,
                "n_snapshots": 0 if snapshots is None else len(snapshots),
            }
        )
        arrays.update(_pack("teacher", self._ctx["teacher"]))
        arrays.update(_snapshot_arrays(snapshots))
        path = self.directory / f"step_{seq:04d}.npz"
        write_container(path, "pipeline", meta, arrays)
        # Each file is self-contained (teacher + full snapshot series),
        # so disk use would grow quadratically with epochs if every step
        # survived; resume reads the newest *loadable* file, so prune to
        # the last ``keep`` verified ones (a margin of fallbacks, not a
        # history) — a torn newest file must never evict the newest
        # valid state resume would fall back to.
        _prune_verified(self.checkpoints(), self.keep)
        return path

    def checkpoints(self) -> list[Path]:
        return _list_checkpoints(self.directory, "step")

    def latest(self) -> Optional[Path]:
        found = self.checkpoints()
        return found[-1] if found else None

    def load_latest(self) -> dict:
        """Load the newest *loadable* pipeline checkpoint as restore data.

        A torn newest step file is skipped in favour of the next-newest
        one (resume re-runs the lost epochs bit-identically); if step
        files exist but none load,
        :class:`~repro.io.artifacts.ArtifactCorruptError` is raised.
        """
        found = self.checkpoints()
        if not found:
            raise ArtifactError(f"no pipeline checkpoint found under {self.directory}")
        path = None
        for candidate in reversed(found):
            if _is_readable(candidate):
                path = candidate
                break
        if path is None:
            raise ArtifactCorruptError(
                f"{self.directory}: all {len(found)} pipeline step file(s) are unreadable"
            )
        header, arrays = read_container(path, expect_kind="pipeline")
        meta = header["meta"]
        ctx = str(path)
        snapshots = None
        if meta.get("has_snapshots"):
            snapshots = _snapshots_from_arrays(arrays, _int_field(meta, "n_snapshots", ctx))
        return {
            "phase": _field(meta, "phase", str, ctx),
            "config": _field(meta, "config", dict, ctx),
            "plan_meta": _field(meta, "plan", dict, ctx),
            "float_val_error": float(_field(meta, "float_val_error", (int, float), ctx)),
            "phase1_history": _field(meta, "phase1_history", list, ctx),
            "trainer": _trainer_state_join(meta, arrays, ctx),
            "teacher": _unpack(arrays, "teacher"),
            "snapshots": snapshots,
        }


def resume_algorithm1(
    float_net,
    train,
    val,
    directory,
    rng: Optional[np.random.Generator] = None,
    every: int = 1,
    config=None,
):
    """Continue a killed :func:`~repro.core.pipeline.run_algorithm1` run.

    ``float_net`` supplies the architecture only (same constructor as
    the original run); plan, config, teacher weights, student state,
    RNG states and snapshots all come from the newest checkpoint under
    ``directory``, so the result is bit-identical to the uninterrupted
    run.  ``float_net`` is converted in place into the MF-DFP student,
    mirroring ``run_algorithm1``'s contract.  Checkpointing continues
    with the same ``every`` cadence.  ``config`` is normally
    reconstructed from the checkpoint; passing one that differs raises
    :class:`~repro.io.artifacts.ArtifactSchemaError` (a mismatched
    config cannot reproduce the original trajectory).
    """
    from repro.core.mfdfp import MFDFPNetwork
    from repro.core.pipeline import (
        MFDFPConfig,
        MFDFPResult,
        phase1_finetune,
        phase2_distill,
    )
    from repro.core.quantizer import NetworkQuantizer
    from repro.nn.trainer import EpochResult, TrainHistory

    checkpoint = PipelineCheckpointer(directory, every=every)
    data = checkpoint.load_latest()
    try:
        saved_config = MFDFPConfig(**data["config"])
    except TypeError as exc:
        raise ArtifactSchemaError(f"{directory}: malformed pipeline config: {exc}") from exc
    if config is not None and asdict(config) != asdict(saved_config):
        raise ArtifactSchemaError(
            "resume config differs from the checkpointed run "
            f"(checkpointed: {asdict(saved_config)})"
        )
    config = saved_config
    plan = plan_from_meta(data["plan_meta"], str(directory))
    # The seed below is irrelevant: every consumer of this generator has
    # its state restored from the checkpoint before the first draw.
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (resume must re-derive the identical pre-kill stream; default mirrors the pipeline's)

    teacher = float_net.clone()
    teacher.set_weights(data["teacher"])
    quantizer = NetworkQuantizer(
        bits=config.bits,
        min_exp=config.min_exp,
        max_exp=config.max_exp,
        weight_mode=config.weight_mode,
        dynamic=config.dynamic,
        rng=rng,
    )
    quantizer.apply(float_net, plan)
    mfdfp = MFDFPNetwork(float_net, plan)

    snapshots = data["snapshots"]
    checkpoint.begin(
        plan=plan,
        config=config,
        teacher=teacher,
        float_val_error=data["float_val_error"],
        snapshots=snapshots,
    )
    if data["phase"] == "phase1":
        history1 = phase1_finetune(
            mfdfp,
            train,
            val,
            config,
            rng=rng,
            snapshots=snapshots,
            resume_state=data["trainer"],
            checkpoint=checkpoint.phase1,
        )
        checkpoint.phase1_complete(history1)
        history2 = phase2_distill(
            mfdfp, teacher, train, val, config, rng=rng, checkpoint=checkpoint.phase2
        )
    elif data["phase"] == "phase2":
        history1 = TrainHistory([EpochResult(**e) for e in data["phase1_history"]])
        checkpoint.phase1_complete(history1)
        history2 = phase2_distill(
            mfdfp,
            teacher,
            train,
            val,
            config,
            rng=rng,
            resume_state=data["trainer"],
            checkpoint=checkpoint.phase2,
        )
    else:
        raise ArtifactSchemaError(f"unknown pipeline phase {data['phase']!r}")
    return MFDFPResult(
        mfdfp=mfdfp,
        plan=plan,
        phase1=history1,
        phase2=history2,
        float_val_error=data["float_val_error"],
        phase1_snapshots=snapshots,
    )
