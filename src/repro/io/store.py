"""Disk-backed, versioned store of deployed models and training runs.

Directory layout::

    <root>/
      store.json                    # marker: {"format": ..., "version": 1}
      models/<name>/v0001.npz       # deployed artifacts, monotone versions
      checkpoints/<run>/epoch_0003.npz      # Trainer checkpoints
      checkpoints/<run>/step_0007.npz       # pipeline checkpoints

Publishing a deployed artifact appends a new version — unless its
:func:`~repro.core.engine.engine_fingerprint` matches the current
latest, in which case the existing version is returned (publishing is
idempotent per content).  ``load`` of a model name resolves to the
newest version by default, which is what
:meth:`repro.serve.ModelRegistry.from_store` serves: a cold process
start loads every model from disk in milliseconds instead of re-running
quantization and calibration.

Corruption handling is **quarantine, then fall back**: a version file
that fails verify-on-load is moved to ``<root>/quarantine/<name>/``
(with a ``.reason.json`` sidecar recording why), a direct load of that
version raises :class:`QuarantinedArtifactError`, and newest-version
resolution silently falls back to the newest version that *does*
verify — so one rotted file degrades a cold start by one version
instead of taking the model offline.  Reads retry transient failures
(:class:`TransientStoreError`, e.g. injected by the chaos harness to
model an NFS blip) through a shared :class:`repro.retry.RetryPolicy`.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Callable, Optional

from repro.chaos.registry import inject, register_site
from repro.core.engine import engine_fingerprint
from repro.core.mfdfp import DeployedMFDFP
from repro.retry import RetryPolicy

from repro.io.artifacts import (
    ArtifactError,
    load_deployed,
    read_header,
    save_deployed,
)
from repro.io.checkpoint import Checkpointer, PipelineCheckpointer

_MARKER = "store.json"
_STORE_FORMAT = "repro-artifact-store"
_VERSION_RE = re.compile(r"^v(\d{4,})\.npz$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][\w.-]*$")

register_site(
    "io.store.read",
    layer="io",
    description="each attempt to read one published version file; faults "
    "here corrupt the version file or raise TransientStoreError (retried)",
)


class TransientStoreError(ArtifactError):
    """A store read failed for a reason expected to heal on retry.

    Raised (today) only by injected faults modelling flaky storage; the
    store's :class:`~repro.retry.RetryPolicy` absorbs up to
    ``attempts - 1`` of these per read before letting one propagate.
    """


class QuarantinedArtifactError(ArtifactError):
    """A version failed verify-on-load and was moved to ``quarantine/``.

    Carries the model ``name``, the ``version`` number, the quarantine
    ``path`` the bytes now live at, and the verification failure as
    ``reason``.  Raised on *direct* loads of the bad version — loads of
    "newest" fall back to the next verified version instead.
    """

    def __init__(self, name: str, version: int, path, reason: str):
        super().__init__(
            f"model {name!r} version {version} failed verification and was "
            f"quarantined at {path} ({reason})"
        )
        self.name = name
        self.version = version
        self.path = Path(path)
        self.reason = reason


class ArtifactStore:
    """A versioned artifact directory (see module docstring).

    Args:
        root: Store directory.
        create: Initialize the directory (and marker file) if missing.
            With ``create=False`` a path that is not an existing store
            raises :class:`~repro.io.artifacts.ArtifactError` — the
            read-only open used by ``serve --store``.
        retry: Policy for transient read failures (default: 3 attempts,
            10 ms initial backoff).
        sleep: Backoff sleep, injectable for deterministic tests/drills.
    """

    def __init__(
        self,
        root,
        create: bool = True,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.retry = retry if retry is not None else RetryPolicy(
            attempts=3, backoff_initial_s=0.01, backoff_cap_s=0.25
        )
        self._sleep = sleep
        #: Count of reads that needed at least one retry (typed accounting).
        self.retried_reads = 0
        self.root = Path(root)
        marker = self.root / _MARKER
        if marker.is_file():
            try:
                payload = json.loads(marker.read_text())
            except json.JSONDecodeError as exc:
                raise ArtifactError(f"{marker}: unreadable store marker") from exc
            if payload.get("format") != _STORE_FORMAT:
                raise ArtifactError(f"{self.root} is not a repro artifact store")
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            marker.write_text(json.dumps({"format": _STORE_FORMAT, "version": 1}) + "\n")
        else:
            raise ArtifactError(f"{self.root} is not a repro artifact store (no {_MARKER})")

    # -- deployed models ---------------------------------------------------
    def _model_dir(self, name: str, create: bool = False) -> Path:
        if not _NAME_RE.fullmatch(name or ""):
            raise ArtifactError(f"invalid model name {name!r}")
        path = self.root / "models" / name
        if create:
            path.mkdir(parents=True, exist_ok=True)
        return path

    def model_names(self) -> list[str]:
        """Model names with at least one published version, sorted."""
        models = self.root / "models"
        if not models.is_dir():
            return []
        return sorted(d.name for d in models.iterdir() if d.is_dir() and self._versions(d))

    @staticmethod
    def _versions(model_dir: Path) -> list[int]:
        out = []
        for p in model_dir.glob("v*.npz"):
            m = _VERSION_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def versions(self, name: str) -> list[int]:
        """Published versions of a model, oldest first."""
        return self._versions(self._model_dir(name))

    def latest_version(self, name: str) -> Optional[int]:
        versions = self.versions(name)
        return versions[-1] if versions else None

    def model_path(self, name: str, version: Optional[int] = None) -> Path:
        """Path of one published version (default: newest)."""
        if version is None:
            version = self.latest_version(name)
            if version is None:
                raise ArtifactError(f"store has no model named {name!r}")
        path = self._model_dir(name) / f"v{version:04d}.npz"
        if not path.is_file():
            quarantined = self.quarantine_dir(name) / f"v{version:04d}.npz"
            if quarantined.is_file():
                raise QuarantinedArtifactError(
                    name, version, quarantined, "previously failed verification"
                )
            raise ArtifactError(f"store has no version {version} of model {name!r}")
        return path

    # -- quarantine --------------------------------------------------------
    def quarantine_dir(self, name: Optional[str] = None) -> Path:
        """Where failed-verification artifacts are moved (never globbed
        by version resolution)."""
        base = self.root / "quarantine"
        return base / name if name else base

    def quarantined_versions(self, name: str) -> list[int]:
        """Version numbers of ``name`` currently sitting in quarantine."""
        return self._versions(self.quarantine_dir(name))

    def _quarantine_version(self, name: str, version: int, error: BaseException) -> Path:
        """Move a failed version file out of the resolvable tree."""
        src = self._model_dir(name) / f"v{version:04d}.npz"
        dest_dir = self.quarantine_dir(name)
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / src.name
        if dest.exists():  # re-quarantine after a republish of the same number
            suffix = 1
            while (dest_dir / f"{src.stem}.{suffix}.npz").exists():
                suffix += 1
            dest = dest_dir / f"{src.stem}.{suffix}.npz"
        os.replace(src, dest)
        dest.with_suffix(".reason.json").write_text(
            json.dumps(
                {
                    "model": name,
                    "version": version,
                    "error": f"{type(error).__name__}: {error}",
                    "quarantined_unix": int(time.time()),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return dest

    def _read_deployed(self, name: str, version: int, path: Path) -> DeployedMFDFP:
        """One fully-validated read, with transient failures retried."""

        def attempt() -> DeployedMFDFP:
            inject("io.store.read", name=name, version=version, path=path)
            return load_deployed(path)

        def account(failure: int, error: BaseException) -> None:
            self.retried_reads += 1

        return self.retry.call(
            attempt, retry_on=(TransientStoreError,), sleep=self._sleep, on_retry=account
        )

    def publish_deployed(self, name: str, deployed: DeployedMFDFP) -> int:
        """Publish a deployed artifact; returns its version number.

        Content-addressed idempotence: when the artifact's engine
        fingerprint equals the current newest version's, no new version
        is written and the existing number is returned.  A newest
        version whose header no longer reads (bit rot since publish) is
        quarantined here rather than wedging every future publish.
        Version numbers are monotonic across quarantines: a quarantined
        number is never reissued, so "version N" always names exactly
        one artifact's bytes.
        """
        fingerprint = engine_fingerprint(deployed)
        latest = self.latest_version(name)
        if latest is not None:
            try:
                if self.fingerprint(name, latest) == fingerprint:
                    return latest
            except ArtifactError as exc:
                self._quarantine_version(name, latest, exc)
        quarantined = self.quarantined_versions(name)
        version = max(latest or 0, max(quarantined, default=0)) + 1
        save_deployed(deployed, self._model_dir(name, create=True) / f"v{version:04d}.npz")
        return version

    def load_deployed(self, name: str, version: Optional[int] = None) -> DeployedMFDFP:
        """Load one published version (default: newest), fully validated.

        An explicit ``version`` that fails verification is quarantined
        and raises :class:`QuarantinedArtifactError`.  ``version=None``
        quarantines failing versions and falls back to the newest one
        that verifies (:meth:`load_newest_verified`).
        """
        if version is None:
            return self.load_newest_verified(name)[1]
        path = self.model_path(name, version)
        try:
            return self._read_deployed(name, version, path)
        except ArtifactError as exc:
            quarantined = self._quarantine_version(name, version, exc)
            raise QuarantinedArtifactError(name, version, quarantined, str(exc)) from exc

    def load_newest_verified(self, name: str) -> tuple[int, DeployedMFDFP]:
        """``(version, artifact)`` of the newest version that verifies.

        Walks versions newest-first; each one that fails verify-on-load
        is quarantined and the walk falls back to the next.  Raises
        :class:`~repro.io.artifacts.ArtifactError` only when no version
        verifies (the last failure as ``__cause__``).
        """
        versions = self.versions(name)
        if not versions:
            raise ArtifactError(f"store has no model named {name!r}")
        last_error: Optional[ArtifactError] = None
        for version in reversed(versions):
            path = self._model_dir(name) / f"v{version:04d}.npz"
            try:
                return version, self._read_deployed(name, version, path)
            except ArtifactError as exc:
                last_error = exc
                self._quarantine_version(name, version, exc)
        raise ArtifactError(
            f"every published version of model {name!r} failed verification "
            f"({len(versions)} quarantined)"
        ) from last_error

    def latest_verified_version(self, name: str) -> Optional[int]:
        """Newest version whose file verifies, quarantining those that don't.

        ``None`` when the model has no verifiable version left.
        """
        try:
            return self.load_newest_verified(name)[0]
        except ArtifactError:
            return None

    def fingerprint(self, name: str, version: Optional[int] = None) -> Optional[str]:
        """Stored engine fingerprint of a version (header read only).

        Artifacts imported from legacy files carry no stored
        fingerprint; those return None (a full load still verifies the
        tensors are well formed).
        """
        header = read_header(self.model_path(name, version))
        return header["meta"].get("fingerprint")

    # -- training runs -----------------------------------------------------
    def checkpoint_dir(self, run: str) -> Path:
        if not _NAME_RE.fullmatch(run or ""):
            raise ArtifactError(f"invalid run name {run!r}")
        return self.root / "checkpoints" / run

    def runs(self) -> list[str]:
        """Run names that have at least one checkpoint file."""
        checkpoints = self.root / "checkpoints"
        if not checkpoints.is_dir():
            return []
        return sorted(d.name for d in checkpoints.iterdir() if any(d.glob("*.npz")))

    def checkpointer(self, run: str, every: int = 1) -> Checkpointer:
        """A :class:`~repro.io.checkpoint.Checkpointer` for one run."""
        return Checkpointer(self.checkpoint_dir(run), every=every)

    def pipeline_checkpointer(self, run: str, every: int = 1) -> PipelineCheckpointer:
        """A pipeline checkpointer for one Algorithm-1 run."""
        return PipelineCheckpointer(self.checkpoint_dir(run), every=every)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r}, models={self.model_names()})"
