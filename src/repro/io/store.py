"""Disk-backed, versioned store of deployed models and training runs.

Directory layout::

    <root>/
      store.json                    # marker: {"format": ..., "version": 1}
      models/<name>/v0001.npz       # deployed artifacts, monotone versions
      checkpoints/<run>/epoch_0003.npz      # Trainer checkpoints
      checkpoints/<run>/step_0007.npz       # pipeline checkpoints

Publishing a deployed artifact appends a new version — unless its
:func:`~repro.core.engine.engine_fingerprint` matches the current
latest, in which case the existing version is returned (publishing is
idempotent per content).  ``load`` of a model name resolves to the
newest version by default, which is what
:meth:`repro.serve.ModelRegistry.from_store` serves: a cold process
start loads every model from disk in milliseconds instead of re-running
quantization and calibration.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Optional

from repro.core.engine import engine_fingerprint
from repro.core.mfdfp import DeployedMFDFP

from repro.io.artifacts import (
    ArtifactError,
    load_deployed,
    read_header,
    save_deployed,
)
from repro.io.checkpoint import Checkpointer, PipelineCheckpointer

_MARKER = "store.json"
_STORE_FORMAT = "repro-artifact-store"
_VERSION_RE = re.compile(r"^v(\d{4,})\.npz$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][\w.-]*$")


class ArtifactStore:
    """A versioned artifact directory (see module docstring).

    Args:
        root: Store directory.
        create: Initialize the directory (and marker file) if missing.
            With ``create=False`` a path that is not an existing store
            raises :class:`~repro.io.artifacts.ArtifactError` — the
            read-only open used by ``serve --store``.
    """

    def __init__(self, root, create: bool = True):
        self.root = Path(root)
        marker = self.root / _MARKER
        if marker.is_file():
            try:
                payload = json.loads(marker.read_text())
            except json.JSONDecodeError as exc:
                raise ArtifactError(f"{marker}: unreadable store marker") from exc
            if payload.get("format") != _STORE_FORMAT:
                raise ArtifactError(f"{self.root} is not a repro artifact store")
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            marker.write_text(json.dumps({"format": _STORE_FORMAT, "version": 1}) + "\n")
        else:
            raise ArtifactError(f"{self.root} is not a repro artifact store (no {_MARKER})")

    # -- deployed models ---------------------------------------------------
    def _model_dir(self, name: str, create: bool = False) -> Path:
        if not _NAME_RE.fullmatch(name or ""):
            raise ArtifactError(f"invalid model name {name!r}")
        path = self.root / "models" / name
        if create:
            path.mkdir(parents=True, exist_ok=True)
        return path

    def model_names(self) -> list[str]:
        """Model names with at least one published version, sorted."""
        models = self.root / "models"
        if not models.is_dir():
            return []
        return sorted(d.name for d in models.iterdir() if d.is_dir() and self._versions(d))

    @staticmethod
    def _versions(model_dir: Path) -> list[int]:
        out = []
        for p in model_dir.glob("v*.npz"):
            m = _VERSION_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def versions(self, name: str) -> list[int]:
        """Published versions of a model, oldest first."""
        return self._versions(self._model_dir(name))

    def latest_version(self, name: str) -> Optional[int]:
        versions = self.versions(name)
        return versions[-1] if versions else None

    def model_path(self, name: str, version: Optional[int] = None) -> Path:
        """Path of one published version (default: newest)."""
        if version is None:
            version = self.latest_version(name)
            if version is None:
                raise ArtifactError(f"store has no model named {name!r}")
        path = self._model_dir(name) / f"v{version:04d}.npz"
        if not path.is_file():
            raise ArtifactError(f"store has no version {version} of model {name!r}")
        return path

    def publish_deployed(self, name: str, deployed: DeployedMFDFP) -> int:
        """Publish a deployed artifact; returns its version number.

        Content-addressed idempotence: when the artifact's engine
        fingerprint equals the current newest version's, no new version
        is written and the existing number is returned.
        """
        fingerprint = engine_fingerprint(deployed)
        latest = self.latest_version(name)
        if latest is not None and self.fingerprint(name, latest) == fingerprint:
            return latest
        version = (latest or 0) + 1
        save_deployed(deployed, self._model_dir(name, create=True) / f"v{version:04d}.npz")
        return version

    def load_deployed(self, name: str, version: Optional[int] = None) -> DeployedMFDFP:
        """Load one published version (default: newest), fully validated."""
        return load_deployed(self.model_path(name, version))

    def fingerprint(self, name: str, version: Optional[int] = None) -> Optional[str]:
        """Stored engine fingerprint of a version (header read only).

        Artifacts imported from legacy files carry no stored
        fingerprint; those return None (a full load still verifies the
        tensors are well formed).
        """
        header = read_header(self.model_path(name, version))
        return header["meta"].get("fingerprint")

    # -- training runs -----------------------------------------------------
    def checkpoint_dir(self, run: str) -> Path:
        if not _NAME_RE.fullmatch(run or ""):
            raise ArtifactError(f"invalid run name {run!r}")
        return self.root / "checkpoints" / run

    def runs(self) -> list[str]:
        """Run names that have at least one checkpoint file."""
        checkpoints = self.root / "checkpoints"
        if not checkpoints.is_dir():
            return []
        return sorted(d.name for d in checkpoints.iterdir() if any(d.glob("*.npz")))

    def checkpointer(self, run: str, every: int = 1) -> Checkpointer:
        """A :class:`~repro.io.checkpoint.Checkpointer` for one run."""
        return Checkpointer(self.checkpoint_dir(run), every=every)

    def pipeline_checkpointer(self, run: str, every: int = 1) -> PipelineCheckpointer:
        """A pipeline checkpointer for one Algorithm-1 run."""
        return PipelineCheckpointer(self.checkpoint_dir(run), every=every)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r}, models={self.model_names()})"
