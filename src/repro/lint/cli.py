"""Command-line front end for ``python -m repro lint``.

Exit codes: 0 — clean (no unsuppressed findings); 1 — unsuppressed
findings; 2 — usage error (unknown rule, missing path).  Suppressed
findings never affect the exit code; ``--show-suppressed`` displays the
allow-list, and the JSON report always includes it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.findings import LintResult
from repro.lint.registry import all_rules
from repro.lint.runner import run_lint

#: Exit code for CLI usage errors (unknown rules, missing paths).
USAGE_ERROR = 2


def default_paths() -> list[Path]:
    """The installed ``repro`` package tree — lintable from any cwd."""
    import repro

    return [Path(repro.__file__).parent]


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST-based invariant checks for the repro codebase contracts.",
    )
    add_arguments(parser)
    return parser


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with the repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package tree)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings with their reasons (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their contracts and exit",
    )


def _render_text(result: LintResult, show_suppressed: bool, out) -> None:
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        print(finding.render(), file=out)
    counts = result.as_dict()["counts"]
    print(
        f"{result.files_checked} files checked: "
        f"{counts['unsuppressed']} finding(s), "
        f"{counts['suppressed']} suppressed",
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = build_parser()
    return run_from_args(parser.parse_args(argv), out=out)


def run_from_args(args, out=None) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout

    if args.list_rules:
        for name, cls in all_rules().items():
            print(f"{name}: {cls.summary}", file=out)
        return 0

    rule_names = None
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]

    paths = args.paths or default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return USAGE_ERROR

    try:
        result = run_lint(paths, rule_names)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return USAGE_ERROR

    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2), file=out)
    else:
        _render_text(result, args.show_suppressed, out)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
