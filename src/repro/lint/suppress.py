"""Inline suppression directives: ``# repro-lint: disable=<rules> (<reason>)``.

A directive suppresses findings of the named rule(s) **on its own line
only** — there is no block or file-level form, so every allow-listed
violation stays visible next to the code it excuses.  The parenthesised
reason is mandatory: a directive without one does not suppress anything
and instead emits a ``suppression-syntax`` finding, which is itself
unsuppressible.  That keeps the allow-list honest — every exception to a
contract carries its justification in the diff that introduced it.

Comments are read with :mod:`tokenize` (the AST drops them), so
directives inside string literals are never mistaken for suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Optional

from repro.lint.findings import Finding

#: Rule name reserved for malformed directives; never suppressible.
SYNTAX_RULE = "suppression-syntax"

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_DISABLE = re.compile(
    r"^disable=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s+\((?P<reason>[^()]*(?:\([^()]*\)[^()]*)*)\))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``disable=`` directive attached to one source line."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "all" in self.rules


def parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Extract directives from ``source``.

    Returns ``(by_line, syntax_findings)``: valid directives keyed by the
    line they appear on, plus one finding per malformed or reasonless
    directive.  Tokenization errors are ignored here — the caller already
    reports unparseable files via the ``parse-error`` pseudo-rule.
    """
    by_line: dict[int, Suppression] = {}
    findings: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return by_line, findings
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        parsed = _parse_body(match.group("body"))
        if parsed is None:
            findings.append(
                Finding(
                    rule=SYNTAX_RULE,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        "malformed repro-lint directive; expected "
                        "'# repro-lint: disable=<rule>[,<rule>] (<reason>)'"
                    ),
                    rationale="Directives must parse so the allow-list stays auditable.",
                )
            )
            continue
        rules, reason = parsed
        if reason is None or not reason.strip():
            findings.append(
                Finding(
                    rule=SYNTAX_RULE,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        "suppression is missing its required reason; write "
                        f"'# repro-lint: disable={','.join(sorted(rules))} (<why>)'"
                    ),
                    rationale=(
                        "Every exception to a contract must record why it is safe; "
                        "reasonless suppressions rot into unreviewable noise."
                    ),
                )
            )
            continue
        by_line[line] = Suppression(line=line, rules=frozenset(rules), reason=reason.strip())
    return by_line, findings


def _parse_body(body: str) -> Optional[tuple[set[str], Optional[str]]]:
    """Parse the text after ``repro-lint:``; None means malformed."""
    match = _DISABLE.match(body.strip())
    if match is None:
        return None
    rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
    if not rules or SYNTAX_RULE in rules:
        return None
    return rules, match.group("reason")


def apply_suppressions(
    findings: list[Finding], by_line: dict[int, Suppression]
) -> list[Finding]:
    """Mark findings whose line carries a covering directive as suppressed."""
    out: list[Finding] = []
    for finding in findings:
        supp = by_line.get(finding.line)
        if supp is not None and finding.rule != SYNTAX_RULE and supp.covers(finding.rule):
            out.append(finding.suppress(supp.reason))
        else:
            out.append(finding)
    return out
