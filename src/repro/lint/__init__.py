"""``repro lint`` — AST-based invariant checks for this codebase's contracts.

Every hard bug shipped so far violated an *unwritten* project invariant:
the fault-curve RNG derivation bug (randomness not derived from a seeded
parent generator), the dropout float32→float64 upcast (an implicit-dtype
array creation in the training hot loop), the unpicklable sweep lambdas
and the shared-memory unlink hazards of the process scale-out.  This
package turns those invariants into machine-checked rules that run over
the tree on every change (``python -m repro lint``; the tier-1 test
``tests/lint/test_tree_clean.py`` keeps the tree clean forever).

Architecture:

* :mod:`repro.lint.findings` — the :class:`Finding` record every rule
  emits (rule, file:line:col, message, rationale) and its JSON form.
* :mod:`repro.lint.suppress` — inline suppression parsing.  A finding
  line may carry ``# repro-lint: disable=<rule>[,<rule>] (<reason>)``;
  the reason is *required* — a reasonless directive is itself a finding.
* :mod:`repro.lint.visitor` — the single-pass AST walk shared by every
  rule: one traversal per file, maintaining class/function/lock-context
  stacks that rules read instead of re-walking.
* :mod:`repro.lint.registry` — the rule registry; rules declare a name,
  a rationale, and a path scope, and register with :func:`register`.
* :mod:`repro.lint.rules` — the shipped rules, one module per contract:
  ``rng-discipline``, ``dtype-discipline``, ``lock-discipline``,
  ``process-picklability``, ``resource-lifecycle``, ``error-taxonomy``.
* :mod:`repro.lint.runner` — file discovery and per-file execution;
  :func:`run_lint` is the library entry point.
* :mod:`repro.lint.cli` — ``python -m repro lint`` argument handling,
  text/JSON output and exit codes (0 clean, 1 findings, 2 usage error).

See ``docs/static-analysis.md`` for each rule's contract, the shipped
bug that motivated it, and the suppression syntax.
"""

from __future__ import annotations

from repro.lint.findings import Finding, LintResult
from repro.lint.registry import all_rules, get_rules, register
from repro.lint.runner import lint_file, lint_source, run_lint

__all__ = [
    "Finding",
    "LintResult",
    "all_rules",
    "get_rules",
    "register",
    "lint_file",
    "lint_source",
    "run_lint",
]
