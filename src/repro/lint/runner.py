"""File discovery and per-file rule execution for ``repro lint``.

:func:`run_lint` is the library entry point: resolve paths to ``*.py``
files, lint each in one AST pass shared by all selected rules, apply
inline suppressions, and return a :class:`LintResult`.

Path scoping: rules declare fnmatch patterns over *package-relative*
posix paths (``repro/serve/runtime.py``).  :func:`package_relpath`
derives that from any on-disk location by anchoring at the last ``repro``
directory in the path; files outside any ``repro`` package (ad-hoc CLI
arguments, test fixtures in tmp dirs) get ``None``, which every rule
treats as in-scope — so fixtures exercise rules without faking paths.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence, Type

from repro.lint.findings import Finding, LintResult
from repro.lint.registry import Rule, get_rules
from repro.lint.suppress import apply_suppressions, parse_suppressions
from repro.lint.visitor import LintContext, Walker

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def package_relpath(path: Path) -> Optional[str]:
    """Posix path relative to the innermost ``repro`` package, or ``None``."""
    parts = list(path.parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return None


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories to sorted ``*.py`` files, skipping caches."""
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[Rule]]] = None,
    relpath: Optional[str] = "__auto__",
) -> list[Finding]:
    """Lint a source string; the unit the file/tree entry points build on.

    ``relpath`` scopes rules: pass a package-relative path to emulate a
    tree location, ``None`` to run every selected rule, or leave the
    default to derive it from ``path``.
    """
    if relpath == "__auto__":
        relpath = package_relpath(Path(path))
    rule_classes = list(rules) if rules is not None else get_rules()
    active = [cls() for cls in rule_classes if cls.applies_to(relpath)]
    suppressions, findings = parse_suppressions(source, path)
    if active:
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            findings.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=line,
                    col=getattr(exc, "offset", 0) or 0,
                    message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
                    rationale="Unparseable files cannot be checked and never ship.",
                )
            )
            return findings
        ctx = LintContext(path=path, source=source, relpath=relpath)
        Walker(active, ctx).run(tree)
        for rule in active:
            findings.extend(rule.findings)
    findings = apply_suppressions(findings, suppressions)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: Path, rules: Optional[Sequence[Type[Rule]]] = None
) -> list[Finding]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def run_lint(
    paths: Sequence[Path],
    rule_names: Optional[list[str]] = None,
) -> LintResult:
    """Lint every python file under ``paths`` with the named rules (all by default)."""
    rules = get_rules(rule_names)
    result = LintResult()
    for file in iter_python_files([Path(p) for p in paths]):
        result.extend(lint_file(file, rules))
        result.files_checked += 1
    return result
