"""The :class:`Finding` record emitted by every lint rule.

A finding pins a rule violation to a file:line:col, explains *what* is
wrong (``message``) and *why the contract exists* (``rationale`` — which
shipped bug this class of defect caused).  Suppressed findings are kept,
flagged, so ``--show-suppressed`` and the JSON report can audit the
allow-list; only unsuppressed findings affect exit codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    rationale: str = ""
    suppressed: bool = False
    suppress_reason: Optional[str] = None

    def suppress(self, reason: str) -> "Finding":
        """Return a copy marked suppressed with the directive's reason."""
        return replace(self, suppressed=True, suppress_reason=reason)

    def as_dict(self) -> dict:
        """JSON-ready mapping (stable key order; schema version lives in the report)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "rationale": self.rationale,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    def render(self) -> str:
        """One-line human form: ``path:line:col: rule: message``."""
        tail = f"  [suppressed: {self.suppress_reason}]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tail}"


@dataclass
class LintResult:
    """Aggregate outcome of a lint run over one or more files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        """0 when no unsuppressed finding remains, else 1."""
        return 1 if self.unsuppressed else 0

    def as_dict(self) -> dict:
        """JSON report: schema version, counts, and every finding (suppressed included)."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": {
                "total": len(self.findings),
                "suppressed": len(self.suppressed),
                "unsuppressed": len(self.unsuppressed),
            },
            "findings": [f.as_dict() for f in self.findings],
        }
