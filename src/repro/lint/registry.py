"""Rule base class and the process-wide rule registry.

A rule declares a ``name`` (what appears in findings and suppression
directives), a ``rationale`` (the shipped bug its contract prevents),
and a ``scope`` — fnmatch patterns over package-relative posix paths
(``repro/serve/runtime.py``) restricting where it runs.  Rules register
at import time via the :func:`register` decorator; the runner
instantiates a fresh rule object per file, so rules may keep per-module
state freely.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Optional, Type

from repro.lint.findings import Finding


class Rule:
    """Base class for lint rules; subclass, set metadata, override hooks."""

    #: Identifier used in reports and ``disable=`` directives.
    name: str = ""
    #: One-line contract statement shown by ``--list-rules``.
    summary: str = ""
    #: Why the contract exists — the shipped bug this class of defect caused.
    rationale: str = ""
    #: fnmatch patterns over package-relative paths; ``("*",)`` = everywhere.
    scope: tuple[str, ...] = ("*",)
    #: Paths the rule never applies to, even inside ``scope``.
    exclude: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, relpath: Optional[str]) -> bool:
        """Whether this rule runs on ``relpath``.

        ``relpath`` is package-relative (``repro/...``); ``None`` means the
        file lives outside any ``repro`` package (ad-hoc CLI paths, test
        fixtures) — every rule runs there so fixtures exercise all rules.
        """
        if relpath is None:
            return True
        if any(fnmatch(relpath, pat) for pat in cls.exclude):
            return False
        return any(fnmatch(relpath, pat) for pat in cls.scope)

    # -- hooks called by the single-pass walker ---------------------------
    def begin_module(self, tree: ast.Module, ctx) -> None:
        """Called once per file before the walk; ``ctx`` is the LintContext."""

    def visit(self, node: ast.AST, ctx) -> None:
        """Called for every AST node, in source order."""

    def end_module(self, ctx) -> None:
        """Called once per file after the walk; emit aggregate findings here."""

    # -- helpers ----------------------------------------------------------
    def emit(self, ctx, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                rule=self.name,
                path=ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                rationale=self.rationale,
            )
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the registry (name must be unique)."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate rule name: {cls.name}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """All registered rules by name (imports the bundled rule modules)."""
    import repro.lint.rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


def get_rules(names: Optional[list[str]] = None) -> list[Type[Rule]]:
    """Resolve ``names`` to rule classes; ``None``/empty selects every rule."""
    registry = all_rules()
    if not names:
        return list(registry.values())
    missing = [n for n in names if n not in registry]
    if missing:
        known = ", ".join(registry)
        raise KeyError(f"unknown rule(s): {', '.join(missing)} (known: {known})")
    return [registry[n] for n in names]
