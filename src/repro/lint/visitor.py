"""The single-pass AST walk shared by every rule.

One traversal per file: the walker maintains class / function / held-lock
context stacks and dispatches every node to every applicable rule, so N
rules cost one walk instead of N.  Rules read the :class:`LintContext`
rather than re-deriving scope themselves.

Conventions the context encodes (mirroring the codebase's own):

* A ``with <recv>.<attr>:`` item whose attribute name looks lock-ish
  (``lock``/``_lock``/``mutex``/``cond``/``work``) pushes a held lock.
  ``self.work = threading.Condition(self.lock)`` means entering either
  guards the same state, so both names count as the lock.
* Methods named ``__init__``/``__post_init__``/``__new__`` or carrying a
  ``_locked`` marker in their name are *exempt* contexts: construction
  happens before the object is shared, and ``*_locked`` is this repo's
  convention for "caller already holds the lock".
* A class "owns a lock" when its body assigns ``self.<x> = Lock()`` /
  ``RLock()`` / ``Condition(...)`` (or a class-level equivalent).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Optional

LOCKISH_ATTR = re.compile(r"(?:^|_)(?:lock|mutex|cond|work)$|_lock$|^lock")
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_EXEMPT_FUNCTIONS = {"__init__", "__post_init__", "__new__"}


def is_lockish_name(name: str) -> bool:
    """Whether an attribute/variable name denotes a lock or condition."""
    return bool(LOCKISH_ATTR.search(name))


def expr_text(node: ast.AST) -> str:
    """Source-ish text of an expression (``self._lock``, ``np.zeros`` ...)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we meet
        return "<expr>"


def call_name(node: ast.Call) -> str:
    """Dotted name of a call target (``np.random.default_rng``) or ''."""
    return expr_text(node.func)


def _is_lock_factory(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


@dataclass
class ClassInfo:
    """Context for the class currently being visited."""

    name: str
    docstring: str = ""
    #: Names of self-attributes assigned from Lock()/RLock()/Condition().
    lock_attrs: set[str] = field(default_factory=set)

    @property
    def owns_lock(self) -> bool:
        return bool(self.lock_attrs)


@dataclass
class FunctionInfo:
    """Context for the function/method currently being visited."""

    name: str
    node: ast.AST

    @property
    def is_exempt(self) -> bool:
        """Construction-time or caller-holds-lock contexts (see module doc)."""
        return self.name in _EXEMPT_FUNCTIONS or "_locked" in self.name


@dataclass
class HeldLock:
    """One active ``with <receiver>.<attr>:`` lock acquisition."""

    receiver: str
    attr: str
    node: ast.With

    @property
    def text(self) -> str:
        return f"{self.receiver}.{self.attr}"


class LintContext:
    """Per-file state every rule reads during the walk."""

    def __init__(self, path: str, source: str, relpath: Optional[str]) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.class_stack: list[ClassInfo] = []
        self.func_stack: list[FunctionInfo] = []
        self.lock_stack: list[HeldLock] = []
        #: ids of expressions used directly as ``with``-item context managers.
        self.with_context_ids: set[int] = set()

    @property
    def current_class(self) -> Optional[ClassInfo]:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_function(self) -> Optional[FunctionInfo]:
        return self.func_stack[-1] if self.func_stack else None

    @property
    def in_exempt_function(self) -> bool:
        return any(f.is_exempt for f in self.func_stack)

    @property
    def holds_lock(self) -> bool:
        return bool(self.lock_stack)

    def held_lock_names(self) -> set[str]:
        """Attribute names of locks currently held (``_lock``, ``work``...)."""
        return {h.attr for h in self.lock_stack}


def _scan_lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attribute names this class assigns from lock factories, anywhere in its body."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
                elif isinstance(target, ast.Name):
                    attrs.add(target.id)
    return attrs


class Walker:
    """Drives one traversal, dispatching every node to every rule."""

    def __init__(self, rules, ctx: LintContext) -> None:
        self.rules = rules
        self.ctx = ctx

    def run(self, tree: ast.Module) -> None:
        for rule in self.rules:
            rule.begin_module(tree, self.ctx)
        self._visit(tree)
        for rule in self.rules:
            rule.end_module(self.ctx)

    def _dispatch(self, node: ast.AST) -> None:
        for rule in self.rules:
            rule.visit(node, self.ctx)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.ClassDef):
            info = ClassInfo(
                name=node.name,
                docstring=ast.get_docstring(node) or "",
                lock_attrs=_scan_lock_attrs(node),
            )
            self.ctx.class_stack.append(info)
            self._dispatch(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self.ctx.class_stack.pop()
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.ctx.func_stack.append(FunctionInfo(name=node.name, node=node))
            self._dispatch(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self.ctx.func_stack.pop()
        elif isinstance(node, ast.With):
            held = []
            for item in node.items:
                self.ctx.with_context_ids.add(id(item.context_expr))
                lock = self._as_lock(item.context_expr, node)
                if lock is not None:
                    held.append(lock)
            self.ctx.lock_stack.extend(held)
            self._dispatch(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            for _ in held:
                self.ctx.lock_stack.pop()
        else:
            self._dispatch(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)

    @staticmethod
    def _as_lock(expr: ast.AST, node: ast.With) -> Optional[HeldLock]:
        """Recognize ``with x._lock:`` / ``with self.work:`` style items."""
        if isinstance(expr, ast.Attribute) and is_lockish_name(expr.attr):
            return HeldLock(receiver=expr_text(expr.value), attr=expr.attr, node=node)
        if isinstance(expr, ast.Name) and is_lockish_name(expr.id):
            return HeldLock(receiver="", attr=expr.id, node=node)
        return None
