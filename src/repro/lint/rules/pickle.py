"""``process-picklability`` — only importable callables cross process edges.

The PR 7 bug: sweep points were dispatched as lambda closures, which
pickle by *reference to a module-level name* — lambdas and locally
defined functions have none, so the process backend died with
``PicklingError`` the first time it was actually selected (the thread
backend masked it).  The fix made every cross-process task a module-level
function or a picklable callable object; this rule keeps new call sites
honest without importing or executing anything:

* lambdas / nested (locally defined) functions passed to ``submit``/
  ``call``/``map`` on a :class:`ProcessPoolRunner` (recognized through
  direct construction, ``with ProcessPoolRunner(...) as r:`` bindings,
  and receivers named like ``*runner*``), and
* lambdas / nested functions in the task list of
  ``parallel_map(..., backend="process")`` when the backend is literal.

Thread-pool call sites are deliberately out of scope — closures are fine
there, and the executor idiom (``pool.submit``) stays unflagged.
"""

from __future__ import annotations

import ast
import re

from repro.lint.registry import Rule, register
from repro.lint.visitor import expr_text

_POOL_METHODS = {"submit", "call", "map"}
_RUNNERISH = re.compile(r"runner", re.IGNORECASE)


@register
class ProcessPicklability(Rule):
    name = "process-picklability"
    summary = (
        "no lambdas or locally-defined callables into ProcessPoolRunner "
        "or parallel_map(backend='process')"
    )
    rationale = (
        "PR 7's sweep bug: lambda closures pickle by module-level name — "
        "which they lack — so the process backend crashed the moment it "
        "was selected; cross-process tasks must be importable callables."
    )
    scope = ("repro/*",)
    exclude = ("repro/lint/*",)

    def __init__(self) -> None:
        super().__init__()
        #: Local names bound to a ProcessPoolRunner in the current module.
        self._runner_names: set[str] = set()
        #: Function names defined *inside* an enclosing function (unpicklable).
        self._nested_defs: set[str] = set()

    def begin_module(self, tree: ast.Module, ctx) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_runner_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._runner_names.add(target.id)
            elif isinstance(node, ast.With):
                for item in node.items:
                    if self._is_runner_ctor(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        self._runner_names.add(item.optional_vars.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._nested_defs.add(inner.name)

    @staticmethod
    def _is_runner_ctor(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        return expr_text(value.func).split(".")[-1] == "ProcessPoolRunner"

    def visit(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            recv = expr_text(func.value)
            recv_tail = recv.split(".")[-1]
            if recv_tail in self._runner_names or _RUNNERISH.search(recv_tail):
                self._check_args(node, ctx, f"{recv}.{func.attr}")
        elif isinstance(func, ast.Name) and func.id == "parallel_map":
            backend = next(
                (kw.value for kw in node.keywords if kw.arg == "backend"), None
            )
            if (
                isinstance(backend, ast.Constant)
                and backend.value == "process"
            ):
                self._check_args(node, ctx, "parallel_map(backend='process')")

    def _check_args(self, call: ast.Call, ctx, where: str) -> None:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for bad in self._unpicklable_exprs(arg):
                what = (
                    "lambda"
                    if isinstance(bad, ast.Lambda)
                    else f"locally-defined function {bad.id!r}"
                )
                self.emit(
                    ctx,
                    bad,
                    f"{what} flows into {where}; it pickles by module-level "
                    "name (which it lacks) and crashes the process backend — "
                    "use a module-level function or a picklable callable "
                    "object",
                )

    def _unpicklable_exprs(self, arg: ast.AST):
        """Lambdas / nested-def names inside ``arg`` (itself, containers, comprehensions)."""
        for node in ast.walk(arg):
            if isinstance(node, ast.Lambda):
                yield node
            elif isinstance(node, ast.Name) and node.id in self._nested_defs:
                yield node
