"""Bundled lint rules — importing this package registers all of them."""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import = register)
    dtype,
    errors,
    injection,
    lifecycle,
    locks,
    pickle,
    rng,
)
