"""``rng-discipline`` — randomness must flow from a caller-provided parent.

The PR 3 fault-curve bug: campaign points drew from module-global numpy
state (or freshly literal-seeded generators), so results changed with
thread scheduling and could not be reproduced point-by-point.  The fix
made every random consumer accept a :class:`numpy.random.Generator` (or
derive one from a parent via ``SeedSequence``).  This rule keeps it that
way in library code:

* any ``np.random.<fn>()`` *module-state* call (``np.random.seed``,
  ``np.random.normal``, ...) is flagged — module state is process-global
  and unseedable per-call-site;
* ``default_rng(<integer literal>)`` is flagged — a hard-coded seed in
  library code silently decouples the site from the experiment's seed
  plumbing.  ``default_rng(seed_param)`` and ``default_rng(SeedSequence
  (...))`` derivations are fine.

Deliberate layer defaults (``rng or default_rng(0)``) are allow-listed
inline with reasons; the CLI entry point (``repro/cli.py``) owns the
user-facing seeds and is excluded wholesale.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register
from repro.lint.visitor import call_name

#: numpy.random module-state functions (operate on the hidden global RandomState).
MODULE_STATE_FNS = {
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "bytes", "shuffle",
    "permutation", "beta", "binomial", "chisquare", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "poisson", "power", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
    "wald", "weibull", "zipf", "get_state", "set_state",
}


@register
class RngDiscipline(Rule):
    name = "rng-discipline"
    summary = (
        "no numpy module-state randomness or literal-seeded default_rng in library code"
    )
    rationale = (
        "PR 3's fault-curve bug: randomness not derived from a seeded parent "
        "generator made campaign points irreproducible under parallelism."
    )
    scope = ("repro/*",)
    # The CLI entry point owns the user-facing seeds (--seed flags and the
    # paper's published table seeds); everything it calls takes an rng.
    exclude = ("repro/cli.py", "repro/lint/*")

    def visit(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Call):
            return
        name = call_name(node)
        parts = name.split(".")
        if len(parts) >= 3 and parts[-3:-1] == ["np", "random"] or (
            len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random"
        ):
            if parts[-1] in MODULE_STATE_FNS:
                self.emit(
                    ctx,
                    node,
                    f"module-state call {name}() draws from process-global RNG "
                    "state; accept a numpy Generator or derive one from a parent "
                    "SeedSequence instead",
                )
                return
        if parts[-1] == "default_rng" and node.args:
            seed = node.args[0]
            if isinstance(seed, ast.Constant) and isinstance(seed.value, int):
                self.emit(
                    ctx,
                    node,
                    f"literal-seeded {name}({seed.value!r}) in library code "
                    "hard-wires a seed outside the experiment's seed plumbing; "
                    "take an rng parameter or derive from the caller's generator",
                )
