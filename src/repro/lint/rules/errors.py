"""``error-taxonomy`` — packages with typed hierarchies raise them.

``repro.serve`` (ServeError and friends), ``repro.io`` (ArtifactError
and friends) and ``repro.parallel`` (PoolError and friends) each publish
a typed exception hierarchy precisely so callers can catch by meaning —
admission control distinguishes ``QueueFullError`` from
``ServerClosedError``; resume logic distinguishes ``ArtifactCorruptError``
from ``ArtifactVersionError``.  A bare ``raise ValueError(...)`` inside
those packages silently escapes every such handler and surfaces as an
unclassifiable failure at the API boundary.

Flagged: ``raise ValueError/RuntimeError/Exception`` in the three
packages, outside ``__init__``/``__post_init__`` (constructor argument
validation is the documented ValueError contract, matching the stdlib).
Deliberate boundary validations elsewhere are allow-listed inline.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register
from repro.lint.visitor import expr_text

_BARE_TYPES = {"ValueError", "RuntimeError", "Exception"}

#: package prefix -> the hierarchy a typed raise should come from.
HIERARCHIES = {
    "repro/serve/": "repro.serve.errors (ServeError and subclasses)",
    "repro/io/": "repro.io.artifacts (ArtifactError and subclasses)",
    "repro/parallel/": "repro.parallel (PoolError and subclasses)",
}


@register
class ErrorTaxonomy(Rule):
    name = "error-taxonomy"
    summary = (
        "no bare ValueError/RuntimeError raises in serve/, io/, parallel/ "
        "outside constructors — use the package's typed hierarchy"
    )
    rationale = (
        "Typed hierarchies exist so callers catch by meaning; a bare "
        "ValueError in serve/io/parallel escapes every ServeError/"
        "ArtifactError/PoolError handler and surfaces unclassified."
    )
    scope = ("repro/serve/*", "repro/io/*", "repro/parallel/*")

    def visit(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Raise) or node.exc is None:
            return
        if any(f.name in ("__init__", "__post_init__", "__new__") for f in ctx.func_stack):
            return
        exc = node.exc
        name = ""
        if isinstance(exc, ast.Call):
            name = expr_text(exc.func)
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name not in _BARE_TYPES:
            return
        hierarchy = next(
            (h for prefix, h in HIERARCHIES.items()
             if ctx.relpath is not None and ctx.relpath.startswith(prefix)),
            "the package's typed exception hierarchy",
        )
        self.emit(
            ctx,
            node,
            f"bare raise {name} in a package with a typed hierarchy; it "
            f"escapes every typed handler — raise from {hierarchy} (or "
            "subclass it) so callers can catch by meaning",
        )
