"""``dtype-discipline`` — array creation in hot paths names its dtype.

The PR 4 dropout bug: an implicit-dtype array creation in the training
hot loop silently upcast float32 activations to float64, doubling memory
traffic and breaking the compiled path's bit-identity against the eager
path.  numpy's creation defaults (float64 for ``zeros``/``ones``/
``empty``, value-inferred for ``array``/``full``) make the widening
invisible at the call site, so in ``nn/`` and ``core/`` — where every
array is either a float64 canonical plane or a float32 activation, by
contract — creation calls must say which.

``*_like``/``asarray``/``arange`` are exempt: they propagate an existing
dtype (or take one explicitly by idiom) rather than defaulting to one.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register
from repro.lint.visitor import call_name

#: numpy creation functions that default a dtype the caller never sees.
CREATION_FNS = {"zeros", "ones", "empty", "full", "array", "linspace", "eye", "identity"}


@register
class DtypeDiscipline(Rule):
    name = "dtype-discipline"
    summary = "numpy array creation in nn/ and core/ hot paths requires explicit dtype="
    rationale = (
        "PR 4's dropout bug: an implicit-dtype np.zeros in the training loop "
        "upcast float32 activations to float64 and broke compiled/eager "
        "bit-identity."
    )
    scope = ("repro/nn/*", "repro/core/*")

    def visit(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Call):
            return
        name = call_name(node)
        parts = name.split(".")
        if len(parts) != 2 or parts[0] not in ("np", "numpy"):
            return
        if parts[1] not in CREATION_FNS:
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        # np.array(x, np.float32) — dtype is array's second positional.
        if parts[1] == "array" and len(node.args) >= 2:
            return
        self.emit(
            ctx,
            node,
            f"{name}(...) without an explicit dtype= relies on numpy's default "
            "and can silently widen float32 activations to float64; name the "
            "dtype at the creation site",
        )
