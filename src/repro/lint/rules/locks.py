"""``lock-discipline`` — shared mutable state is guarded consistently.

The serving tier, the process pool, and the engine cache are heavily
concurrent; their correctness argument is "every shared attribute is
written under its owner's lock".  Two defect shapes have slipped through
review in that argument:

* **mixed-lock writes** — an attribute written both under ``with
  self._lock`` and outside it.  One guarded site creates the *appearance*
  of thread-safety while the unguarded one races.  Detected per module by
  aggregating every attribute write with its lock context.
* **unguarded counters** — ``self.x += 1`` (read-modify-write, never
  atomic under free threading) outside any lock, inside a class that
  owns a lock or documents itself as thread-shared.
* **blocking under a lock** — ``future.result()``, ``queue.put/get()``,
  ``thread.join()``, ``time.sleep()``, ``subprocess.*`` while holding a
  lock serializes every other thread behind an unbounded wait (and can
  deadlock against a worker that needs the same lock).

Repo conventions honored: ``__init__``/``__post_init__`` writes are
construction-time (pre-sharing) and exempt; methods with ``_locked`` in
the name assert "caller holds the lock" and are treated as guarded;
``Condition.wait()``/``notify*()`` release the lock by contract and are
never flagged.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.registry import Rule, register
from repro.lint.visitor import expr_text

#: Blocking method names flagged while any lock is held.
_BLOCKING_ATTRS = {"result", "join"}
#: put/get block only on queue-like receivers; dict.get is everywhere.
_QUEUEISH = re.compile(r"queue|task|result|mailbox|inbox|outbox|\bq\b", re.IGNORECASE)
_CONCURRENT_DOC = re.compile(r"thread|concurren|race", re.IGNORECASE)


@dataclass
class _Write:
    node: ast.AST
    under_lock: bool
    exempt: bool
    augmented: bool
    class_owns_lock: bool
    class_doc_concurrent: bool


@register
class LockDiscipline(Rule):
    name = "lock-discipline"
    summary = (
        "no mixed locked/unlocked writes, unguarded += counters, or blocking "
        "calls while holding a lock in the concurrent tiers"
    )
    rationale = (
        "The serving/parallel tiers' correctness rests on every shared "
        "attribute being written under its owner's lock; one unguarded "
        "write or one blocking call under a lock silently breaks that."
    )
    scope = ("repro/serve/*", "repro/parallel/*", "repro/core/engine.py")

    def __init__(self) -> None:
        super().__init__()
        # (owner, attr) -> writes; owner is the class name for self-attrs,
        # else the receiver expression text.
        self._writes: dict[tuple[str, str], list[_Write]] = {}

    # -- collection -------------------------------------------------------
    def visit(self, node: ast.AST, ctx) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_write(target, ctx, augmented=False)
        elif isinstance(node, (ast.AugAssign,)):
            self._record_write(node.target, ctx, augmented=True)
        elif isinstance(node, ast.Call):
            self._check_blocking(node, ctx)

    def _record_write(self, target: ast.AST, ctx, augmented: bool) -> None:
        if not isinstance(target, ast.Attribute):
            return
        recv = expr_text(target.value)
        cls = ctx.current_class
        if recv == "self":
            if cls is None:
                return
            owner = cls.name
            if target.attr in cls.lock_attrs:
                return  # assigning the lock itself
        else:
            owner = recv
        self._writes.setdefault((owner, target.attr), []).append(
            _Write(
                node=target,
                under_lock=ctx.holds_lock,
                exempt=ctx.in_exempt_function or ctx.current_function is None,
                augmented=augmented,
                class_owns_lock=bool(cls and cls.owns_lock and recv == "self"),
                class_doc_concurrent=bool(
                    cls and recv == "self" and _CONCURRENT_DOC.search(cls.docstring)
                ),
            )
        )

    def _check_blocking(self, node: ast.Call, ctx) -> None:
        if not ctx.holds_lock:
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            recv = expr_text(func.value)
            attr = func.attr
            if recv in ("time",) and attr == "sleep":
                self._emit_blocking(ctx, node, f"{recv}.{attr}")
                return
            if recv == "subprocess" or recv.startswith("subprocess."):
                self._emit_blocking(ctx, node, f"{recv}.{attr}")
                return
            if attr in _BLOCKING_ATTRS:
                self._emit_blocking(ctx, node, f"{recv}.{attr}")
                return
            if attr in ("put", "get") and _QUEUEISH.search(recv):
                self._emit_blocking(ctx, node, f"{recv}.{attr}")

    def _emit_blocking(self, ctx, node: ast.Call, what: str) -> None:
        held = ", ".join(sorted({h.text for h in ctx.lock_stack}))
        self.emit(
            ctx,
            node,
            f"blocking call {what}(...) while holding {held}; every other "
            "thread serializes behind this wait (and it can deadlock against "
            "a worker needing the same lock) — move the wait outside the "
            "critical section",
        )

    # -- aggregation ------------------------------------------------------
    def end_module(self, ctx) -> None:
        for (owner, attr), writes in sorted(self._writes.items()):
            unlocked = [w for w in writes if not w.under_lock and not w.exempt]
            any_locked = any(w.under_lock for w in writes)
            if any_locked and unlocked:
                for w in unlocked:
                    self.emit(
                        ctx,
                        w.node,
                        f"{owner}.{attr} is written under a lock elsewhere in "
                        "this module but unguarded here; either every write "
                        "holds the lock or none does (rename the method with a "
                        "_locked suffix if the caller already holds it)",
                    )
                continue
            # Unguarded read-modify-write counters in concurrency-marked classes.
            for w in unlocked:
                if w.augmented and (w.class_owns_lock or w.class_doc_concurrent):
                    self.emit(
                        ctx,
                        w.node,
                        f"unguarded {owner}.{attr} += ... in a thread-shared "
                        "class; augmented assignment is a read-modify-write "
                        "race under concurrency — guard it with the owner's "
                        "lock",
                    )
        self._writes.clear()
