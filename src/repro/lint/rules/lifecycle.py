"""``resource-lifecycle`` — OS-backed resources have a single owner.

PR 7's shared-memory hazards: a :class:`multiprocessing.shared_memory.
SharedMemory` segment created outside the arena left dangling ``/dev/shm``
mappings (and resource-tracker unlink races) when its creator died.  The
repo's answer is a single owner — ``repro.parallel.arena`` — whose
:class:`SharedWeightArena` pairs every create with registered close+unlink
and whose ``attach_planes`` memoizes attachments.  This rule enforces the
ownership boundary:

* ``SharedMemory(...)`` constructed anywhere outside the arena module is
  flagged — route segment creation through ``SharedWeightArena`` /
  ``attach_planes`` instead;
* in ``repro.io`` (the artifact/checkpoint tier, where a leaked handle
  means a torn container on crash), ``open(...)`` must be the context
  expression of a ``with`` — bare opens that rely on garbage collection
  to flush are flagged.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register
from repro.lint.visitor import expr_text

#: Modules allowed to construct SharedMemory (the owning arena).
SHM_OWNERS = ("repro/parallel/arena.py",)


@register
class ResourceLifecycle(Rule):
    name = "resource-lifecycle"
    summary = (
        "SharedMemory only inside the owning arena module; open() in repro.io "
        "only as a with-statement context manager"
    )
    rationale = (
        "PR 7's shared-memory hazards: segments created outside the arena "
        "leaked /dev/shm mappings on crash; file handles outside `with` in "
        "the artifact tier risk torn containers."
    )
    scope = ("repro/*",)
    exclude = ("repro/lint/*",)

    def visit(self, node: ast.AST, ctx) -> None:
        if not isinstance(node, ast.Call):
            return
        name = expr_text(node.func)
        if name.split(".")[-1] == "SharedMemory":
            if ctx.relpath is None or ctx.relpath not in SHM_OWNERS:
                self.emit(
                    ctx,
                    node,
                    f"{name}(...) constructed outside the owning arena module; "
                    "segments need paired close/unlink registration — create "
                    "and attach through repro.parallel.arena "
                    "(SharedWeightArena / attach_planes) instead",
                )
            return
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and (ctx.relpath is None or ctx.relpath.startswith("repro/io/"))
            and id(node) not in ctx.with_context_ids
        ):
            self.emit(
                ctx,
                node,
                "open(...) outside a with-statement in the artifact tier; a "
                "handle that relies on garbage collection to flush can tear a "
                "container on crash — use `with open(...) as f:`",
            )
