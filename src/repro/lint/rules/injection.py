"""``injection-discipline`` — chaos faults stay typed and statically visible.

The chaos harness makes two promises the rest of the repo relies on:

* **Typed failures only.**  An injected fault must raise (or provoke)
  an error from the owning layer's hierarchy — ``ArtifactError``,
  ``PoolError``, ``CrashError`` — so recovery code sees exactly what a
  real failure would look like.  A fault that raises a raw
  ``OSError``/``RuntimeError`` tests nothing but the harness's own
  sloppiness, and worse, trains recovery paths to catch untyped
  exceptions.  Flagged: ``raise <builtin>`` anywhere under
  ``repro/chaos/`` (the harness holds itself to the same standard it
  enforces — its own errors derive from ``ChaosError``).
* **A statically enumerable site catalog.**  ``inject("literal.name",
  ...)`` calls are the complete inventory of where the system can be
  made to fail; the catalog in ``docs/robustness.md`` and the
  ``--list`` output are trustworthy only if every call site names its
  site as a string literal.  Flagged: any ``inject(...)`` call whose
  first argument is not a string literal.  (The serve doubles' ``SITE =
  register_site("literal", ...)`` constants are fired through their
  private plans — ``plan.fire(SITE, ...)`` is not an ``inject()`` call,
  and the literal still appears at registration.)
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register
from repro.lint.visitor import expr_text

#: Builtin exception types a chaos fault must never raise directly.
_BANNED_RAISES = {
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "BufferError",
    "ConnectionError",
    "EOFError",
    "Exception",
    "FileExistsError",
    "FileNotFoundError",
    "IOError",
    "IndexError",
    "InterruptedError",
    "KeyError",
    "LookupError",
    "NotImplementedError",
    "OSError",
    "PermissionError",
    "RuntimeError",
    "StopIteration",
    "TimeoutError",
    "TypeError",
    "ValueError",
}


@register
class InjectionDiscipline(Rule):
    name = "injection-discipline"
    summary = (
        "chaos code raises typed errors only, and inject() sites are "
        "string literals (the catalog must be statically enumerable)"
    )
    rationale = (
        "A fault raising a raw builtin teaches recovery paths to catch "
        "untyped errors; a computed inject() site name makes the "
        "documented injection-site catalog silently incomplete."
    )
    scope = ("*",)

    def visit(self, node: ast.AST, ctx) -> None:
        if isinstance(node, ast.Raise):
            self._check_raise(node, ctx)
        elif isinstance(node, ast.Call):
            self._check_inject(node, ctx)

    def _check_raise(self, node: ast.Raise, ctx) -> None:
        if ctx.relpath is not None and not ctx.relpath.startswith("repro/chaos/"):
            return
        if node.exc is None:
            return
        exc = node.exc
        name = ""
        if isinstance(exc, ast.Call):
            name = expr_text(exc.func)
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BANNED_RAISES:
            self.emit(
                ctx,
                node,
                f"chaos code raises builtin {name}; injected and harness "
                "failures must be typed — raise from the owning layer's "
                "hierarchy (ArtifactError/PoolError/CrashError) or from "
                "repro.chaos.errors.ChaosError",
            )

    def _check_inject(self, node: ast.Call, ctx) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name != "inject" or not node.args:
            return
        site = node.args[0]
        if isinstance(site, ast.Constant) and isinstance(site.value, str):
            return
        self.emit(
            ctx,
            node,
            f"inject() called with a non-literal site ({expr_text(site)}); "
            "site names must be string literals so the injection-site "
            "catalog is statically enumerable",
        )
