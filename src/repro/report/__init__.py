"""Reporting helpers: regenerate the paper's tables and figure series."""

from repro.report.memory import MemoryReport, memory_report
from repro.report.tables import (
    Table1Row,
    Table2Row,
    Table3Row,
    format_table,
    table1_rows,
    table2_row,
    table3_rows,
)

__all__ = [
    "MemoryReport",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "format_table",
    "memory_report",
    "table1_rows",
    "table2_row",
    "table3_rows",
]
