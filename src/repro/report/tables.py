"""Row builders and text formatting for the paper's tables.

Each ``table*_rows`` helper produces dataclass rows carrying both our
measured values and (where available) the paper's reference values, so
benchmarks and EXPERIMENTS.md can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Sequence

from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.cost import PAPER_TABLE1, CostModel
from repro.report.memory import memory_report
from repro.nn.network import Network


def format_table(rows: Sequence, title: str = "") -> str:
    """Render a sequence of dataclass rows as an aligned text table."""
    if not rows:
        return title
    names = [f.name for f in fields(rows[0])]
    cells = [[_fmt(getattr(r, n)) for n in names] for r in rows]
    widths = [max(len(n), *(len(c[i]) for c in cells)) for i, n in enumerate(names)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(n.ljust(w) for n, w in zip(names, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# -- Table 1: design metrics ---------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    design: str
    area_mm2: float
    power_mw: float
    area_saving_pct: float
    power_saving_pct: float
    paper_area_mm2: float
    paper_power_mw: float


def table1_rows(cost_model: Optional[CostModel] = None) -> list[Table1Row]:
    """Regenerate Table 1: FP32 baseline, MF-DFP, and 2-PU ensemble."""
    model = cost_model or CostModel()
    configs = [
        ("Floating-point(32,32)", "fp32", 1, "fp32"),
        ("Proposed MF-DFP(8,4)", "mfdfp", 1, "mfdfp"),
        ("Ens. MF-DFP(8,4)", "mfdfp", 2, "mfdfp_x2"),
    ]
    rows = []
    for label, precision, pus, key in configs:
        breakdown = model.evaluate(precision, pus)
        area_saving, power_saving = model.savings_vs_baseline(breakdown)
        ref = PAPER_TABLE1[key]
        rows.append(
            Table1Row(
                design=label,
                area_mm2=breakdown.area_mm2,
                power_mw=breakdown.power_mw,
                area_saving_pct=area_saving,
                power_saving_pct=power_saving,
                paper_area_mm2=ref["area_mm2"],
                paper_power_mw=ref["power_mw"],
            )
        )
    return rows


# -- Table 2: accuracy / time / energy -----------------------------------------
@dataclass(frozen=True)
class Table2Row:
    benchmark: str
    design: str
    accuracy_pct: float
    time_us: float
    energy_uj: float
    energy_saving_pct: float


def table2_row(
    benchmark: str,
    design: str,
    accuracy: float,
    accelerator: Accelerator,
    workload,
    baseline_energy_uj: Optional[float] = None,
) -> Table2Row:
    """One Table 2 row: measure time/energy of ``workload`` on ``accelerator``."""
    time_us = accelerator.latency_us(workload)
    energy = accelerator.energy_uj(workload)
    saving = 0.0 if baseline_energy_uj is None else 100.0 * (1 - energy / baseline_energy_uj)
    return Table2Row(
        benchmark=benchmark,
        design=design,
        accuracy_pct=100.0 * accuracy,
        time_us=time_us,
        energy_uj=energy,
        energy_saving_pct=saving,
    )


# -- Table 3: memory -------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    network: str
    parameters: int
    float_mb: float
    mfdfp_mb: float
    ensemble_mb: float
    paper_float_mb: float
    paper_mfdfp_mb: float


#: Table 3 reference values (MB).
PAPER_TABLE3 = {
    "cifar10_full": {"float": 0.3417, "mfdfp": 0.0428},
    "alexnet": {"float": 237.95, "mfdfp": 29.75},
}


def table3_rows(networks: Sequence[Network]) -> list[Table3Row]:
    """Regenerate Table 3 for the given networks."""
    rows = []
    for net in networks:
        report = memory_report(net)
        ref = PAPER_TABLE3.get(net.name, {"float": float("nan"), "mfdfp": float("nan")})
        rows.append(
            Table3Row(
                network=net.name,
                parameters=report.parameters,
                float_mb=report.float_mb,
                mfdfp_mb=report.mfdfp_mb,
                ensemble_mb=report.ensemble_mb,
                paper_float_mb=ref["float"],
                paper_mfdfp_mb=ref["mfdfp"],
            )
        )
    return rows
