"""Parameter-memory accounting (Table 3).

Table 3 counts every network parameter at 32 bits for the float networks
and 4 bits for MF-DFP (the ⟨s, e⟩ encoding); the ensemble doubles the
MF-DFP number.  The ratio is exactly 8x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.network import Network

MB = float(1 << 20)


@dataclass(frozen=True)
class MemoryReport:
    """Parameter storage of one network under the paper's three schemes."""

    network: str
    parameters: int
    float_mb: float
    mfdfp_mb: float
    ensemble_mb: float

    @property
    def compression_ratio(self) -> float:
        """Float-to-MF-DFP storage ratio (8.0 by construction)."""
        return self.float_mb / self.mfdfp_mb


def memory_report(net: Network, ensemble_size: int = 2) -> MemoryReport:
    """Table 3 accounting for ``net``.

    Args:
        net: The network (its parameter count drives everything).
        ensemble_size: Members in the ensemble row (paper: 2).
    """
    n = net.param_count()
    float_mb = n * 32 / 8 / MB
    mfdfp_mb = n * 4 / 8 / MB
    return MemoryReport(
        network=net.name,
        parameters=n,
        float_mb=float_mb,
        mfdfp_mb=mfdfp_mb,
        ensemble_mb=ensemble_size * mfdfp_mb,
    )
