"""Bit-accurate integer primitives of the multiplier-free datapath.

All activations travel as 8-bit DFP codes (integers in ``[-127, 127]``,
value = code * 2^-m).  A weight ⟨s, e⟩ turns the multiply ``x * w`` into
``(s * x) << (7 + e)``: because ``e >= -7``, the shift amount is
non-negative, and every product lands on the common accumulator grid
``2^-(m+7)``.  Products fit 16 bits; the 16-input adder tree widens
16→17→18→19→20 bits so no intermediate value can overflow (the paper:
"we ensure that all intermediate signals have large enough word-width").

Rounding throughout is round-half-to-even, matching numpy's ``rint`` so
the integer datapath and the float simulation agree bit for bit.
"""

from __future__ import annotations

import numpy as np

#: Magnitude bits of an 8-bit sign-magnitude DFP code.
CODE_MAX = 127

#: Bits of the product wire in Figure 2(a).
PRODUCT_BITS = 16

#: Bits of the adder-tree levels in Figure 2(a) (16 inputs -> 4 levels).
TREE_BITS = (17, 18, 19, 20)


class DatapathOverflowError(RuntimeError):
    """An intermediate signal exceeded its declared wire width."""


def check_width(values: np.ndarray, bits: int, what: str) -> None:
    """Raise :class:`DatapathOverflowError` if any value needs > ``bits``.

    Widths are for two's-complement signed wires: representable range is
    ``[-2^(bits-1), 2^(bits-1) - 1]``.
    """
    values = np.asarray(values)
    if values.size == 0:
        return
    lo, hi = int(values.min()), int(values.max())
    bound = 1 << (bits - 1)
    if lo < -bound or hi > bound - 1:
        raise DatapathOverflowError(
            f"{what}: value range [{lo}, {hi}] exceeds {bits}-bit signed wire"
        )


def shift_product(x_codes: np.ndarray, w_sign: np.ndarray, w_exp: np.ndarray) -> np.ndarray:
    """The multiplier-free product: ``(s * x) << (7 + e)``.

    Args:
        x_codes: Input activation codes (int, ``|x| <= 127``).
        w_sign: Weight signs (±1).
        w_exp: Weight exponents (``-7 <= e <= 0``).

    Returns:
        Product integers on the ``2^-(m+7)`` grid; guaranteed to fit the
        16-bit product wire.
    """
    x_codes = np.asarray(x_codes, dtype=np.int64)
    w_exp = np.asarray(w_exp, dtype=np.int64)
    if np.any(np.abs(x_codes) > CODE_MAX):
        raise ValueError("input codes exceed 8-bit sign-magnitude range")
    if np.any(w_exp < -7) or np.any(w_exp > 0):
        raise ValueError("weight exponents must lie in [-7, 0]")
    products = (np.asarray(w_sign, dtype=np.int64) * x_codes) << (7 + w_exp)
    check_width(products, PRODUCT_BITS, "shift product")
    return products


def adder_tree(products: np.ndarray, check_widths: bool = True) -> np.ndarray:
    """Sum 16 products pairwise through the widening tree of Figure 2(a).

    Args:
        products: Array whose *last* axis has length 16 (one per synapse).
        check_widths: Verify each tree level against its declared width.

    Returns:
        Per-neuron partial sums (last axis reduced), 20-bit safe.
    """
    level = np.asarray(products, dtype=np.int64)
    if level.shape[-1] != 16:
        raise ValueError(f"adder tree expects 16 inputs, got {level.shape[-1]}")
    if check_widths:
        check_width(level, PRODUCT_BITS, "adder tree input")
    for bits in TREE_BITS:
        level = level[..., 0::2] + level[..., 1::2]
        if check_widths:
            check_width(level, bits, f"adder tree level ({bits}-bit)")
    return level[..., 0]


def saturate(values: np.ndarray, max_code: int = CODE_MAX) -> np.ndarray:
    """Clamp to the symmetric code range ``[-max_code, max_code]``."""
    return np.clip(np.asarray(values, dtype=np.int64), -max_code, max_code)


def rshift_round_half_even(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-to-even; left shift if < 0.

    Equivalent to ``rint(v / 2**shift)`` computed purely with integers.
    """
    v = np.asarray(values, dtype=np.int64)
    if shift <= 0:
        return v << (-shift)
    q = v >> shift
    r = v - (q << shift)
    half = np.int64(1) << (shift - 1)
    round_up = (r > half) | ((r == half) & ((q & 1) == 1))
    return q + round_up.astype(np.int64)


def div_round_half_even(num: np.ndarray, den) -> np.ndarray:
    """``rint(num / den)`` in exact integer arithmetic (``den > 0``).

    Models the constant-coefficient shift-add divider used for average
    pooling (e.g. the 1/9 of a 3x3 window), computed to full precision.
    ``den`` may be a scalar or an array broadcastable against ``num``.
    """
    den = np.asarray(den, dtype=np.int64)
    if np.any(den <= 0):
        raise ValueError("denominator must be positive")
    num = np.asarray(num, dtype=np.int64)
    q = np.floor_divide(num, den)
    r = num - q * den
    twice = 2 * r
    round_up = (twice > den) | ((twice == den) & ((q & 1) == 1))
    return q + round_up.astype(np.int64)


def requantize_codes(codes: np.ndarray, in_frac: int, out_frac: int, max_code: int = CODE_MAX) -> np.ndarray:
    """Move codes from grid ``2^-in_frac`` to ``2^-out_frac`` (round+sat).

    This is the "Accumulator & Routing" radix realignment: a shift by
    ``in_frac - out_frac`` followed by saturation to 8 bits.
    """
    shifted = rshift_round_half_even(codes, in_frac - out_frac)
    return saturate(shifted, max_code)


def accumulator_route(
    acc: np.ndarray,
    acc_frac: int,
    out_frac: int,
    activation: str = "none",
    max_code: int = CODE_MAX,
) -> np.ndarray:
    """The full Accumulator & Routing stage of Figure 2(a).

    Applies the fused non-linearity on the wide accumulator value, then
    shifts from the accumulator grid (fraction ``acc_frac = m + 7``) to
    the output grid ``n = out_frac`` and saturates to 8 bits.  ``m`` and
    ``n`` are the radix control signals of the paper.
    """
    acc = np.asarray(acc, dtype=np.int64)
    if activation == "relu":
        acc = np.maximum(acc, 0)
    elif activation != "none":
        raise ValueError(f"unsupported fused activation {activation!r}")
    return requantize_codes(acc, acc_frac, out_frac, max_code)
