"""Serialization of deployed MF-DFP networks.

A :class:`~repro.core.mfdfp.DeployedMFDFP` is the artifact one would
flash into the accelerator's weight memory: 4-bit weight codes, integer
biases, and per-layer radix indices.  This module persists it as a single
``.npz`` file with a JSON header, so a deployment produced on one machine
can be executed (bit-identically) on another.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.mfdfp import DeployedLayer, DeployedMFDFP

FORMAT_VERSION = 1

_OP_FIELDS = (
    "kind",
    "name",
    "in_frac",
    "out_frac",
    "activation",
    "in_channels",
    "out_channels",
    "kernel_size",
    "stride",
    "pad",
    "ceil_mode",
    "in_features",
    "out_features",
)


def save_deployed(deployed: DeployedMFDFP, path) -> None:
    """Write a deployed network to ``path`` (.npz with a JSON header)."""
    header = {
        "format_version": FORMAT_VERSION,
        "name": deployed.name,
        "input_shape": list(deployed.input_shape),
        "input_frac": deployed.input_frac,
        "bits": deployed.bits,
        "ops": [
            {field: getattr(op, field) for field in _OP_FIELDS} for op in deployed.ops
        ],
    }
    arrays = {"__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)}
    for i, op in enumerate(deployed.ops):
        if op.weight_codes is not None:
            arrays[f"op{i}.weight_codes"] = op.weight_codes
            arrays[f"op{i}.weight_shape"] = np.array(op.weight_codes.shape, dtype=np.int64)
        if op.bias_int is not None:
            arrays[f"op{i}.bias_int"] = op.bias_int
    np.savez(path, **arrays)


def load_deployed(path) -> DeployedMFDFP:
    """Read a deployed network written by :func:`save_deployed`.

    Raises ``ValueError`` on missing header or unsupported version.
    """
    with np.load(path) as data:
        if "__header__" not in data.files:
            raise ValueError(f"{path} is not a deployed MF-DFP file (missing header)")
        header = json.loads(bytes(data["__header__"]).decode())
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported format version {version!r}")
        deployed = DeployedMFDFP(
            name=header["name"],
            input_shape=tuple(header["input_shape"]),
            input_frac=header["input_frac"],
            bits=header["bits"],
        )
        for i, op_meta in enumerate(header["ops"]):
            op = DeployedLayer(**op_meta)
            key = f"op{i}.weight_codes"
            if key in data.files:
                shape = tuple(data[f"op{i}.weight_shape"])
                op.weight_codes = data[key].reshape(shape)
            bkey = f"op{i}.bias_int"
            if bkey in data.files:
                op.bias_int = data[bkey]
            deployed.ops.append(op)
    return deployed
