"""Serialization of deployed MF-DFP networks (compat shim).

The original home of deployed-artifact persistence; the implementation
now lives in :mod:`repro.io.artifacts`, which generalized this module's
``.npz``+JSON layout into the versioned artifact container used by
checkpoints and the :class:`~repro.io.store.ArtifactStore`.  This shim
keeps the historical entry points importable:

* :func:`save_deployed` writes the current container format
  (``FORMAT_VERSION`` 2, with schema metadata and an embedded
  :func:`~repro.core.engine.engine_fingerprint`).
* :func:`load_deployed` reads both the current format and every legacy
  version-1 file ever written by this module, with full field/dtype
  validation up front — malformed input raises the typed
  :class:`~repro.io.artifacts.ArtifactError` hierarchy (a ``ValueError``
  subclass, as this module always raised) instead of failing deep
  inside reconstruction.
"""

from __future__ import annotations

from repro.io.artifacts import (
    FORMAT_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactSchemaError,
    ArtifactVersionError,
    load_deployed,
    save_deployed,
)

__all__ = [
    "FORMAT_VERSION",
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactSchemaError",
    "ArtifactVersionError",
    "load_deployed",
    "save_deployed",
]
