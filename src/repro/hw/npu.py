"""Processing units and the NPU of Figure 2(b).

A *processing unit* (PU) implements 16 neurons with 16 synapses each —
256 shift-product lanes fed by the input and weight buffers every cycle.
The *neural processing unit* (NPU) contains one PU for the single MF-DFP
configuration and two for the ensemble configuration; each PU evaluates
one network of the ensemble, so M networks run in the time of one.
"""

from __future__ import annotations

import numpy as np

from repro.hw.neuron import Neuron


class ProcessingUnit:
    """16 neurons × 16 synapses, computed bit-accurately.

    The per-cycle interface mirrors the hardware: a shared 16-wide input
    vector is broadcast to all neurons, each neuron applying its own 16
    weights (weight-stationary tile).
    """

    NEURONS = 16
    SYNAPSES = 16

    def __init__(self, check_widths: bool = True):
        self.neurons = [Neuron(self.SYNAPSES, check_widths) for _ in range(self.NEURONS)]

    def reset(self) -> None:
        for neuron in self.neurons:
            neuron.reset()

    def load_bias(self, bias_ints: np.ndarray) -> None:
        """Preload all 16 accumulators (one bias per neuron)."""
        bias_ints = np.asarray(bias_ints, dtype=np.int64)
        if bias_ints.shape != (self.NEURONS,):
            raise ValueError(f"expected {self.NEURONS} biases, got {bias_ints.shape}")
        for neuron, b in zip(self.neurons, bias_ints):
            neuron.load_bias(int(b))

    def cycle(self, x_codes: np.ndarray, w_sign: np.ndarray, w_exp: np.ndarray) -> np.ndarray:
        """One cycle over all 16 neurons.

        Args:
            x_codes: Shared input codes, shape ``(16,)``.
            w_sign, w_exp: Per-neuron weights, shape ``(16, 16)``.

        Returns:
            The 16 accumulator values after this cycle.
        """
        w_sign = np.asarray(w_sign)
        w_exp = np.asarray(w_exp)
        if w_sign.shape != (self.NEURONS, self.SYNAPSES):
            raise ValueError(f"expected weights (16, 16), got {w_sign.shape}")
        return np.array(
            [
                neuron.accumulate(x_codes, w_sign[i], w_exp[i])
                for i, neuron in enumerate(self.neurons)
            ],
            dtype=np.int64,
        )

    def emit(self, m: int, n: int, activation: str = "none") -> np.ndarray:
        """Finish all 16 outputs through Accumulator & Routing."""
        return np.array([neuron.emit(m, n, activation) for neuron in self.neurons], dtype=np.int64)

    def compute_tile(
        self,
        x_codes: np.ndarray,
        w_sign: np.ndarray,
        w_exp: np.ndarray,
        bias_ints: np.ndarray,
        m: int,
        n: int,
        activation: str = "none",
    ) -> np.ndarray:
        """Full tile: 16 outputs sharing one input vector of any length.

        Args:
            x_codes: Input codes, shape ``(K,)`` (chunked into 16s).
            w_sign, w_exp: Weights, shape ``(16, K)``.
            bias_ints: Accumulator-grid biases, shape ``(16,)``.

        Returns:
            The 16 output codes.
        """
        x_codes = np.asarray(x_codes, dtype=np.int64)
        w_sign = np.asarray(w_sign, dtype=np.int64)
        w_exp = np.asarray(w_exp, dtype=np.int64)
        k = x_codes.size
        if w_sign.shape != (self.NEURONS, k):
            raise ValueError(f"weights must be (16, {k}), got {w_sign.shape}")
        self.reset()
        self.load_bias(bias_ints)
        for start in range(0, k, self.SYNAPSES):
            stop = min(start + self.SYNAPSES, k)
            xs = np.zeros(self.SYNAPSES, dtype=np.int64)
            ss = np.ones((self.NEURONS, self.SYNAPSES), dtype=np.int64)
            es = np.zeros((self.NEURONS, self.SYNAPSES), dtype=np.int64)
            xs[: stop - start] = x_codes[start:stop]
            ss[:, : stop - start] = w_sign[:, start:stop]
            es[:, : stop - start] = w_exp[:, start:stop]
            self.cycle(xs, ss, es)
        return self.emit(m, n, activation)


class NeuralProcessingUnit:
    """The NPU: one PU per ensemble member (Figure 2(b))."""

    def __init__(self, num_pus: int = 1, check_widths: bool = True):
        if num_pus < 1:
            raise ValueError("NPU needs at least one processing unit")
        self.processing_units = [ProcessingUnit(check_widths) for _ in range(num_pus)]

    @property
    def num_pus(self) -> int:
        return len(self.processing_units)
