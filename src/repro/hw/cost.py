"""65 nm area/power component model (reproduces Table 1).

The paper synthesizes its designs with Synopsys Design Compiler on a
65 nm standard-cell library at 250 MHz.  Offline we model each design as
a bill of gate-equivalents (GE, 1 GE = one NAND2) plus SRAM bits:

* component GE counts come from textbook gate-level estimates (an FP32
  multiplier ~10k GE, an FP32 adder ~4k GE, an n-bit integer adder ~8n GE,
  a barrel shifter ~2.5 GE per bit per stage, a flip-flop ~4.5 GE);
* area is ``GE x um2_per_ge + sram_bits x um2_per_sram_bit``, power is
  activity-weighted GE plus SRAM streaming power;
* a single pair of calibration factors maps raw model output to silicon,
  chosen so the *FP32 baseline* reproduces the paper's synthesis anchors
  (16.52 mm², 1361.61 mW) exactly.

The MF-DFP and ensemble numbers are then genuine model predictions: the
paper's reported savings (87.97% area / 89.79% power for one PU, 76.0% /
80.15% for two) fall out of the gate-count ratios, not out of fitting.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, field

from repro.hw.memory import BufferConfig

#: Synthesis anchors from Table 1 (the FP32 baseline, one processing unit).
FP32_BASELINE_AREA_MM2 = 16.52
FP32_BASELINE_POWER_MW = 1361.61


class CostModelError(ValueError):
    """A cost-model input describes a physically meaningless design.

    Raised instead of silently pricing degenerate hardware (a 0-bit adder
    has no gates, so an explorer sweeping widths would rank it as free).
    """


def _require_positive_int(name: str, value) -> int:
    """Validate a structural parameter (bit width, stage count, PU count).

    Rejects booleans (``True`` is an ``int`` but never a width),
    non-integral values, and anything below 1 with a typed
    :class:`CostModelError`.  NumPy integer scalars are accepted —
    exploration grids hand those in.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise CostModelError(f"{name} must be a positive integer, got {value!r}")
    if value < 1:
        raise CostModelError(f"{name} must be >= 1, got {value!r}")
    return int(value)

#: Table 1 reference values for comparison in reports.
PAPER_TABLE1 = {
    "fp32": {"area_mm2": 16.52, "power_mw": 1361.61},
    "mfdfp": {"area_mm2": 1.99, "power_mw": 138.96},
    "mfdfp_x2": {"area_mm2": 3.96, "power_mw": 270.27},
}


@dataclass(frozen=True)
class TechnologyParams:
    """65 nm, typical corner, 250 MHz.

    ``activity`` maps component classes to switching-activity weights used
    by the power model (multipliers toggle far more than shifters).
    """

    um2_per_ge: float = 1.44
    um2_per_sram_bit: float = 0.525
    uw_per_weighted_ge: float = 0.30
    uw_per_sram_bit: float = 0.10
    activity: dict = field(
        default_factory=lambda: {
            "fp_mult": 0.50,
            "fp_add": 0.40,
            "int_mult": 0.35,
            "int_add": 0.25,
            "shift": 0.15,
            "register": 0.30,
            "control": 0.30,
            "nl": 0.20,
        }
    )


#: Named technology corners for design-space exploration.  ``"65nm"`` is
#: the paper's synthesis node; the scaled nodes apply first-order logic
#: shrink with the (realistic) caveat that SRAM bit cells scale *worse*
#: than standard-cell logic, which shifts the buffer/datapath balance and
#: therefore the relative MF-DFP savings at each node.
TECHNOLOGY_PRESETS: dict[str, TechnologyParams] = {
    "65nm": TechnologyParams(),
    "45nm": TechnologyParams(
        um2_per_ge=0.69,
        um2_per_sram_bit=0.30,
        uw_per_weighted_ge=0.21,
        uw_per_sram_bit=0.072,
    ),
    "28nm": TechnologyParams(
        um2_per_ge=0.27,
        um2_per_sram_bit=0.16,
        uw_per_weighted_ge=0.12,
        uw_per_sram_bit=0.048,
    ),
}


def technology(name: str) -> TechnologyParams:
    """Look up a :data:`TECHNOLOGY_PRESETS` corner by name.

    Raises :class:`CostModelError` for unknown nodes (listing the valid
    ones) so exploration specs fail loudly instead of silently defaulting.
    """
    try:
        return TECHNOLOGY_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_PRESETS))
        raise CostModelError(f"unknown technology {name!r} (known: {known})") from None


@dataclass(frozen=True)
class NPUDesign:
    """A parameterized MF-DFP NPU configuration for design-space exploration.

    ``activation_bits`` sets the dynamic-fixed-point activation width: shift
    products are ``activation_bits + 8`` wide (a 4-bit ⟨s, e⟩ weight shifts
    by at most 8), and the widening adder tree / pipeline registers scale
    with them.  ``activation_bits=8`` reproduces the paper's Figure 2(a)
    datapath — and the legacy ``CostModel.evaluate("mfdfp", ...)`` bill —
    exactly.  ``num_pus=2`` is the ensemble design of Table 1.
    """

    activation_bits: int = 8
    num_pus: int = 1

    def __post_init__(self):
        bits = _require_positive_int("activation_bits", self.activation_bits)
        if bits > 16:
            raise CostModelError(
                f"activation_bits must be <= 16 (datapath model limit), got {bits}"
            )
        object.__setattr__(self, "activation_bits", bits)
        object.__setattr__(self, "num_pus", _require_positive_int("num_pus", self.num_pus))


# -- component gate counts ---------------------------------------------------
def fp32_multiplier_ge() -> float:
    """IEEE-754 single-precision multiplier (24x24 mantissa array)."""
    return 10_000.0


def fp32_adder_ge() -> float:
    """IEEE-754 single-precision adder (align/add/normalize/round)."""
    return 4_000.0


def int_adder_ge(bits: int) -> float:
    """n-bit carry-lookahead integer adder (~8 GE per bit).

    Raises :class:`CostModelError` for non-positive or non-integral widths.
    """
    return 8.0 * _require_positive_int("bits", bits)


def int_multiplier_ge(bits: int) -> float:
    """n x n integer array multiplier (~6.6 GE per partial-product cell).

    Raises :class:`CostModelError` for non-positive or non-integral widths.
    """
    return 6.6 * _require_positive_int("bits", bits) ** 2


def barrel_shifter_ge(width: int, stages: int) -> float:
    """Mux-based barrel shifter: width x stages 2:1 muxes (~2.5 GE each).

    Raises :class:`CostModelError` for non-positive or non-integral
    width/stage counts.
    """
    return 2.5 * _require_positive_int("width", width) * _require_positive_int("stages", stages)


def register_ge(bits: int) -> float:
    """Flip-flop bank (~4.5 GE per bit).

    Raises :class:`CostModelError` for non-positive or non-integral widths.
    """
    return 4.5 * _require_positive_int("bits", bits)


@dataclass
class CostItem:
    """One line of the bill of materials."""

    name: str
    ge: float = 0.0
    sram_bits: int = 0
    activity_class: str = "control"


@dataclass
class CostBreakdown:
    """Raw (uncalibrated) and silicon (calibrated) cost of a design."""

    items: list[CostItem]
    area_mm2: float
    power_mw: float
    raw_area_um2: float
    raw_power_uw: float

    def item_area_fraction(self) -> dict[str, float]:
        """Per-item share of raw area (sums to 1)."""
        tech = TechnologyParams()
        areas = {
            i.name: i.ge * tech.um2_per_ge + i.sram_bits * tech.um2_per_sram_bit
            for i in self.items
        }
        total = sum(areas.values())
        return {k: v / total for k, v in areas.items()} if total else {}


class CostModel:
    """Area/power estimation for any accelerator configuration.

    Args:
        tech: Technology parameters (defaults: 65 nm / 250 MHz).

    Calibration factors are derived once from the FP32 single-PU baseline
    (see module docstring) and applied to every design.
    """

    NEURONS = 16
    SYNAPSES = 16
    PIPELINE_STAGES = 2

    def __init__(self, tech: TechnologyParams | None = None):
        self.tech = tech or TechnologyParams()
        raw_area, raw_power = self._raw_totals(self._bill("fp32", 1, self._fp32_buffers()))
        self.area_calibration = FP32_BASELINE_AREA_MM2 * 1e6 / raw_area
        self.power_calibration = FP32_BASELINE_POWER_MW * 1e3 / raw_power

    # -- bills of material ---------------------------------------------------
    @staticmethod
    def _fp32_buffers() -> BufferConfig:
        return BufferConfig().scaled_to_precision(activation_bits=32, weight_bits=32)

    def _pu_items(self, precision: str) -> list[CostItem]:
        """One processing unit: 16 neurons x 16 synapses."""
        lanes = self.NEURONS * self.SYNAPSES
        if precision == "fp32":
            return [
                CostItem("multipliers", lanes * fp32_multiplier_ge(), 0, "fp_mult"),
                CostItem(
                    "adder_tree", self.NEURONS * (self.SYNAPSES - 1) * fp32_adder_ge(), 0, "fp_add"
                ),
                CostItem(
                    "accumulators",
                    self.NEURONS * (fp32_adder_ge() + register_ge(32)),
                    0,
                    "fp_add",
                ),
                CostItem(
                    "pipeline_regs",
                    self.PIPELINE_STAGES * lanes * register_ge(32),
                    0,
                    "register",
                ),
                CostItem("nonlinearity", self.NEURONS * 200.0, 0, "nl"),
            ]
        if precision == "fixed8":
            # 8-bit dynamic fixed-point datapath *with* multipliers — the
            # representation of [9, 13] the paper improves on.  Products
            # are 16-bit, so the tree matches the MF-DFP widths.
            tree_bits = 8 * 17 + 4 * 18 + 2 * 19 + 1 * 20
            return [
                CostItem("multipliers", lanes * int_multiplier_ge(8), 0, "int_mult"),
                CostItem("adder_tree", self.NEURONS * int_adder_ge(tree_bits), 0, "int_add"),
                CostItem(
                    "accumulators",
                    self.NEURONS * (int_adder_ge(32) + register_ge(32)),
                    0,
                    "int_add",
                ),
                CostItem("routing", self.NEURONS * barrel_shifter_ge(32, 6), 0, "shift"),
                CostItem(
                    "pipeline_regs",
                    self.PIPELINE_STAGES * lanes * register_ge(16),
                    0,
                    "register",
                ),
                CostItem("nonlinearity", self.NEURONS * 200.0, 0, "nl"),
            ]
        if precision == "mfdfp":
            return self._mfdfp_pu_items(8)
        raise ValueError(f"unknown precision {precision!r}")

    def _mfdfp_pu_items(self, activation_bits: int) -> list[CostItem]:
        """MF-DFP processing unit at a parameterized activation width.

        Generalizes the widening adder tree of Figure 2(a): shift products
        are ``p = activation_bits + 8`` bits wide (the 4-bit ⟨s, e⟩ code
        shifts by at most 8), and each of the ``log2(SYNAPSES)`` tree
        levels adds one carry bit, so level ``i`` holds ``SYNAPSES >> i``
        adders of width ``p + i``.  At ``activation_bits=8`` this is
        exactly the paper's 8x17b + 4x18b + 2x19b + 1x20b tree, and the
        resulting bill is bit-identical to the legacy ``"mfdfp"`` one.
        """
        bits = _require_positive_int("activation_bits", activation_bits)
        lanes = self.NEURONS * self.SYNAPSES
        product = bits + 8
        levels = int(math.log2(self.SYNAPSES))
        tree_bits = sum((self.SYNAPSES >> level) * (product + level) for level in range(1, levels + 1))
        return [
            CostItem("shifters", lanes * barrel_shifter_ge(product, 3), 0, "shift"),
            CostItem("adder_tree", self.NEURONS * int_adder_ge(tree_bits), 0, "int_add"),
            CostItem(
                "accumulators",
                self.NEURONS * (int_adder_ge(32) + register_ge(32)),
                0,
                "int_add",
            ),
            CostItem(
                "routing", self.NEURONS * barrel_shifter_ge(32, 6), 0, "shift"
            ),
            CostItem(
                "pipeline_regs",
                self.PIPELINE_STAGES * lanes * register_ge(product),
                0,
                "register",
            ),
            CostItem("nonlinearity", self.NEURONS * 200.0, 0, "nl"),
        ]

    def _bill(self, precision: str, num_pus: int, buffers: BufferConfig) -> list[CostItem]:
        """Full accelerator: PUs + per-PU memory/DMA/control + shared glue."""
        return self._assemble(self._pu_items(precision), num_pus, buffers)

    def _assemble(
        self, pu_items: list[CostItem], num_pus: int, buffers: BufferConfig
    ) -> list[CostItem]:
        items: list[CostItem] = []
        for pu in range(num_pus):
            for item in pu_items:
                items.append(
                    CostItem(f"pu{pu}.{item.name}", item.ge, item.sram_bits, item.activity_class)
                )
            items.append(CostItem(f"pu{pu}.buffers", 0.0, buffers.total_bits, "control"))
            items.append(CostItem(f"pu{pu}.dma", 3 * 40_000.0, 0, "control"))
            items.append(CostItem(f"pu{pu}.control", 150_000.0, 0, "control"))
        items.append(CostItem("shared.interface", 20_000.0, 0, "control"))
        return items

    # -- totals ----------------------------------------------------------------
    def _raw_totals(self, items: list[CostItem]) -> tuple[float, float]:
        tech = self.tech
        area_um2 = sum(
            i.ge * tech.um2_per_ge + i.sram_bits * tech.um2_per_sram_bit for i in items
        )
        power_uw = sum(
            i.ge * tech.activity[i.activity_class] * tech.uw_per_weighted_ge
            + i.sram_bits * tech.uw_per_sram_bit
            for i in items
        )
        return area_um2, power_uw

    def evaluate(
        self, precision: str, num_pus: int = 1, buffers: BufferConfig | None = None
    ) -> CostBreakdown:
        """Area (mm²) and power (mW) of a configuration.

        Args:
            precision: ``"fp32"``, ``"mfdfp"``, or ``"fixed8"`` (an 8-bit
                fixed-point datapath *with* multipliers — the [9, 13]
                comparison point the paper's shift datapath improves on).
            num_pus: Processing units (2 for the ensemble design).
            buffers: Buffer geometry; defaults to the paper's configuration
                at the precision's word widths.
        """
        num_pus = _require_positive_int("num_pus", num_pus)
        if buffers is None:
            if precision == "fp32":
                buffers = self._fp32_buffers()
            elif precision == "fixed8":
                buffers = BufferConfig().scaled_to_precision(activation_bits=8, weight_bits=8)
            else:
                buffers = BufferConfig()
        items = self._bill(precision, num_pus, buffers)
        raw_area, raw_power = self._raw_totals(items)
        return CostBreakdown(
            items=items,
            area_mm2=raw_area * self.area_calibration / 1e6,
            power_mw=raw_power * self.power_calibration / 1e3,
            raw_area_um2=raw_area,
            raw_power_uw=raw_power,
        )

    def evaluate_design(
        self, design: NPUDesign, buffers: BufferConfig | None = None
    ) -> CostBreakdown:
        """Area (mm²) and power (mW) of a parameterized :class:`NPUDesign`.

        Buffers default to the paper's geometry at the design's activation
        width with 4-bit weight codes.  ``NPUDesign(activation_bits=8,
        num_pus=n)`` is bit-identical to ``evaluate("mfdfp", n)``.
        """
        if buffers is None:
            buffers = BufferConfig().scaled_to_precision(
                activation_bits=design.activation_bits, weight_bits=4
            )
        items = self._assemble(
            self._mfdfp_pu_items(design.activation_bits), design.num_pus, buffers
        )
        raw_area, raw_power = self._raw_totals(items)
        return CostBreakdown(
            items=items,
            area_mm2=raw_area * self.area_calibration / 1e6,
            power_mw=raw_power * self.power_calibration / 1e3,
            raw_area_um2=raw_area,
            raw_power_uw=raw_power,
        )

    def savings_vs_baseline(self, breakdown: CostBreakdown) -> tuple[float, float]:
        """(area saving %, power saving %) versus the FP32 baseline."""
        area = 100.0 * (1.0 - breakdown.area_mm2 / FP32_BASELINE_AREA_MM2)
        power = 100.0 * (1.0 - breakdown.power_mw / FP32_BASELINE_POWER_MW)
        return area, power
