"""65 nm area/power component model (reproduces Table 1).

The paper synthesizes its designs with Synopsys Design Compiler on a
65 nm standard-cell library at 250 MHz.  Offline we model each design as
a bill of gate-equivalents (GE, 1 GE = one NAND2) plus SRAM bits:

* component GE counts come from textbook gate-level estimates (an FP32
  multiplier ~10k GE, an FP32 adder ~4k GE, an n-bit integer adder ~8n GE,
  a barrel shifter ~2.5 GE per bit per stage, a flip-flop ~4.5 GE);
* area is ``GE x um2_per_ge + sram_bits x um2_per_sram_bit``, power is
  activity-weighted GE plus SRAM streaming power;
* a single pair of calibration factors maps raw model output to silicon,
  chosen so the *FP32 baseline* reproduces the paper's synthesis anchors
  (16.52 mm², 1361.61 mW) exactly.

The MF-DFP and ensemble numbers are then genuine model predictions: the
paper's reported savings (87.97% area / 89.79% power for one PU, 76.0% /
80.15% for two) fall out of the gate-count ratios, not out of fitting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.memory import BufferConfig

#: Synthesis anchors from Table 1 (the FP32 baseline, one processing unit).
FP32_BASELINE_AREA_MM2 = 16.52
FP32_BASELINE_POWER_MW = 1361.61

#: Table 1 reference values for comparison in reports.
PAPER_TABLE1 = {
    "fp32": {"area_mm2": 16.52, "power_mw": 1361.61},
    "mfdfp": {"area_mm2": 1.99, "power_mw": 138.96},
    "mfdfp_x2": {"area_mm2": 3.96, "power_mw": 270.27},
}


@dataclass(frozen=True)
class TechnologyParams:
    """65 nm, typical corner, 250 MHz.

    ``activity`` maps component classes to switching-activity weights used
    by the power model (multipliers toggle far more than shifters).
    """

    um2_per_ge: float = 1.44
    um2_per_sram_bit: float = 0.525
    uw_per_weighted_ge: float = 0.30
    uw_per_sram_bit: float = 0.10
    activity: dict = field(
        default_factory=lambda: {
            "fp_mult": 0.50,
            "fp_add": 0.40,
            "int_mult": 0.35,
            "int_add": 0.25,
            "shift": 0.15,
            "register": 0.30,
            "control": 0.30,
            "nl": 0.20,
        }
    )


# -- component gate counts ---------------------------------------------------
def fp32_multiplier_ge() -> float:
    """IEEE-754 single-precision multiplier (24x24 mantissa array)."""
    return 10_000.0


def fp32_adder_ge() -> float:
    """IEEE-754 single-precision adder (align/add/normalize/round)."""
    return 4_000.0


def int_adder_ge(bits: int) -> float:
    """n-bit carry-lookahead integer adder (~8 GE per bit)."""
    return 8.0 * bits


def int_multiplier_ge(bits: int) -> float:
    """n x n integer array multiplier (~6.6 GE per partial-product cell)."""
    return 6.6 * bits * bits


def barrel_shifter_ge(width: int, stages: int) -> float:
    """Mux-based barrel shifter: width x stages 2:1 muxes (~2.5 GE each)."""
    return 2.5 * width * stages


def register_ge(bits: int) -> float:
    """Flip-flop bank (~4.5 GE per bit)."""
    return 4.5 * bits


@dataclass
class CostItem:
    """One line of the bill of materials."""

    name: str
    ge: float = 0.0
    sram_bits: int = 0
    activity_class: str = "control"


@dataclass
class CostBreakdown:
    """Raw (uncalibrated) and silicon (calibrated) cost of a design."""

    items: list[CostItem]
    area_mm2: float
    power_mw: float
    raw_area_um2: float
    raw_power_uw: float

    def item_area_fraction(self) -> dict[str, float]:
        """Per-item share of raw area (sums to 1)."""
        tech = TechnologyParams()
        areas = {
            i.name: i.ge * tech.um2_per_ge + i.sram_bits * tech.um2_per_sram_bit
            for i in self.items
        }
        total = sum(areas.values())
        return {k: v / total for k, v in areas.items()} if total else {}


class CostModel:
    """Area/power estimation for any accelerator configuration.

    Args:
        tech: Technology parameters (defaults: 65 nm / 250 MHz).

    Calibration factors are derived once from the FP32 single-PU baseline
    (see module docstring) and applied to every design.
    """

    NEURONS = 16
    SYNAPSES = 16
    PIPELINE_STAGES = 2

    def __init__(self, tech: TechnologyParams | None = None):
        self.tech = tech or TechnologyParams()
        raw_area, raw_power = self._raw_totals(self._bill("fp32", 1, self._fp32_buffers()))
        self.area_calibration = FP32_BASELINE_AREA_MM2 * 1e6 / raw_area
        self.power_calibration = FP32_BASELINE_POWER_MW * 1e3 / raw_power

    # -- bills of material ---------------------------------------------------
    @staticmethod
    def _fp32_buffers() -> BufferConfig:
        return BufferConfig().scaled_to_precision(activation_bits=32, weight_bits=32)

    def _pu_items(self, precision: str) -> list[CostItem]:
        """One processing unit: 16 neurons x 16 synapses."""
        lanes = self.NEURONS * self.SYNAPSES
        if precision == "fp32":
            return [
                CostItem("multipliers", lanes * fp32_multiplier_ge(), 0, "fp_mult"),
                CostItem(
                    "adder_tree", self.NEURONS * (self.SYNAPSES - 1) * fp32_adder_ge(), 0, "fp_add"
                ),
                CostItem(
                    "accumulators",
                    self.NEURONS * (fp32_adder_ge() + register_ge(32)),
                    0,
                    "fp_add",
                ),
                CostItem(
                    "pipeline_regs",
                    self.PIPELINE_STAGES * lanes * register_ge(32),
                    0,
                    "register",
                ),
                CostItem("nonlinearity", self.NEURONS * 200.0, 0, "nl"),
            ]
        if precision == "fixed8":
            # 8-bit dynamic fixed-point datapath *with* multipliers — the
            # representation of [9, 13] the paper improves on.  Products
            # are 16-bit, so the tree matches the MF-DFP widths.
            tree_bits = 8 * 17 + 4 * 18 + 2 * 19 + 1 * 20
            return [
                CostItem("multipliers", lanes * int_multiplier_ge(8), 0, "int_mult"),
                CostItem("adder_tree", self.NEURONS * int_adder_ge(tree_bits), 0, "int_add"),
                CostItem(
                    "accumulators",
                    self.NEURONS * (int_adder_ge(32) + register_ge(32)),
                    0,
                    "int_add",
                ),
                CostItem("routing", self.NEURONS * barrel_shifter_ge(32, 6), 0, "shift"),
                CostItem(
                    "pipeline_regs",
                    self.PIPELINE_STAGES * lanes * register_ge(16),
                    0,
                    "register",
                ),
                CostItem("nonlinearity", self.NEURONS * 200.0, 0, "nl"),
            ]
        if precision == "mfdfp":
            # Widening adder tree of Figure 2(a): 8x17b + 4x18b + 2x19b + 1x20b.
            tree_bits = 8 * 17 + 4 * 18 + 2 * 19 + 1 * 20
            return [
                CostItem("shifters", lanes * barrel_shifter_ge(16, 3), 0, "shift"),
                CostItem("adder_tree", self.NEURONS * int_adder_ge(tree_bits), 0, "int_add"),
                CostItem(
                    "accumulators",
                    self.NEURONS * (int_adder_ge(32) + register_ge(32)),
                    0,
                    "int_add",
                ),
                CostItem(
                    "routing", self.NEURONS * barrel_shifter_ge(32, 6), 0, "shift"
                ),
                CostItem(
                    "pipeline_regs",
                    self.PIPELINE_STAGES * lanes * register_ge(16),
                    0,
                    "register",
                ),
                CostItem("nonlinearity", self.NEURONS * 200.0, 0, "nl"),
            ]
        raise ValueError(f"unknown precision {precision!r}")

    def _bill(self, precision: str, num_pus: int, buffers: BufferConfig) -> list[CostItem]:
        """Full accelerator: PUs + per-PU memory/DMA/control + shared glue."""
        items: list[CostItem] = []
        for pu in range(num_pus):
            for item in self._pu_items(precision):
                items.append(
                    CostItem(f"pu{pu}.{item.name}", item.ge, item.sram_bits, item.activity_class)
                )
            items.append(CostItem(f"pu{pu}.buffers", 0.0, buffers.total_bits, "control"))
            items.append(CostItem(f"pu{pu}.dma", 3 * 40_000.0, 0, "control"))
            items.append(CostItem(f"pu{pu}.control", 150_000.0, 0, "control"))
        items.append(CostItem("shared.interface", 20_000.0, 0, "control"))
        return items

    # -- totals ----------------------------------------------------------------
    def _raw_totals(self, items: list[CostItem]) -> tuple[float, float]:
        tech = self.tech
        area_um2 = sum(
            i.ge * tech.um2_per_ge + i.sram_bits * tech.um2_per_sram_bit for i in items
        )
        power_uw = sum(
            i.ge * tech.activity[i.activity_class] * tech.uw_per_weighted_ge
            + i.sram_bits * tech.uw_per_sram_bit
            for i in items
        )
        return area_um2, power_uw

    def evaluate(
        self, precision: str, num_pus: int = 1, buffers: BufferConfig | None = None
    ) -> CostBreakdown:
        """Area (mm²) and power (mW) of a configuration.

        Args:
            precision: ``"fp32"``, ``"mfdfp"``, or ``"fixed8"`` (an 8-bit
                fixed-point datapath *with* multipliers — the [9, 13]
                comparison point the paper's shift datapath improves on).
            num_pus: Processing units (2 for the ensemble design).
            buffers: Buffer geometry; defaults to the paper's configuration
                at the precision's word widths.
        """
        if num_pus < 1:
            raise ValueError("need at least one processing unit")
        if buffers is None:
            if precision == "fp32":
                buffers = self._fp32_buffers()
            elif precision == "fixed8":
                buffers = BufferConfig().scaled_to_precision(activation_bits=8, weight_bits=8)
            else:
                buffers = BufferConfig()
        items = self._bill(precision, num_pus, buffers)
        raw_area, raw_power = self._raw_totals(items)
        return CostBreakdown(
            items=items,
            area_mm2=raw_area * self.area_calibration / 1e6,
            power_mw=raw_power * self.power_calibration / 1e3,
            raw_area_um2=raw_area,
            raw_power_uw=raw_power,
        )

    def savings_vs_baseline(self, breakdown: CostBreakdown) -> tuple[float, float]:
        """(area saving %, power saving %) versus the FP32 baseline."""
        area = 100.0 * (1.0 - breakdown.area_mm2 / FP32_BASELINE_AREA_MM2)
        power = 100.0 * (1.0 - breakdown.power_mw / FP32_BASELINE_POWER_MW)
        return area, power
