"""The single multiplier-free neuron of Figure 2(a).

A neuron owns 16 synapses.  Each cycle it receives 16 input codes and 16
⟨s, e⟩ weights, forms the shift products, reduces them through the
widening adder tree, and adds the result into its accumulator.  When a
whole output has been accumulated (possibly over many 16-synapse chunks),
the Accumulator & Routing stage applies the non-linearity and realigns
the radix point from ``m`` (input) to ``n`` (output).
"""

from __future__ import annotations

import numpy as np

from repro.hw.datapath import (
    accumulator_route,
    adder_tree,
    check_width,
    shift_product,
)

#: Accumulator width: 20-bit chunk sums accumulated over up to 2^12 chunks.
ACCUMULATOR_BITS = 32


class Neuron:
    """Bit-accurate model of one neuron (16 synapses).

    Args:
        num_synapses: Synapses per cycle (the paper's design: 16).
        check_widths: Verify every wire against its declared width; keep
            on for verification, off for speed.
    """

    def __init__(self, num_synapses: int = 16, check_widths: bool = True):
        if num_synapses != 16:
            raise ValueError("the Figure 2(a) adder tree is built for 16 synapses")
        self.num_synapses = num_synapses
        self.check_widths = check_widths
        self.acc = np.int64(0)

    def reset(self) -> None:
        """Clear the accumulator (start of a new output computation)."""
        self.acc = np.int64(0)

    def load_bias(self, bias_int: int) -> None:
        """Preload the accumulator with a bias on the ``2^-(m+7)`` grid."""
        self.acc = np.int64(bias_int)

    def accumulate(self, x_codes: np.ndarray, w_sign: np.ndarray, w_exp: np.ndarray) -> np.int64:
        """One cycle: 16 shift products, adder tree, accumulate.

        Unused synapse slots should be fed ``x_code = 0``.
        Returns the updated accumulator value.
        """
        x_codes = np.asarray(x_codes)
        if x_codes.shape != (self.num_synapses,):
            raise ValueError(f"expected {self.num_synapses} synapses, got shape {x_codes.shape}")
        products = shift_product(x_codes, w_sign, w_exp)
        partial = adder_tree(products, check_widths=self.check_widths)
        self.acc = np.int64(self.acc + partial)
        if self.check_widths:
            check_width(np.array([self.acc]), ACCUMULATOR_BITS, "accumulator")
        return self.acc

    def emit(self, m: int, n: int, activation: str = "none") -> int:
        """Finish the output: NL + radix routing to an 8-bit code.

        ``m``/``n`` are the input/output radix indices of Figure 2(a); the
        accumulator grid has fraction length ``m + 7``.
        """
        out = accumulator_route(np.array([self.acc]), m + 7, n, activation)
        return int(out[0])

    def compute_output(
        self,
        x_codes: np.ndarray,
        w_sign: np.ndarray,
        w_exp: np.ndarray,
        bias_int: int,
        m: int,
        n: int,
        activation: str = "none",
    ) -> int:
        """Convenience: full dot product over any number of synapses.

        Inputs are split into 16-wide chunks (zero-padded); the result is
        the neuron's 8-bit output code.
        """
        x_codes = np.asarray(x_codes, dtype=np.int64).ravel()
        w_sign = np.asarray(w_sign, dtype=np.int64).ravel()
        w_exp = np.asarray(w_exp, dtype=np.int64).ravel()
        if not (x_codes.shape == w_sign.shape == w_exp.shape):
            raise ValueError("inputs and weights must have matching lengths")
        self.reset()
        self.load_bias(bias_int)
        k = self.num_synapses
        total = x_codes.size
        for start in range(0, total, k):
            xs = np.zeros(k, dtype=np.int64)
            ss = np.ones(k, dtype=np.int64)
            es = np.zeros(k, dtype=np.int64)
            chunk = slice(start, min(start + k, total))
            width = chunk.stop - chunk.start
            xs[:width] = x_codes[chunk]
            ss[:width] = w_sign[chunk]
            es[:width] = w_exp[chunk]
            self.accumulate(xs, ss, es)
        return self.emit(m, n, activation)
