"""The full accelerator: area, power, latency, energy, and execution.

Combines the cost model (Table 1), the tile scheduler (inference time in
Table 2) and bit-accurate execution of deployed MF-DFP networks.  The
execution kernels themselves live in :mod:`repro.core.engine` — one
layer-op registry shared by the eager reference path and the compiled
:class:`~repro.core.engine.BatchedEngine`; this module re-exports
:func:`execute_deployed` and adds the hardware accounting around both.
The FP32 baseline is the same tile organization with 32-bit multipliers
and a deeper multiply pipeline; it executes networks in plain floating
point.

Energy follows the paper's method: average power x inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.mfdfp import DeployedMFDFP
from repro.hw.cost import CostBreakdown, CostModel
from repro.hw.memory import BufferConfig, MemorySubsystem
from repro.hw.scheduler import Schedule, TileScheduler
from repro.nn.network import Network

#: Pipeline depths (cycles of fill per layer).  The FP32 multiply pipeline
#: is deeper than the shift pipeline, giving MF-DFP the marginal latency
#: edge visible in Table 2 (246.52 us vs 246.27 us on CIFAR-10).
PIPELINE_DEPTH = {"fp32": 10, "mfdfp": 4}


@dataclass(frozen=True)
class AcceleratorConfig:
    """Configuration of one accelerator instance.

    Attributes:
        precision: ``"mfdfp"`` (proposed) or ``"fp32"`` (baseline).
        num_pus: Processing units; 2 runs a two-network ensemble in
            parallel (Phase 3).
        clock_mhz: Core clock; the paper fixes 250 MHz for all designs.
        buffers: Optional buffer geometry override.
        check_widths: Verify datapath wire widths during execution
            (slower; used by the verification tests).
        dma_bandwidth: Off-chip bandwidth in bytes per cycle, or None for
            the paper's compute-bound setting (main memory excluded from
            the evaluation).  When set, layers whose transfers exceed
            their compute time become memory bound; FP32 moves 4-8x more
            bytes, so it stalls first.
    """

    precision: str = "mfdfp"
    num_pus: int = 1
    clock_mhz: float = 250.0
    buffers: Optional[BufferConfig] = None
    check_widths: bool = False
    dma_bandwidth: Optional[float] = None

    def __post_init__(self):
        if self.precision not in ("mfdfp", "fp32"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.num_pus < 1:
            raise ValueError("need at least one processing unit")
        if self.dma_bandwidth is not None and self.dma_bandwidth <= 0:
            raise ValueError("dma_bandwidth must be positive (or None)")


class Accelerator:
    """Area/power/latency/energy model plus bit-accurate execution."""

    def __init__(self, config: AcceleratorConfig | None = None, cost_model: CostModel | None = None):
        from repro.core.engine import EngineCache

        self.config = config or AcceleratorConfig()
        self.cost_model = cost_model or CostModel()
        self._engine_cache = EngineCache(capacity=self.ENGINE_CACHE_SIZE)
        self.breakdown: CostBreakdown = self.cost_model.evaluate(
            self.config.precision, self.config.num_pus, self.config.buffers
        )
        buffers = self.config.buffers
        if buffers is None:
            buffers = (
                CostModel._fp32_buffers() if self.config.precision == "fp32" else BufferConfig()
            )
        self.memory = MemorySubsystem(buffers)
        fp32 = self.config.precision == "fp32"
        self.scheduler = TileScheduler(
            clock_mhz=self.config.clock_mhz,
            pipeline_depth=PIPELINE_DEPTH[self.config.precision],
            dma_bandwidth=self.config.dma_bandwidth,
            activation_bits=32 if fp32 else 8,
            weight_bits=32 if fp32 else 4,
        )

    # -- design metrics (Table 1) ---------------------------------------------
    @property
    def area_mm2(self) -> float:
        return self.breakdown.area_mm2

    @property
    def power_mw(self) -> float:
        return self.breakdown.power_mw

    def savings_vs_baseline(self) -> tuple[float, float]:
        """(area %, power %) saved versus the FP32 single-PU baseline."""
        return self.cost_model.savings_vs_baseline(self.breakdown)

    # -- performance metrics (Table 2) ------------------------------------------
    def schedule(self, workload: Union[Network, DeployedMFDFP]) -> Schedule:
        """Cycle-accurate schedule of one inference.

        With multiple PUs, ensemble members run in parallel: the schedule
        (and therefore latency) is that of a single network.
        """
        if isinstance(workload, DeployedMFDFP):
            schedule = self.scheduler.schedule_deployed(workload)
        else:
            schedule = self.scheduler.schedule_network(workload)
        for layer in schedule.layers:
            self.memory.record_layer(layer.inputs_read, layer.weights_read, layer.outputs_written)
        return schedule

    def latency_us(self, workload: Union[Network, DeployedMFDFP]) -> float:
        """Single-inference latency in microseconds."""
        return self.schedule(workload).time_us()

    def energy_uj(self, workload: Union[Network, DeployedMFDFP]) -> float:
        """Single-inference energy: average power x latency (as the paper)."""
        return self.power_mw * 1e-3 * self.latency_us(workload)

    def energy_breakdown(self, workload: Union[Network, DeployedMFDFP]) -> list[dict]:
        """Per-layer time and energy (power x per-layer cycle share).

        Returns one dict per scheduled layer with keys ``name``, ``kind``,
        ``cycles``, ``time_us``, ``energy_uj``; the energy column sums to
        :meth:`energy_uj`.
        """
        schedule = self.schedule(workload)
        rows = []
        for layer in schedule.layers:
            time_us = layer.cycles / self.config.clock_mhz
            rows.append(
                {
                    "name": layer.name,
                    "kind": layer.kind,
                    "cycles": layer.cycles,
                    "time_us": time_us,
                    "energy_uj": self.power_mw * 1e-3 * time_us,
                }
            )
        return rows

    def schedule_batch(self, deployed: DeployedMFDFP, batch_size: int) -> Schedule:
        """Batched schedule: weights stay resident across the batch.

        Compute and activation traffic scale with the batch; weight
        transfers and each layer's pipeline fill are paid once per batch
        (the engine and the weight-stationary tiles reuse the loaded
        weights), so per-sample latency and energy drop as the batch
        grows.
        """
        schedule = self.scheduler.schedule_deployed_batch(deployed, batch_size)
        for layer in schedule.layers:
            self.memory.record_layer(layer.inputs_read, layer.weights_read, layer.outputs_written)
        return schedule

    def batch_throughput_ips(self, deployed: DeployedMFDFP, batch_size: int) -> float:
        """Steady-state samples/second when serving ``batch_size`` batches."""
        return self.schedule_batch(deployed, batch_size).throughput_ips()

    def batch_energy_uj(self, deployed: DeployedMFDFP, batch_size: int) -> float:
        """Energy of one whole batch: average power x batch latency."""
        return self.power_mw * 1e-3 * self.schedule_batch(deployed, batch_size).time_us()

    def batch_profile(self, deployed: DeployedMFDFP, batch_size: int) -> dict:
        """Modeled silicon accounting for serving one network in batches.

        One schedule pass, surfaced in the shape the serving runtime's
        metrics expect: ``throughput_ips`` (steady-state samples/s),
        ``batch_latency_us``, ``batch_energy_uj`` and the derived
        ``energy_uj_per_sample``.
        """
        schedule = self.schedule_batch(deployed, batch_size)
        batch_latency_us = schedule.time_us()
        batch_energy_uj = self.power_mw * 1e-3 * batch_latency_us
        return {
            "batch_size": batch_size,
            "throughput_ips": schedule.throughput_ips(),
            "batch_latency_us": batch_latency_us,
            "batch_energy_uj": batch_energy_uj,
            "energy_uj_per_sample": batch_energy_uj / batch_size,
        }

    # -- execution ----------------------------------------------------------------
    def run(self, deployed: DeployedMFDFP, x: np.ndarray) -> np.ndarray:
        """Bit-accurate integer inference; returns float logits.

        Every activation is an integer code; every multiply is a shift;
        rounding is round-half-to-even exactly as in the RTL datapath.
        """
        if self.config.precision != "mfdfp":
            raise ValueError("run() executes MF-DFP networks; use run_float for the baseline")
        codes = execute_deployed(deployed, x, check_widths=self.config.check_widths)
        last = deployed.ops[-1]
        return codes.astype(np.float64) * 2.0 ** (-last.out_frac)

    #: Compiled engines kept per accelerator (see :meth:`engine_for`).
    ENGINE_CACHE_SIZE = 8

    def engine_for(self, deployed: DeployedMFDFP):
        """The cached :class:`~repro.core.engine.BatchedEngine` for a network.

        Compiles on first use through a content-addressed
        :class:`~repro.core.engine.EngineCache`: networks with identical
        integer tensors share one engine even across distinct ``deploy()``
        calls, lookups are thread-safe, and the cache is bounded at
        :data:`ENGINE_CACHE_SIZE` entries (least-recently-used evicted)
        so sweeping many networks through one accelerator cannot grow
        memory without bound.
        """
        return self._engine_cache.get(deployed, check_widths=self.config.check_widths)

    def run_batched(self, deployed: DeployedMFDFP, x: np.ndarray) -> np.ndarray:
        """Compiled-engine inference; bit-identical to :meth:`run`.

        Use this for serving-style workloads: the first call compiles the
        network (weight LUT decode + gather tables), subsequent calls
        only pay the batched kernels.
        """
        if self.config.precision != "mfdfp":
            raise ValueError("run_batched() executes MF-DFP networks")
        return self.engine_for(deployed).run(x)

    def evaluate_deployed(
        self, deployed: DeployedMFDFP, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> dict:
        """Accuracy on a labelled set, with *batched* silicon accounting.

        The experiment-campaign companion to :meth:`run_batched`:
        executes through the cached compiled engine in ``batch_size``
        slices and prices the workload with :meth:`schedule_batch`
        (weights resident across each batch) — one schedule per distinct
        slice size instead of one per sample, the accounting analogue of
        the batched execution itself.  Returns ``accuracy``, ``samples``,
        ``modeled_latency_us``, ``modeled_energy_uj`` and the implied
        ``modeled_throughput_ips``.
        """
        if self.config.precision != "mfdfp":
            raise ValueError("evaluate_deployed() executes MF-DFP networks")
        y = np.asarray(y)
        n = len(x)
        if n == 0:
            raise ValueError("cannot evaluate on an empty batch")
        if n != len(y):
            raise ValueError(f"x has {n} samples but y has {len(y)} labels")
        engine = self.engine_for(deployed)
        correct = 0
        for start in range(0, n, batch_size):
            codes = engine.run_codes(x[start : start + batch_size])
            correct += int((codes.argmax(axis=1) == y[start : start + batch_size]).sum())
        full_batches, remainder = divmod(n, batch_size)
        modeled_us = 0.0
        if full_batches:
            modeled_us += full_batches * self.schedule_batch(deployed, batch_size).time_us()
        if remainder:
            modeled_us += self.schedule_batch(deployed, remainder).time_us()
        modeled_uj = self.power_mw * 1e-3 * modeled_us
        return {
            "accuracy": correct / n,
            "samples": n,
            "modeled_latency_us": modeled_us,
            "modeled_energy_uj": modeled_uj,
            "modeled_throughput_ips": n / (modeled_us * 1e-6),
        }

    def run_float(self, net: Network, x: np.ndarray) -> np.ndarray:
        """FP32 baseline inference (plain floating point)."""
        return net.logits(x)

    def run_ensemble(self, members: list[DeployedMFDFP], x: np.ndarray) -> np.ndarray:
        """Phase 3 in hardware: one deployed network per processing unit.

        Each PU evaluates its member in parallel (latency = one network);
        the averaged logits implement the paper's ensemble vote.  Requires
        ``num_pus >= len(members)``.
        """
        if self.config.precision != "mfdfp":
            raise ValueError("ensembles run on the MF-DFP accelerator")
        if not members:
            raise ValueError("ensemble needs at least one member")
        if len(members) > self.config.num_pus:
            raise ValueError(
                f"{len(members)} members need {len(members)} processing units; "
                f"this accelerator has {self.config.num_pus}"
            )
        acc = None
        for member in members:
            z = self.run(member, x)
            acc = z if acc is None else acc + z
        return acc / len(members)


# -- bit-accurate execution ------------------------------------------------------
def execute_deployed(
    deployed: DeployedMFDFP, x: np.ndarray, check_widths: bool = False
) -> np.ndarray:
    """Run a deployed network on a batch, all-integer; returns out codes.

    Back-compat entry point: the implementation (and the layer-op
    registry it dispatches through) lives in :mod:`repro.core.engine`.
    Imported lazily to keep ``repro.hw`` importable before
    ``repro.core.engine`` finishes loading (the engine imports the
    datapath primitives from this package).
    """
    from repro.core.engine import execute_deployed as _execute

    return _execute(deployed, x, check_widths=check_widths)
