"""The full accelerator: area, power, latency, energy, and execution.

Combines the cost model (Table 1), the tile scheduler (inference time in
Table 2) and a vectorized bit-accurate executor for deployed MF-DFP
networks.  The FP32 baseline is the same tile organization with 32-bit
multipliers and a deeper multiply pipeline; it executes networks in plain
floating point.

Energy follows the paper's method: average power x inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.dfp import DFPFormat, dfp_to_codes
from repro.core.mfdfp import DeployedLayer, DeployedMFDFP
from repro.hw.cost import CostBreakdown, CostModel
from repro.hw.datapath import (
    accumulator_route,
    check_width,
    div_round_half_even,
    requantize_codes,
    saturate,
)
from repro.hw.memory import BufferConfig, MemorySubsystem
from repro.hw.scheduler import Schedule, TileScheduler
from repro.nn.layers.conv import conv_output_size, im2col
from repro.nn.layers.pool import pool_output_size
from repro.nn.network import Network

#: Pipeline depths (cycles of fill per layer).  The FP32 multiply pipeline
#: is deeper than the shift pipeline, giving MF-DFP the marginal latency
#: edge visible in Table 2 (246.52 us vs 246.27 us on CIFAR-10).
PIPELINE_DEPTH = {"fp32": 10, "mfdfp": 4}


@dataclass(frozen=True)
class AcceleratorConfig:
    """Configuration of one accelerator instance.

    Attributes:
        precision: ``"mfdfp"`` (proposed) or ``"fp32"`` (baseline).
        num_pus: Processing units; 2 runs a two-network ensemble in
            parallel (Phase 3).
        clock_mhz: Core clock; the paper fixes 250 MHz for all designs.
        buffers: Optional buffer geometry override.
        check_widths: Verify datapath wire widths during execution
            (slower; used by the verification tests).
        dma_bandwidth: Off-chip bandwidth in bytes per cycle, or None for
            the paper's compute-bound setting (main memory excluded from
            the evaluation).  When set, layers whose transfers exceed
            their compute time become memory bound; FP32 moves 4-8x more
            bytes, so it stalls first.
    """

    precision: str = "mfdfp"
    num_pus: int = 1
    clock_mhz: float = 250.0
    buffers: Optional[BufferConfig] = None
    check_widths: bool = False
    dma_bandwidth: Optional[float] = None

    def __post_init__(self):
        if self.precision not in ("mfdfp", "fp32"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.num_pus < 1:
            raise ValueError("need at least one processing unit")
        if self.dma_bandwidth is not None and self.dma_bandwidth <= 0:
            raise ValueError("dma_bandwidth must be positive (or None)")


class Accelerator:
    """Area/power/latency/energy model plus bit-accurate execution."""

    def __init__(self, config: AcceleratorConfig | None = None, cost_model: CostModel | None = None):
        self.config = config or AcceleratorConfig()
        self.cost_model = cost_model or CostModel()
        self.breakdown: CostBreakdown = self.cost_model.evaluate(
            self.config.precision, self.config.num_pus, self.config.buffers
        )
        buffers = self.config.buffers
        if buffers is None:
            buffers = (
                CostModel._fp32_buffers() if self.config.precision == "fp32" else BufferConfig()
            )
        self.memory = MemorySubsystem(buffers)
        fp32 = self.config.precision == "fp32"
        self.scheduler = TileScheduler(
            clock_mhz=self.config.clock_mhz,
            pipeline_depth=PIPELINE_DEPTH[self.config.precision],
            dma_bandwidth=self.config.dma_bandwidth,
            activation_bits=32 if fp32 else 8,
            weight_bits=32 if fp32 else 4,
        )

    # -- design metrics (Table 1) ---------------------------------------------
    @property
    def area_mm2(self) -> float:
        return self.breakdown.area_mm2

    @property
    def power_mw(self) -> float:
        return self.breakdown.power_mw

    def savings_vs_baseline(self) -> tuple[float, float]:
        """(area %, power %) saved versus the FP32 single-PU baseline."""
        return self.cost_model.savings_vs_baseline(self.breakdown)

    # -- performance metrics (Table 2) ------------------------------------------
    def schedule(self, workload: Union[Network, DeployedMFDFP]) -> Schedule:
        """Cycle-accurate schedule of one inference.

        With multiple PUs, ensemble members run in parallel: the schedule
        (and therefore latency) is that of a single network.
        """
        if isinstance(workload, DeployedMFDFP):
            schedule = self.scheduler.schedule_deployed(workload)
        else:
            schedule = self.scheduler.schedule_network(workload)
        for layer in schedule.layers:
            self.memory.record_layer(layer.inputs_read, layer.weights_read, layer.outputs_written)
        return schedule

    def latency_us(self, workload: Union[Network, DeployedMFDFP]) -> float:
        """Single-inference latency in microseconds."""
        return self.schedule(workload).time_us()

    def energy_uj(self, workload: Union[Network, DeployedMFDFP]) -> float:
        """Single-inference energy: average power x latency (as the paper)."""
        return self.power_mw * 1e-3 * self.latency_us(workload)

    def energy_breakdown(self, workload: Union[Network, DeployedMFDFP]) -> list[dict]:
        """Per-layer time and energy (power x per-layer cycle share).

        Returns one dict per scheduled layer with keys ``name``, ``kind``,
        ``cycles``, ``time_us``, ``energy_uj``; the energy column sums to
        :meth:`energy_uj`.
        """
        schedule = self.schedule(workload)
        rows = []
        for layer in schedule.layers:
            time_us = layer.cycles / self.config.clock_mhz
            rows.append(
                {
                    "name": layer.name,
                    "kind": layer.kind,
                    "cycles": layer.cycles,
                    "time_us": time_us,
                    "energy_uj": self.power_mw * 1e-3 * time_us,
                }
            )
        return rows

    # -- execution ----------------------------------------------------------------
    def run(self, deployed: DeployedMFDFP, x: np.ndarray) -> np.ndarray:
        """Bit-accurate integer inference; returns float logits.

        Every activation is an integer code; every multiply is a shift;
        rounding is round-half-to-even exactly as in the RTL datapath.
        """
        if self.config.precision != "mfdfp":
            raise ValueError("run() executes MF-DFP networks; use run_float for the baseline")
        codes = execute_deployed(deployed, x, check_widths=self.config.check_widths)
        last = deployed.ops[-1]
        return codes.astype(np.float64) * 2.0 ** (-last.out_frac)

    def run_float(self, net: Network, x: np.ndarray) -> np.ndarray:
        """FP32 baseline inference (plain floating point)."""
        return net.logits(x)

    def run_ensemble(self, members: list[DeployedMFDFP], x: np.ndarray) -> np.ndarray:
        """Phase 3 in hardware: one deployed network per processing unit.

        Each PU evaluates its member in parallel (latency = one network);
        the averaged logits implement the paper's ensemble vote.  Requires
        ``num_pus >= len(members)``.
        """
        if self.config.precision != "mfdfp":
            raise ValueError("ensembles run on the MF-DFP accelerator")
        if not members:
            raise ValueError("ensemble needs at least one member")
        if len(members) > self.config.num_pus:
            raise ValueError(
                f"{len(members)} members need {len(members)} processing units; "
                f"this accelerator has {self.config.num_pus}"
            )
        acc = None
        for member in members:
            z = self.run(member, x)
            acc = z if acc is None else acc + z
        return acc / len(members)


# -- vectorized bit-accurate executor ------------------------------------------
def _conv_codes(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    n = codes.shape[0]
    k = op.kernel_size
    g = op.groups or 1
    cols, oh, ow = im2col(codes, k, k, op.stride, op.pad)
    sign, exp = op.weight_fields()
    syn = (op.in_channels // g) * k * k
    w_int = (sign << (7 + exp)).reshape(g, op.out_channels // g, syn)
    cols_g = cols.astype(np.int64).reshape(n, g, syn, -1)
    acc = np.einsum("gfk,ngkp->ngfp", w_int, cols_g, optimize=True)
    acc = acc.reshape(n, op.out_channels, -1)
    if op.bias_int is not None:
        acc += op.bias_int[None, :, None]
    if check_widths:
        check_width(acc, 32, f"{op.name} accumulator")
    out = accumulator_route(acc, op.in_frac + 7, op.out_frac, op.activation)
    return out.reshape(n, op.out_channels, oh, ow)


def _dense_codes(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    sign, exp = op.weight_fields()
    w_int = (sign << (7 + exp)).reshape(op.out_features, op.in_features)
    acc = codes.astype(np.int64) @ w_int.T
    if op.bias_int is not None:
        acc += op.bias_int[None, :]
    if check_widths:
        check_width(acc, 32, f"{op.name} accumulator")
    return accumulator_route(acc, op.in_frac + 7, op.out_frac, op.activation)


def _pool_windows(codes: np.ndarray, op: DeployedLayer, fill: int):
    n, c, h, w = codes.shape
    k, s, p = op.kernel_size, op.stride, op.pad
    oh = pool_output_size(h, k, s, p, op.ceil_mode)
    ow = pool_output_size(w, k, s, p, op.ceil_mode)
    need_h = (oh - 1) * s + k
    need_w = (ow - 1) * s + k
    pad_b = max(0, need_h - (h + p))
    pad_r = max(0, need_w - (w + p))
    padded = np.pad(codes, ((0, 0), (0, 0), (p, pad_b), (p, pad_r)), constant_values=fill)
    win = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(2, 3))
    return win[:, :, ::s, ::s][:, :, :oh, :ow], oh, ow


def _maxpool_codes(op: DeployedLayer, codes: np.ndarray) -> np.ndarray:
    win, _, _ = _pool_windows(codes, op, fill=np.iinfo(np.int64).min)
    out = win.max(axis=(-1, -2))
    return requantize_codes(out, op.in_frac, op.out_frac)


def _avgpool_codes(op: DeployedLayer, codes: np.ndarray) -> np.ndarray:
    win, oh, ow = _pool_windows(codes, op, fill=0)
    sums = win.sum(axis=(-1, -2), dtype=np.int64)
    ones = np.ones((1, 1) + codes.shape[2:], dtype=np.int64)
    counts = _pool_windows(ones, op, fill=0)[0].sum(axis=(-1, -2))[0, 0]  # (oh, ow)
    shift = op.out_frac - op.in_frac
    if shift >= 0:
        out = div_round_half_even(sums << shift, counts[None, None])
    else:
        out = div_round_half_even(sums, counts[None, None] << (-shift))
    return saturate(out)


def execute_deployed(
    deployed: DeployedMFDFP, x: np.ndarray, check_widths: bool = False
) -> np.ndarray:
    """Run a deployed network on a batch, all-integer; returns out codes."""
    codes = dfp_to_codes(x, DFPFormat(deployed.bits, deployed.input_frac))
    for op in deployed.ops:
        if op.kind == "conv":
            codes = _conv_codes(op, codes, check_widths)
        elif op.kind == "dense":
            codes = _dense_codes(op, codes, check_widths)
        elif op.kind == "maxpool":
            codes = _maxpool_codes(op, codes)
        elif op.kind == "avgpool":
            codes = _avgpool_codes(op, codes)
        elif op.kind == "flatten":
            codes = codes.reshape(codes.shape[0], -1)
        else:
            raise ValueError(f"cannot execute op kind {op.kind!r}")
    return codes
