"""Hardware accelerator model (Section 5 of the paper).

* :mod:`repro.hw.datapath` — bit-accurate integer primitives: shift
  products, the widening 16→20-bit adder tree, round/saturate routing.
* :mod:`repro.hw.neuron` — the single neuron of Figure 2(a).
* :mod:`repro.hw.npu` — processing units (16 neurons × 16 synapses) and
  the neural processing unit of Figure 2(b).
* :mod:`repro.hw.memory` — the three SRAM buffer subsystems + DMA.
* :mod:`repro.hw.scheduler` — tile scheduling and cycle counting.
* :mod:`repro.hw.cost` — 65 nm area/power component model (Table 1).
* :mod:`repro.hw.accelerator` — ties everything together: area, power,
  latency, energy (single and batched schedules), and bit-accurate
  inference of deployed MF-DFP networks via the shared layer-op registry
  in :mod:`repro.core.engine`.
"""

from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.cost import (
    TECHNOLOGY_PRESETS,
    CostBreakdown,
    CostModel,
    CostModelError,
    NPUDesign,
    TechnologyParams,
    technology,
)
from repro.hw.datapath import (
    adder_tree,
    div_round_half_even,
    requantize_codes,
    rshift_round_half_even,
    saturate,
    shift_product,
)
from repro.hw.memory import BufferConfig, MemorySubsystem, SramBuffer
from repro.hw.neuron import Neuron
from repro.hw.npu import NeuralProcessingUnit, ProcessingUnit
from repro.hw.scheduler import LayerSchedule, Schedule, TileScheduler

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "BufferConfig",
    "CostBreakdown",
    "CostModel",
    "CostModelError",
    "LayerSchedule",
    "MemorySubsystem",
    "NPUDesign",
    "NeuralProcessingUnit",
    "Neuron",
    "ProcessingUnit",
    "Schedule",
    "SramBuffer",
    "TECHNOLOGY_PRESETS",
    "TechnologyParams",
    "TileScheduler",
    "technology",
    "adder_tree",
    "div_round_half_even",
    "requantize_codes",
    "rshift_round_half_even",
    "saturate",
    "shift_product",
]
