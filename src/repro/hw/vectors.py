"""Golden test-vector generation for RTL verification.

A codesign repository ships verification collateral alongside the model:
this module emits stimulus/expected-response vectors for the Figure 2(a)
neuron that an RTL testbench can replay against the synthesized design.
Each vector exercises one full neuron computation (16 synapses, one
accumulate cycle, Accumulator & Routing emit); the expected responses
come from the bit-accurate Python model, which the test suite proves
equivalent to the quantized software simulation.

File format (one vector per line, whitespace separated)::

    m n activation x0..x15 w0..w15 bias expected

where ``x`` are signed 8-bit input codes, ``w`` are 4-bit weight codes
(hex), ``bias`` is the signed accumulator-grid bias, and ``expected`` is
the signed 8-bit output code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.pow2 import pow2_code_fields
from repro.hw.neuron import Neuron


@dataclass(frozen=True)
class NeuronVector:
    """One stimulus/response pair for the neuron testbench."""

    m: int
    n: int
    activation: str
    x_codes: tuple
    w_codes: tuple
    bias_int: int
    expected: int

    def to_line(self) -> str:
        act = 1 if self.activation == "relu" else 0
        xs = " ".join(str(int(v)) for v in self.x_codes)
        ws = " ".join(f"{int(v):x}" for v in self.w_codes)
        return f"{self.m} {self.n} {act} {xs} {ws} {self.bias_int} {self.expected}"

    @classmethod
    def from_line(cls, line: str) -> "NeuronVector":
        parts = line.split()
        if len(parts) != 3 + 16 + 16 + 2:
            raise ValueError(f"malformed vector line ({len(parts)} fields)")
        m, n, act = int(parts[0]), int(parts[1]), int(parts[2])
        xs = tuple(int(v) for v in parts[3:19])
        ws = tuple(int(v, 16) for v in parts[19:35])
        return cls(
            m=m,
            n=n,
            activation="relu" if act else "none",
            x_codes=xs,
            w_codes=ws,
            bias_int=int(parts[35]),
            expected=int(parts[36]),
        )


def _expected_output(vector_inputs) -> int:
    m, n, activation, x_codes, w_codes, bias_int = vector_inputs
    sign, exp = pow2_code_fields(np.array(w_codes, dtype=np.uint8))
    neuron = Neuron(check_widths=True)
    return neuron.compute_output(
        np.array(x_codes, dtype=np.int64), sign, exp, bias_int, m, n, activation
    )


def generate_neuron_vectors(
    count: int = 256,
    rng: Optional[np.random.Generator] = None,
    include_corners: bool = True,
) -> list[NeuronVector]:
    """Random + corner-case neuron vectors with golden responses.

    Corner cases cover the datapath extremes: all-max positive/negative
    products (adder-tree saturation headroom), all-zero inputs, and the
    bias-only path.
    """
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (golden test-vector sets are defined by this fixed seed)
    cases = []
    if include_corners:
        cases.append((0, 0, "none", (127,) * 16, (0x0,) * 16, 0))        # +max products
        cases.append((0, 0, "none", (127,) * 16, (0x8,) * 16, 0))        # -max products
        cases.append((4, 4, "relu", (0,) * 16, (0x7,) * 16, 0))          # zeros
        cases.append((4, 4, "none", (0,) * 16, (0x0,) * 16, 2047))       # bias only
        cases.append((7, 0, "relu", (-127,) * 16, (0x8,) * 16, -1))      # sign interplay
    while len(cases) < count:
        m = int(rng.integers(0, 8))
        n = int(rng.integers(0, 8))
        activation = "relu" if rng.random() < 0.5 else "none"
        xs = tuple(int(v) for v in rng.integers(-127, 128, size=16))
        ws = tuple(int(v) for v in rng.integers(0, 16, size=16))
        bias = int(rng.integers(-(2**12), 2**12))
        cases.append((m, n, activation, xs, ws, bias))
    vectors = []
    for case in cases[:count]:
        vectors.append(
            NeuronVector(
                m=case[0],
                n=case[1],
                activation=case[2],
                x_codes=case[3],
                w_codes=case[4],
                bias_int=case[5],
                expected=_expected_output(case),
            )
        )
    return vectors


def write_vectors(vectors: list[NeuronVector], path) -> None:
    """Write vectors to a plain-text file (one per line, with header)."""
    with open(path, "w") as f:
        f.write("# m n act x0..x15 w0..w15(hex) bias expected\n")
        for v in vectors:
            f.write(v.to_line() + "\n")


def read_vectors(path) -> list[NeuronVector]:
    """Read a vector file written by :func:`write_vectors`."""
    vectors = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            vectors.append(NeuronVector.from_line(line))
    return vectors


def verify_vectors(vectors: list[NeuronVector]) -> int:
    """Replay vectors against the Python model; returns mismatch count."""
    mismatches = 0
    for v in vectors:
        got = _expected_output((v.m, v.n, v.activation, v.x_codes, v.w_codes, v.bias_int))
        if got != v.expected:
            mismatches += 1
    return mismatches
