"""Memory subsystem: the three SRAM buffers and their DMA engines.

The accelerator implements "three separate memory subsystems assigned to
input data, weights, and output data" (Section 5), each with its own DMA
so transfers overlap computation.  Buffers are modelled as word-organized
SRAM macros; word widths depend on the precision mode (8-bit activations
and 4-bit weights for MF-DFP vs 32-bit everything for the FP32 baseline).

Access counters feed the energy breakdown report; the headline energy
numbers of Table 2 follow the paper's method (average power × latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BufferConfig:
    """Word counts and widths of the three buffers (one processing unit).

    Word counts are shared between precision modes; widths shrink with
    the data types, which is where the MF-DFP memory savings come from.
    """

    input_words: int = 16384
    output_words: int = 16384
    weight_words: int = 65536
    input_bits: int = 8
    output_bits: int = 8
    weight_bits: int = 4

    @property
    def total_bits(self) -> int:
        return (
            self.input_words * self.input_bits
            + self.output_words * self.output_bits
            + self.weight_words * self.weight_bits
        )

    @property
    def total_kbytes(self) -> float:
        return self.total_bits / 8.0 / 1024.0

    def scaled_to_precision(self, activation_bits: int, weight_bits: int) -> "BufferConfig":
        """Same geometry with different element widths."""
        return BufferConfig(
            input_words=self.input_words,
            output_words=self.output_words,
            weight_words=self.weight_words,
            input_bits=activation_bits,
            output_bits=activation_bits,
            weight_bits=weight_bits,
        )


class SramBuffer:
    """A word-organized SRAM macro with read/write accounting."""

    def __init__(self, name: str, words: int, word_bits: int):
        if words < 1 or word_bits < 1:
            raise ValueError("buffer must have positive geometry")
        self.name = name
        self.words = words
        self.word_bits = word_bits
        self.reads = 0
        self.writes = 0

    @property
    def bits(self) -> int:
        return self.words * self.word_bits

    def read(self, n_words: int = 1) -> None:
        if n_words < 0:
            raise ValueError("negative access count")
        self.reads += n_words

    def write(self, n_words: int = 1) -> None:
        if n_words < 0:
            raise ValueError("negative access count")
        self.writes += n_words

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0


@dataclass
class DmaEngine:
    """Off-chip transfer accounting for one buffer's DMA channel."""

    name: str
    bytes_transferred: int = 0

    def transfer(self, n_bytes: int) -> None:
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        self.bytes_transferred += n_bytes

    def reset(self) -> None:
        self.bytes_transferred = 0


@dataclass
class MemorySubsystem:
    """The three buffers plus their DMA engines."""

    config: BufferConfig
    input_buffer: SramBuffer = field(init=False)
    output_buffer: SramBuffer = field(init=False)
    weight_buffer: SramBuffer = field(init=False)
    dma: dict = field(init=False)

    def __post_init__(self):
        c = self.config
        self.input_buffer = SramBuffer("input", c.input_words, c.input_bits)
        self.output_buffer = SramBuffer("output", c.output_words, c.output_bits)
        self.weight_buffer = SramBuffer("weights", c.weight_words, c.weight_bits)
        self.dma = {name: DmaEngine(name) for name in ("input", "output", "weights")}

    @property
    def buffers(self) -> list[SramBuffer]:
        return [self.input_buffer, self.weight_buffer, self.output_buffer]

    def reset_counters(self) -> None:
        for buf in self.buffers:
            buf.reset_counters()
        for engine in self.dma.values():
            engine.reset()

    def record_layer(self, inputs_read: int, weights_read: int, outputs_written: int) -> None:
        """Account one layer's buffer traffic (word granularity)."""
        self.input_buffer.read(inputs_read)
        self.weight_buffer.read(weights_read)
        self.output_buffer.write(outputs_written)

    def total_accesses(self) -> int:
        return sum(buf.reads + buf.writes for buf in self.buffers)
