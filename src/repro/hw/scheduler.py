"""Tile scheduling and cycle counting.

The accelerator is tile-based (DianNao style): each cycle a processing
unit consumes 16 input words and 16x16 weights, producing 16 partial
sums.  A convolution with ``S`` synapses per output (``in_ch * k * k``),
``F`` output channels and ``P`` output positions therefore takes

    compute_cycles = P * ceil(F / 16) * ceil(S / 16)

plus a per-layer pipeline fill.  Pooling runs on the dedicated pooling
path at 16 elements per cycle.  The FP32 baseline shares this schedule
(same tile organization, same 250 MHz clock) but has a deeper pipeline —
which is why Table 2's inference times are nearly identical, with MF-DFP
marginally faster.

Optionally the scheduler models the off-chip DMA: with double-buffered
memory subsystems, each layer's effective time is the max of compute and
transfer time.  The paper's evaluation excludes main memory (compute
bound at its bandwidth), which is the default here (``dma_bandwidth``
None); enabling it exposes a second MF-DFP advantage — its transfers are
4-8x smaller, so it stays compute-bound at bandwidths where the FP32
design stalls (see ``benchmarks/bench_ablation_bandwidth.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.mfdfp import DeployedLayer, DeployedMFDFP
from repro.nn.layers.conv import Conv2D, conv_output_size
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import LocalResponseNorm
from repro.nn.layers.pool import AvgPool2D, MaxPool2D, pool_output_size
from repro.nn.network import Network


@dataclass(frozen=True)
class LayerSchedule:
    """Cycle count and traffic of one scheduled operation.

    ``cycles`` is the effective (wall-clock) count: with a DMA model it is
    ``max(compute, dma) + pipeline fill``; without one it is compute plus
    fill.  Buffer-access fields count on-chip SRAM words; ``*_elems``
    count the unique off-chip elements a double-buffered DMA must move.
    """

    name: str
    kind: str
    cycles: int
    compute_cycles: int = 0
    dma_cycles: int = 0
    macs: int = 0
    inputs_read: int = 0
    weights_read: int = 0
    outputs_written: int = 0
    input_elems: int = 0
    weight_elems: int = 0
    output_elems: int = 0

    @property
    def memory_bound(self) -> bool:
        """True when the DMA transfer, not compute, sets this layer's time."""
        return self.dma_cycles > self.compute_cycles


@dataclass
class Schedule:
    """A schedule on one processing unit (one inference, or a batch).

    ``batch_size`` is 1 for the paper's single-inference schedules;
    :meth:`TileScheduler.schedule_deployed_batch` produces schedules
    covering a whole batch, where :meth:`time_us` is the batch latency
    and :meth:`throughput_ips` accounts for all samples in it.
    """

    network: str
    clock_mhz: float
    layers: list[LayerSchedule] = field(default_factory=list)
    batch_size: int = 1

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def time_us(self) -> float:
        """Latency of the scheduled work (whole batch) in microseconds."""
        return self.total_cycles / self.clock_mhz

    def utilization(self, lanes: int = 256) -> float:
        """Average MAC-lane utilization over compute cycles."""
        compute_cycles = sum(l.cycles for l in self.layers if l.kind in ("conv", "dense"))
        if compute_cycles == 0:
            return 0.0
        return self.total_macs / (compute_cycles * lanes)

    def memory_bound_layers(self) -> list[str]:
        """Names of layers whose DMA time exceeds their compute time."""
        return [l.name for l in self.layers if l.memory_bound]

    def throughput_ips(self) -> float:
        """Steady-state throughput in inferences per second (one PU).

        For batched schedules, every sample of the batch counts.
        """
        return self.batch_size * 1e6 / self.time_us()


class TileScheduler:
    """Maps networks onto the 16-neuron / 16-synapse tile.

    Args:
        neurons: Physical neurons per processing unit.
        synapses: Synapses per neuron per cycle.
        clock_mhz: Core clock (paper: constant 250 MHz for all designs).
        pipeline_depth: Per-layer pipeline fill cycles.  The FP32
            multiply pipeline is deeper than the MF-DFP shift pipeline,
            producing the small latency edge MF-DFP shows in Table 2.
        pool_throughput: Pooling-path elements per cycle.
        dma_bandwidth: Off-chip bandwidth in *bytes per cycle*, or None
            for the paper's compute-bound setting (main memory excluded).
        activation_bits: Off-chip activation width (8 MF-DFP / 32 FP32).
        weight_bits: Off-chip weight width (4 MF-DFP / 32 FP32).
    """

    def __init__(
        self,
        neurons: int = 16,
        synapses: int = 16,
        clock_mhz: float = 250.0,
        pipeline_depth: int = 4,
        pool_throughput: int = 16,
        dma_bandwidth: Optional[float] = None,
        activation_bits: int = 8,
        weight_bits: int = 4,
    ):
        if dma_bandwidth is not None and dma_bandwidth <= 0:
            raise ValueError("dma_bandwidth must be positive (or None)")
        self.neurons = neurons
        self.synapses = synapses
        self.clock_mhz = clock_mhz
        self.pipeline_depth = pipeline_depth
        self.pool_throughput = pool_throughput
        self.dma_bandwidth = dma_bandwidth
        self.activation_bits = activation_bits
        self.weight_bits = weight_bits

    # -- DMA model -------------------------------------------------------------
    def _dma_cycles(self, input_elems: int, weight_elems: int, output_elems: int) -> int:
        """Transfer cycles for one layer's unique off-chip traffic."""
        if self.dma_bandwidth is None:
            return 0
        total_bytes = (
            (input_elems + output_elems) * self.activation_bits
            + weight_elems * self.weight_bits
        ) / 8.0
        return math.ceil(total_bytes / self.dma_bandwidth)

    def _finalize(self, compute_cycles: int, dma_cycles: int) -> int:
        """Effective cycles: double-buffered overlap of compute and DMA."""
        return max(compute_cycles, dma_cycles) + self.pipeline_depth

    # -- per-op cycle models -----------------------------------------------------
    def _compute_op(
        self, name, kind, out_units, positions, syn_per_out, input_elems, weight_elems
    ) -> LayerSchedule:
        """Tiled conv/dense cycles: positions x channel-tiles x syn-chunks."""
        tiles = positions * math.ceil(out_units / self.neurons)
        chunks = math.ceil(syn_per_out / self.synapses)
        compute = tiles * chunks
        output_elems = out_units * positions
        dma = self._dma_cycles(input_elems, weight_elems, output_elems)
        return LayerSchedule(
            name=name,
            kind=kind,
            cycles=self._finalize(compute, dma),
            compute_cycles=compute,
            dma_cycles=dma,
            macs=out_units * positions * syn_per_out,
            inputs_read=tiles * chunks * self.synapses,
            weights_read=tiles * chunks * self.synapses * self.neurons,
            outputs_written=output_elems,
            input_elems=input_elems,
            weight_elems=weight_elems,
            output_elems=output_elems,
        )

    def _pool_op(self, name, kind, out_elems, window, input_elems) -> LayerSchedule:
        compute = math.ceil(out_elems * window / self.pool_throughput)
        dma = self._dma_cycles(input_elems, 0, out_elems)
        return LayerSchedule(
            name=name,
            kind=kind,
            cycles=self._finalize(compute, dma),
            compute_cycles=compute,
            dma_cycles=dma,
            inputs_read=out_elems * window,
            outputs_written=out_elems,
            input_elems=input_elems,
            output_elems=out_elems,
        )

    # -- deployed networks ---------------------------------------------------------
    def schedule_deployed(self, deployed: DeployedMFDFP) -> Schedule:
        """Schedule a deployed MF-DFP network."""
        schedule = Schedule(network=deployed.name, clock_mhz=self.clock_mhz)
        shape = deployed.input_shape
        for op in deployed.ops:
            shape = self._schedule_op(schedule, op, shape)
        return schedule

    def schedule_deployed_batch(self, deployed: DeployedMFDFP, batch_size: int) -> Schedule:
        """Schedule ``batch_size`` inferences with weights held resident.

        Per layer, compute cycles, activation traffic and MACs scale with
        the batch while off-chip weight traffic (``weight_elems``) is
        paid once — the batched engine (and a weight-stationary tile
        schedule) reuse the loaded weights for every sample.  Each
        layer's pipeline is filled once per batch, not once per sample,
        which is where the modeled batching speedup comes from in the
        compute-bound setting.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        base = self.schedule_deployed(deployed)
        layers = []
        for l in base.layers:
            compute = l.compute_cycles * batch_size
            dma = self._dma_cycles(
                l.input_elems * batch_size, l.weight_elems, l.output_elems * batch_size
            )
            layers.append(
                LayerSchedule(
                    name=l.name,
                    kind=l.kind,
                    cycles=self._finalize(compute, dma),
                    compute_cycles=compute,
                    dma_cycles=dma,
                    macs=l.macs * batch_size,
                    inputs_read=l.inputs_read * batch_size,
                    weights_read=l.weights_read * batch_size,
                    outputs_written=l.outputs_written * batch_size,
                    input_elems=l.input_elems * batch_size,
                    weight_elems=l.weight_elems,
                    output_elems=l.output_elems * batch_size,
                )
            )
        return Schedule(
            network=base.network,
            clock_mhz=self.clock_mhz,
            layers=layers,
            batch_size=batch_size,
        )

    def _schedule_op(self, schedule: Schedule, op: DeployedLayer, shape: tuple) -> tuple:
        if op.kind == "conv":
            c, h, w = shape
            oh = conv_output_size(h, op.kernel_size, op.stride, op.pad)
            ow = conv_output_size(w, op.kernel_size, op.stride, op.pad)
            groups = getattr(op, "groups", 1) or 1
            syn = (op.in_channels // groups) * op.kernel_size * op.kernel_size
            weights = op.out_channels * syn + op.out_channels
            schedule.layers.append(
                self._compute_op(op.name, "conv", op.out_channels, oh * ow, syn, c * h * w, weights)
            )
            return (op.out_channels, oh, ow)
        if op.kind == "dense":
            weights = op.out_features * op.in_features + op.out_features
            schedule.layers.append(
                self._compute_op(
                    op.name, "dense", op.out_features, 1, op.in_features, op.in_features, weights
                )
            )
            return (op.out_features,)
        if op.kind in ("maxpool", "avgpool"):
            c, h, w = shape
            oh = pool_output_size(h, op.kernel_size, op.stride, op.pad, op.ceil_mode)
            ow = pool_output_size(w, op.kernel_size, op.stride, op.pad, op.ceil_mode)
            window = op.kernel_size * op.kernel_size
            schedule.layers.append(
                self._pool_op(op.name, op.kind, c * oh * ow, window, c * h * w)
            )
            return (c, oh, ow)
        if op.kind == "flatten":
            return (int(math.prod(shape)),)
        raise ValueError(f"cannot schedule op kind {op.kind!r}")

    # -- float networks ----------------------------------------------------------------
    def schedule_network(self, net: Network) -> Schedule:
        """Schedule a float network (the FP32 baseline runs the same tiles)."""
        if net.input_shape is None:
            raise ValueError("network needs input_shape for scheduling")
        schedule = Schedule(network=net.name, clock_mhz=self.clock_mhz)
        shape = net.input_shape
        for layer in net.layers:
            if isinstance(layer, Conv2D):
                c, h, w = shape
                oh = conv_output_size(h, layer.kernel_size, layer.stride, layer.pad)
                ow = conv_output_size(w, layer.kernel_size, layer.stride, layer.pad)
                groups = getattr(layer, "groups", 1)
                syn = (layer.in_channels // groups) * layer.kernel_size**2
                weights = layer.out_channels * syn + layer.out_channels
                schedule.layers.append(
                    self._compute_op(
                        layer.name, "conv", layer.out_channels, oh * ow, syn, c * h * w, weights
                    )
                )
            elif isinstance(layer, Dense):
                weights = layer.out_features * layer.in_features + layer.out_features
                schedule.layers.append(
                    self._compute_op(
                        layer.name,
                        "dense",
                        layer.out_features,
                        1,
                        layer.in_features,
                        layer.in_features,
                        weights,
                    )
                )
            elif isinstance(layer, (MaxPool2D, AvgPool2D)):
                c, h, w = shape
                _, oh, ow = layer.output_shape(shape)
                kind = "maxpool" if isinstance(layer, MaxPool2D) else "avgpool"
                schedule.layers.append(
                    self._pool_op(layer.name, kind, c * oh * ow, layer.kernel_size**2, c * h * w)
                )
            elif isinstance(layer, (Flatten, Dropout)):
                pass  # free: reshaping / inference no-op
            elif isinstance(layer, LocalResponseNorm):
                raise ValueError(
                    "LRN cannot be scheduled on this accelerator; the paper removes LRN layers"
                )
            shape = layer.output_shape(shape)
        return schedule
