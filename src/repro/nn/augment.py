"""Training-time data augmentation (the Caffe recipe's mirror + crop).

Augmentation operates on NCHW batches and is applied by the
:class:`~repro.nn.trainer.Trainer` when an ``augment`` callable is
provided.  It never runs at evaluation time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def random_horizontal_flip(x: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Mirror each image left-right with probability ``p``."""
    if x.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {x.shape}")
    flip = rng.random(x.shape[0]) < p
    out = x.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_shift_crop(x: np.ndarray, rng: np.random.Generator, pad: int = 2) -> np.ndarray:
    """Zero-pad by ``pad`` then crop back at a random offset per image.

    Equivalent to a random translation of up to ``pad`` pixels in each
    direction — the small-image analogue of Caffe's random cropping.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {x.shape}")
    if pad < 0:
        raise ValueError("pad must be non-negative")
    if pad == 0:
        return x
    n, c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    out = np.empty_like(x)
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


class Augmenter:
    """Composable batch augmentation: flip then shift-crop.

    Args:
        flip: Enable random horizontal mirroring.
        crop_pad: Shift range in pixels (0 disables).
        rng: Random source; owned by the augmenter so that training
            remains reproducible given its seed.
    """

    def __init__(
        self,
        flip: bool = True,
        crop_pad: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        self.flip = flip
        self.crop_pad = crop_pad
        self.rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic default; bit-identity tests depend on this exact stream)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.flip:
            x = random_horizontal_flip(x, self.rng)
        if self.crop_pad:
            x = random_shift_crop(x, self.rng, self.crop_pad)
        return x
