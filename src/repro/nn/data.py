"""Dataset containers and batching."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class ArrayDataset:
    """In-memory dataset of ``(images, labels)`` arrays.

    Args:
        x: Inputs, first axis is the sample axis.
        y: Integer labels, shape ``(N,)``.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} inputs vs {len(y)} labels")
        if y.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {y.shape}")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, idx):
        return self.x[idx], self.y[idx]

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1

    def subset(self, indices) -> "ArrayDataset":
        """Dataset restricted to ``indices``."""
        return ArrayDataset(self.x[indices], self.y[indices])

    def sample_shape(self) -> tuple:
        return tuple(self.x.shape[1:])


def train_val_split(
    dataset: ArrayDataset, val_fraction: float = 0.1, rng: Optional[np.random.Generator] = None
) -> tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split a dataset into train/validation parts."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic default; bit-identity tests depend on this exact stream)
    order = rng.permutation(len(dataset))
    n_val = max(1, int(round(len(dataset) * val_fraction)))
    return dataset.subset(order[n_val:]), dataset.subset(order[:n_val])


class BatchIterator:
    """Iterate a dataset in mini-batches, optionally shuffled per epoch."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic default; bit-identity tests depend on this exact stream)
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if len(idx) == 0:
                continue
            yield self.dataset.x[idx], self.dataset.y[idx]
