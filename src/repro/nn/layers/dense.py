"""Fully-connected (inner product) layer."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.initializers import resolve_initializer
from repro.nn.layers.base import Layer, Parameter


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W.T + b``.

    Args:
        in_features: Input dimensionality.
        out_features: Output dimensionality.
        bias: Whether to add a bias vector.
        weight_init: Initializer name or callable.
        dtype: Parameter dtype.
        rng: Random generator used for initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: Union[str, callable] = "xavier",
        dtype=np.float32,
        rng: Optional[np.random.Generator] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic init default; golden weight digests depend on it)
        self.in_features = in_features
        self.out_features = out_features
        init = resolve_initializer(weight_init)
        self.weight = Parameter(
            init((out_features, in_features), in_features, out_features, rng, dtype),
            f"{self.name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features, dtype=dtype), f"{self.name}.bias") if bias else None
        self._cache = None

    @property
    def params(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def effective_weight(self) -> np.ndarray:
        w = self.weight.data
        if self.weight_quantizer is not None:
            w = self.weight_quantizer(w)
        return w

    def output_shape(self, input_shape: tuple) -> tuple:
        flat = int(np.prod(input_shape))
        if flat != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, got {flat}"
            )
        return (self.out_features,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"{self.name}: expected 2-D input, got shape {x.shape}")
        w = self.effective_weight()
        y = x @ w.T
        if self.bias is not None:
            y += self.bias.data[None, :]  # in-place: y is freshly allocated
        self._cache = (x, w)
        return self._quantize_output(y)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x, w = self._cache
        self.weight.grad = (grad.T @ x).astype(self.weight.data.dtype, copy=False)
        if self.bias is not None:
            self.bias.grad = grad.sum(axis=0).astype(self.bias.data.dtype, copy=False)
        return grad @ w

    def macs(self, input_shape: tuple) -> int:
        """Multiply-accumulate count for one sample."""
        del input_shape
        return self.in_features * self.out_features
