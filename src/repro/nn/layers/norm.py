"""Local response normalization (cross-channel), as in AlexNet/Caffe.

The paper *removes* LRN layers because they are not amenable to the
multiplier-free hardware.  The layer is still implemented here so that (a)
the original float architectures can be built faithfully and (b) the
"remove LRN" transformation in :mod:`repro.zoo` is an explicit, testable
step rather than an omission.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class LocalResponseNorm(Layer):
    """Cross-channel LRN: ``y_i = x_i / (k + alpha/n * sum_j x_j^2)^beta``.

    The sum runs over ``local_size`` adjacent channels centered on ``i``
    (clipped at the channel boundaries), matching Caffe's
    ``ACROSS_CHANNELS`` mode.
    """

    def __init__(self, local_size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 1.0, name=None):
        super().__init__(name=name)
        if local_size % 2 == 0:
            raise ValueError("local_size must be odd")
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._cache = None

    def _window_sum(self, t: np.ndarray) -> np.ndarray:
        """Sum ``t`` over the channel window for every channel (NCHW)."""
        c = t.shape[1]
        half = self.local_size // 2
        csum = np.cumsum(np.pad(t, ((0, 0), (1, 0), (0, 0), (0, 0))), axis=1)
        lo = np.maximum(np.arange(c) - half, 0)
        hi = np.minimum(np.arange(c) + half + 1, c)
        return csum[:, hi] - csum[:, lo]

    def forward(self, x: np.ndarray) -> np.ndarray:
        sq_sum = self._window_sum(x**2)
        scale = self.k + (self.alpha / self.local_size) * sq_sum
        y = x * scale ** (-self.beta)
        self._cache = (x, scale, y)
        return self._quantize_output(y.astype(x.dtype, copy=False))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x, scale, y = self._cache
        coef = 2.0 * self.alpha * self.beta / self.local_size
        inner = grad * y / scale  # dy_i * x_i * S_i^(-beta-1)
        dx = grad * scale ** (-self.beta) - coef * x * self._window_sum(inner)
        return dx.astype(grad.dtype, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape
