"""Element-wise non-linearity layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit: ``max(x, 0)``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        self._mask = mask
        return self._quantize_output(np.where(mask, x, 0.0).astype(x.dtype, copy=False))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape


class Tanh(Layer):
    """Hyperbolic tangent."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.tanh(x)
        self._y = y
        return self._quantize_output(y)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._y**2)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape


class Sigmoid(Layer):
    """Logistic sigmoid: ``1 / (1 + exp(-x))``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y
        return self._quantize_output(y)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._y * (1.0 - self._y)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape
