"""Layer library: convolution, pooling, dense, activations, regularizers."""

from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.conv import Conv2D, col2im, im2col
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import LocalResponseNorm
from repro.nn.layers.pool import AvgPool2D, MaxPool2D

__all__ = [
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "LocalResponseNorm",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "col2im",
    "im2col",
]
