"""2-D convolution layer with im2col lowering.

The convolution is lowered to a matrix multiplication via ``im2col``, the
same strategy Caffe uses; ``col2im`` scatters gradients back.  Data layout
is NCHW throughout.

Patch geometry is shared infrastructure: :func:`patch_index_table` builds
the flat gather/scatter index tables that both ``col2im`` here and the
compiled inference engine's gather tables
(:mod:`repro.core.engine`) are derived from, memoized per geometry.
"""

from __future__ import annotations

import functools
from typing import Optional, Union

import numpy as np

from repro.nn.initializers import resolve_initializer
from repro.nn.layers.base import Layer, Parameter


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution (floor mode, as in Caffe)."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size: "
            f"input={size}, kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """Lower input patches to columns.

    Args:
        x: Input of shape ``(N, C, H, W)``.
        kh, kw: Kernel height and width.
        stride: Stride (same in both dimensions).
        pad: Zero padding (same on all sides).

    Returns:
        ``(cols, out_h, out_w)`` where ``cols`` has shape
        ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    windows = windows[:, :, :out_h, :out_w, :, :]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


@functools.lru_cache(maxsize=256)
def patch_index_table(
    c: int, h: int, w: int, kh: int, kw: int, stride: int, pad: int, sentinel: bool = False
):
    """Flat patch-index table for one convolution geometry, memoized.

    Returns ``(index, out_h, out_w)`` where ``index`` has shape
    ``(c*kh*kw, out_h*out_w)``: entry ``[t, p]`` is the flat position the
    ``t``-th kernel tap of output position ``p`` reads from (gather) or
    writes to (scatter).

    With ``sentinel=False`` positions index the flattened *padded* input
    ``(c*(h+2*pad)*(w+2*pad),)`` — the scatter space of :func:`col2im`.
    With ``sentinel=True`` they index the flattened unpadded input plus
    one trailing slot ``c*h*w`` holding the padding value — the gather
    space of the compiled inference engine
    (:mod:`repro.core.engine` derives its im2col tables here).

    The table depends only on geometry, so it is cached process-wide and
    returned read-only: every caller shares one frozen array.
    """
    hp, wp = h + 2 * pad, w + 2 * pad
    if sentinel:
        fill = c * h * w
        grid = np.full((1, c, hp, wp), fill, dtype=np.int64)
        grid[0, :, pad : pad + h, pad : pad + w] = np.arange(fill).reshape(c, h, w)
    else:
        grid = np.arange(c * hp * wp).reshape(1, c, hp, wp)
    cols, out_h, out_w = im2col(grid, kh, kw, stride, 0)
    index = cols[0].astype(np.intp)
    index.setflags(write=False)
    return index, out_h, out_w


#: Above this many scatter slots (``n * c*kh*kw * out_h*out_w``) col2im
#: stops caching a batch-combined index and loops over samples instead,
#: bounding cache memory for very large batches.
_COL2IM_COMBINED_LIMIT = 1 << 24


@functools.lru_cache(maxsize=8)
def _col2im_batch_index(
    n: int, c: int, h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Batch-combined flat scatter index for col2im, memoized.

    Extends the geometry table of :func:`patch_index_table` across the
    batch axis so the whole scatter is a single 1-D ``np.add.at`` (the
    fast indexed-ufunc path).  Keyed by batch size as well as geometry;
    the small LRU bounds memory, and callers above
    :data:`_COL2IM_COMBINED_LIMIT` slots never reach this cache.
    """
    index, _, _ = patch_index_table(c, h, w, kh, kw, stride, pad)
    span = c * (h + 2 * pad) * (w + 2 * pad)
    combined = (np.arange(n, dtype=np.intp)[:, None, None] * span + index[None]).reshape(-1)
    combined.setflags(write=False)
    return combined


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scatter columns back to an input-shaped tensor (adjoint of im2col).

    Implemented as a flat-index ``np.add.at`` scatter over the cached
    :func:`patch_index_table` rather than a ``kh*kw`` Python loop.
    Contributions land per target element in kernel-tap order — exactly
    the order the historical per-tap loop added them — so results are
    bit-identical for every float dtype.

    ``out``, if given, is a C-contiguous ``(n, c, h+2*pad, w+2*pad)``
    workspace reused for the padded scatter target (the compiled
    training path passes one per plan); the returned array is its
    unpadded interior view.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    flat = np.ascontiguousarray(cols).reshape(n, -1)
    span = c * hp * wp
    if out is None:
        dx = np.zeros((n, span), dtype=cols.dtype)
    else:
        if out.shape != (n, c, hp, wp) or not out.flags.c_contiguous:
            raise ValueError("out must be a C-contiguous (n, c, h+2p, w+2p) array")
        if out.dtype != cols.dtype:
            raise ValueError(f"out dtype {out.dtype} != cols dtype {cols.dtype}")
        dx = out.reshape(n, span)
        dx[...] = 0
    if n * flat.shape[1] <= _COL2IM_COMBINED_LIMIT:
        np.add.at(
            dx.reshape(-1), _col2im_batch_index(n, c, h, w, kh, kw, stride, pad), flat.reshape(-1)
        )
    else:
        index = patch_index_table(c, h, w, kh, kw, stride, pad)[0].reshape(-1)
        for i in range(n):
            np.add.at(dx[i], index, flat[i])
    dx = dx.reshape(n, c, hp, wp)
    if pad:
        dx = dx[:, :, pad : hp - pad, pad : wp - pad]
    return dx


class Conv2D(Layer):
    """2-D convolution: ``y = W * x + b`` over sliding windows.

    Args:
        in_channels: Number of input feature maps.
        out_channels: Number of kernels / output feature maps.
        kernel_size: Side length of the (square) kernel.
        stride: Spatial stride.
        pad: Zero padding on each side.
        groups: Grouped convolution: input and output channels are split
            into ``groups`` independent blocks (AlexNet's original
            two-column convolutions use ``groups=2``).
        bias: Whether to add a per-output-channel scalar bias.
        weight_init: Initializer name or callable for the kernels.
        dtype: Parameter dtype (float64 useful for gradient checks).
        rng: ``numpy.random.Generator`` used for initialization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
        bias: bool = True,
        weight_init: Union[str, callable] = "he",
        dtype=np.float32,
        rng: Optional[np.random.Generator] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic init default; golden weight digests depend on it)
        if groups < 1 or in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide in_channels={in_channels} "
                f"and out_channels={out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        fan_out = (out_channels // groups) * kernel_size * kernel_size
        init = resolve_initializer(weight_init)
        wshape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init(wshape, fan_in, fan_out, rng, dtype), f"{self.name}.weight")
        self.bias = Parameter(np.zeros(out_channels, dtype=dtype), f"{self.name}.bias") if bias else None
        self._cache = None

    @property
    def params(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def effective_weight(self) -> np.ndarray:
        w = self.weight.data
        if self.weight_quantizer is not None:
            w = self.weight_quantizer(w)
        return w

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.pad
        return (self.out_channels, conv_output_size(h, k, s, p), conv_output_size(w, k, s, p))

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        k, s, p = self.kernel_size, self.stride, self.pad
        g = self.groups
        w = self.effective_weight()
        cols, out_h, out_w = im2col(x, k, k, s, p)
        syn = (self.in_channels // g) * k * k
        # im2col rows are channel-major, so group slicing is contiguous
        cols_g = cols.reshape(n, g, syn, -1)
        w_mat = w.reshape(g, self.out_channels // g, syn)
        y = np.einsum("gfk,ngkp->ngfp", w_mat, cols_g, optimize=True)
        y = y.reshape(n, self.out_channels, -1)
        if self.bias is not None:
            y += self.bias.data[None, :, None]
        y = y.reshape(n, self.out_channels, out_h, out_w)
        self._cache = (x.shape, cols_g, w_mat)
        return self._quantize_output(y)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x_shape, cols_g, w_mat = self._cache
        n = grad.shape[0]
        k, s, p = self.kernel_size, self.stride, self.pad
        g = self.groups
        gr = grad.reshape(n, g, self.out_channels // g, -1)
        dw = np.einsum("ngfp,ngkp->gfk", gr, cols_g, optimize=True)
        self.weight.grad = dw.reshape(self.weight.data.shape).astype(
            self.weight.data.dtype, copy=False
        )
        if self.bias is not None:
            self.bias.grad = gr.sum(axis=(0, 3)).reshape(-1).astype(self.bias.data.dtype, copy=False)
        dcols = np.einsum("gfk,ngfp->ngkp", w_mat, gr, optimize=True)
        dcols = dcols.reshape(n, -1, dcols.shape[-1])
        return col2im(dcols, x_shape, k, k, s, p)

    def macs(self, input_shape: tuple) -> int:
        """Multiply-accumulate count for one sample of ``input_shape``."""
        _, out_h, out_w = self.output_shape(input_shape)
        per_output = (self.in_channels // self.groups) * self.kernel_size * self.kernel_size
        return self.out_channels * out_h * out_w * per_output
