"""Layer and Parameter base classes.

Every layer implements ``forward`` / ``backward`` and exposes its trainable
tensors as :class:`Parameter` objects.  Two hooks make the MF-DFP flow of
the paper possible without subclassing:

``weight_quantizer``
    Callable applied to the *master* (floating-point) weights at forward
    time.  Gradients are computed with respect to the quantized weights and
    applied to the master copy — exactly the shadow-weight scheme of
    Courbariaux et al. adopted in Algorithm 1 of the paper.

``output_quantizer``
    Callable applied to the layer output at forward time (8-bit dynamic
    fixed point in the paper).  The backward pass uses the straight-through
    estimator: gradients flow through the quantizer unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

QuantFn = Callable[[np.ndarray], np.ndarray]


class Parameter:
    """A trainable tensor: master data plus its current gradient.

    Attributes:
        data: Master floating-point value, updated by the optimizer.
        grad: Gradient of the loss with respect to the (possibly quantized)
            value used in the forward pass; same shape as ``data``.
        name: Human-readable identifier, set by the owning network.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad = np.zeros_like(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Layer:
    """Base class for all layers.

    Subclasses override :meth:`forward` and :meth:`backward`; layers with
    trainable state also populate :attr:`params`.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__.lower()
        self.training = False
        self.weight_quantizer: Optional[QuantFn] = None
        self.output_quantizer: Optional[QuantFn] = None

    # -- interface ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list[Parameter]:
        """Trainable parameters of this layer (empty for stateless layers)."""
        return []

    # -- helpers -----------------------------------------------------------
    def _quantize_output(self, y: np.ndarray) -> np.ndarray:
        """Apply the output quantizer, if any (straight-through backward)."""
        if self.output_quantizer is not None:
            return self.output_quantizer(y)
        return y

    def effective_weight(self) -> Optional[np.ndarray]:
        """Weights as seen by the forward pass (after quantization hook)."""
        return None

    def output_shape(self, input_shape: tuple) -> tuple:
        """Shape of the output given a single-sample ``input_shape`` (no batch)."""
        raise NotImplementedError

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
