"""Inverted dropout regularization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout: zero each activation with probability ``p``.

    Active only in training mode; at inference the layer is the identity
    (the 1/(1-p) scaling is applied during training, so no rescale is
    needed at test time).
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None, name=None):
        super().__init__(name=name)
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic default; compiled/eager bit-identity depends on it)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return self._quantize_output(x)
        keep = 1.0 - self.p
        # The mask is materialized in the input dtype: a float64 mask
        # would silently upcast both the output product and the backward
        # gradient of a float32 network.
        self._mask = ((self.rng.random(x.shape) < keep) / keep).astype(x.dtype, copy=False)
        return self._quantize_output((x * self._mask).astype(x.dtype, copy=False))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape
