"""Max and average pooling with Caffe-compatible ceil-mode geometry.

Caffe's pooling layers (used by the paper's ``cifar10_full`` network) use
ceil mode for the output size, so a 32x32 map pooled with kernel 3 /
stride 2 produces 16x16.  Windows that extend past the input border are
clipped: max pooling takes the max over valid elements and average pooling
divides by the number of valid elements in the window.
"""

from __future__ import annotations

import functools
import math
from typing import Optional

import numpy as np

from repro.nn.layers.base import Layer

_NEG_INF = -np.inf


def pool_output_size(size: int, kernel: int, stride: int, pad: int, ceil_mode: bool) -> int:
    """Spatial output size of pooling; ceil mode matches Caffe."""
    num = size + 2 * pad - kernel
    out = (math.ceil(num / stride) if ceil_mode else num // stride) + 1
    if pad > 0 and (out - 1) * stride >= size + pad:
        out -= 1  # Caffe clips windows that start entirely inside the padding
    if out <= 0:
        raise ValueError(
            f"pooling produces non-positive output size: size={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


class _Pool2D(Layer):
    """Shared geometry for max/average pooling."""

    def __init__(
        self,
        kernel_size: int,
        stride: Optional[int] = None,
        pad: int = 0,
        ceil_mode: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.pad = pad
        self.ceil_mode = ceil_mode
        self._cache = None

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.pad
        return (
            c,
            pool_output_size(h, k, s, p, self.ceil_mode),
            pool_output_size(w, k, s, p, self.ceil_mode),
        )

    def _windows(self, x: np.ndarray, fill: float):
        """Return strided windows ``(N, C, oh, ow, k, k)`` over padded input.

        The input is padded with ``fill``: left/top by ``self.pad``,
        right/bottom by ``self.pad`` plus whatever ceil mode requires.
        """
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.pad
        _, oh, ow = self.output_shape((c, h, w))
        need_h = (oh - 1) * s + k
        need_w = (ow - 1) * s + k
        pad_b = max(0, need_h - (h + p))
        pad_r = max(0, need_w - (w + p))
        xp = np.pad(x, ((0, 0), (0, 0), (p, pad_b), (p, pad_r)), constant_values=fill)
        win = np.lib.stride_tricks.sliding_window_view(xp, (k, k), axis=(2, 3))
        win = win[:, :, ::s, ::s, :, :][:, :, :oh, :ow]
        return win, xp.shape, oh, ow

    def _valid_counts(self, x_shape: tuple, oh: int, ow: int) -> np.ndarray:
        """Number of non-padding elements in each pooling window.

        Depends only on geometry, so it is memoized process-wide (the
        eager path used to rebuild a ones-map and its windows on every
        forward pass).  The cached array is read-only and shared.
        """
        _, _, h, w = x_shape
        return pool_valid_counts(h, w, self.kernel_size, self.stride, self.pad, self.ceil_mode)


@functools.lru_cache(maxsize=256)
def pool_valid_counts(
    h: int, w: int, kernel: int, stride: int, pad: int, ceil_mode: bool
) -> np.ndarray:
    """``(oh, ow)`` count of in-bounds elements per pooling window."""
    probe = _Pool2D(kernel, stride=stride, pad=pad, ceil_mode=ceil_mode)
    ones = np.ones((1, 1, h, w), dtype=np.float64)
    win, _, _, _ = probe._windows(ones, fill=0.0)
    counts = win.sum(axis=(-1, -2))[0, 0]  # (oh, ow)
    counts.setflags(write=False)
    return counts


class MaxPool2D(_Pool2D):
    """Max pooling; gradients are routed to the per-window argmax."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        win, xp_shape, oh, ow = self._windows(x, fill=_NEG_INF)
        k = self.kernel_size
        flat = win.reshape(*win.shape[:4], k * k)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, xp_shape, arg, oh, ow)
        return self._quantize_output(np.ascontiguousarray(out))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x_shape, xp_shape, arg, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.pad
        hp, wp = xp_shape[2], xp_shape[3]
        # One flat 1-D scatter (the fast indexed-ufunc path) instead of a
        # broadcast 4-tuple index; iteration order — and therefore float
        # accumulation order per target — is the same C order either way.
        rows = np.arange(oh, dtype=np.intp)[None, None, :, None] * s + arg // k
        cols = np.arange(ow, dtype=np.intp)[None, None, None, :] * s + arg % k
        base = (np.arange(n * c, dtype=np.intp) * hp).reshape(n, c, 1, 1)
        target = (base + rows) * wp + cols
        dxp = np.zeros(xp_shape, dtype=grad.dtype)
        np.add.at(
            dxp.reshape(-1), target.reshape(-1), np.ascontiguousarray(grad).reshape(-1)
        )
        return dxp[:, :, p : p + h, p : p + w]


class AvgPool2D(_Pool2D):
    """Average pooling over the valid (non-padding) part of each window."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        win, xp_shape, oh, ow = self._windows(x, fill=0.0)
        counts = self._valid_counts(x.shape, oh, ow)
        out = win.sum(axis=(-1, -2)) / counts[None, None]
        self._cache = (x.shape, xp_shape, counts, oh, ow)
        return self._quantize_output(out.astype(x.dtype, copy=False))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x_shape, xp_shape, counts, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.pad
        g = grad / counts[None, None]
        dxp = np.zeros(xp_shape, dtype=grad.dtype)
        for i in range(k):
            for j in range(k):
                dxp[:, :, i : i + s * oh : s, j : j + s * ow : s] += g
        return dxp[:, :, p : p + h, p : p + w]
