"""Flatten layer: collapse all non-batch dimensions."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, prod(...))``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return self._quantize_output(x.reshape(x.shape[0], -1))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)

    def output_shape(self, input_shape: tuple) -> tuple:
        return (int(np.prod(input_shape)),)
