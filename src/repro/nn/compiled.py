"""Compiled training fast path: planned workspaces over the eager layers.

Training is the paper's dominant cost (Algorithm 1 fine-tunes every
MF-DFP network for tens of epochs), yet the eager layer stack re-derives
everything on every step: fresh im2col/col2im allocations per conv per
batch, a new set of quantization temporaries at every DFP boundary, and a
full re-quantization of every master weight tensor on every forward —
including the many validation forwards between which no weight changes.

This module gives training the same treatment
:class:`repro.core.engine.BatchedEngine` gave inference, under one hard
constraint the integer engine never faced: float arithmetic is order
sensitive, so the fast path must *replay the eager op sequence exactly* —
same primitives, same operand layouts, same accumulation orders — and win
by eliminating everything around the arithmetic instead:

* **Planned workspaces.**  A :class:`TrainPlan` is compiled per
  ``(input shape, dtype)`` by tracing one eager batch.  Every im2col
  column block, GEMM output, gradient, scatter target and quantization
  scratch is preallocated once and reused via ``out=`` arguments on the
  steady path; a steady-state training step allocates nothing large.
* **Bitwise-verified kernel selection.**  ``np.einsum`` dispatches the
  conv contractions to batched BLAS for most geometries but re-enters
  its Python dispatch machinery on every call.  At plan time each conv
  geometry is *probed*: the direct ``np.matmul`` formulation is compared
  bitwise against the eager einsum on random operands and adopted only
  when equal (falling back to einsum — with or without ``out=``, again
  bitwise-probed — otherwise).  Numerics are never traded for speed.
* **Shared gather tables.**  The col2im scatter and the pooling window
  geometry reuse the process-wide geometry-keyed LRU caches of
  :func:`repro.nn.layers.conv.patch_index_table` and
  :func:`repro.nn.layers.pool.pool_valid_counts` — the same tables the
  compiled inference engine builds its gather indices from.
* **Fused quantized fine-tuning.**  DFP activation quantizers are fused
  into in-place kernels (no int64/float64 round-trip allocations), and
  deterministic weight quantizers are memoized on the *identity of the
  master tensor*: the optimizer rebinding ``param.data`` invalidates the
  entry, so training steps requantize exactly the tensors that changed
  while validation sweeps and the per-epoch MF-DFP snapshot requantize
  nothing.  Stochastic hooks are never cached (each call consumes RNG
  state), keeping bit-identity with the eager path.

Fallback rules: the first batch of every plan runs eagerly (it *is* the
trace), layer types without a planned kernel — LRN, Tanh, Sigmoid, any
user-defined layer — are delegated to the eager layer object inside the
plan, and any change to the network's structure or hook objects drops
the plans and recompiles.  ``Trainer(compiled=True)`` (the default) is
therefore always bit-identical to ``compiled=False``; the regression
suite and ``benchmarks/bench_train_throughput.py`` pin loss/val-error
curves and final weights to exact equality.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D, col2im, conv_output_size
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.activations import ReLU
from repro.nn.layers.pool import AvgPool2D, MaxPool2D, pool_output_size, pool_valid_counts
from repro.nn.network import Network


def _hook_is_pure(hook) -> bool:
    from repro.core.quantizer import hook_is_pure  # lazy: core imports nn

    return hook_is_pure(hook)


def _dfp_fmt(hook):
    """The DFP format of a fusable output/input hook, else None."""
    from repro.core.dfp import DFPQuantizer  # lazy: core imports nn

    if type(hook) is DFPQuantizer:
        return hook.fmt
    return None


def _pow2_fused(hook):
    """Allocation-free kernel for a deterministic power-of-two hook.

    Power-of-two quantization is purely elementwise (|w| → the clamped
    nearest exponent, sign reattached), so any implementation of the
    same per-element function is bit-identical regardless of evaluation
    strategy; this one replays the eager chain — float64 log domain,
    ``rint``, clamp, non-finite→``min_exp``, ``exp2``, sign — through
    three persistent buffers instead of the eager path's eight
    temporaries.  Returns None for hooks it cannot prove equivalent.
    """
    from repro.core.pow2 import Pow2WeightQuantizer  # lazy: core imports nn

    if type(hook) is not Pow2WeightQuantizer or hook.mode != "deterministic":
        return None
    min_exp, max_exp = float(hook.min_exp), float(hook.max_exp)

    def quantize(w: np.ndarray, state: list) -> np.ndarray:
        if not state:
            state.extend(
                (
                    np.empty(w.shape, dtype=np.float64),
                    np.empty(w.shape, dtype=bool),
                    np.empty(w.shape, dtype=w.dtype),
                )
            )
        f64, mask, out = state
        np.copyto(f64, w)
        np.abs(f64, out=f64)
        with np.errstate(divide="ignore"):
            np.log2(f64, out=f64)  # |w| = 0 -> -inf
        np.rint(f64, out=f64)
        np.isfinite(f64, out=mask)
        np.clip(f64, min_exp, max_exp, out=f64)
        np.logical_not(mask, out=mask)
        np.copyto(f64, min_exp, where=mask)  # eager: non-finite e -> min_exp
        np.exp2(f64, out=f64)
        np.less(w, 0, out=mask)  # eager sign: -1 iff w < 0 (so -0.0 -> +1)
        np.negative(f64, out=f64, where=mask)
        np.copyto(out, f64, casting="same_kind")
        return out

    return quantize


class QuantizedWeightCache:
    """Memo of quantized master weights, keyed on master-tensor identity.

    The optimizer publishes each update by rebinding ``param.data`` to a
    new array, so object identity of the master tensor is a precise
    change detector: a hit means the master is the very array the cached
    quantization was computed from (the entry keeps a reference, so the
    id can never be recycled while cached).  Only pure hooks are cached
    — see :func:`repro.core.quantizer.hook_is_pure`.

    Misses through a deterministic power-of-two hook recompute through
    :func:`_pow2_fused` into per-layer persistent buffers (bit-identical
    — the function is elementwise — but allocation-free); other pure
    hooks recompute by calling the hook.
    """

    def __init__(self):
        self._entries: dict[int, tuple] = {}
        self._pow2_state: dict[int, list] = {}
        self.hits = 0
        self.misses = 0

    def effective_weight(self, layer: Layer) -> np.ndarray:
        """The weights the forward pass sees, memoized when pure."""
        hook = layer.weight_quantizer
        weight = layer.weight.data
        if hook is None:
            return weight
        if not _hook_is_pure(hook):
            self.misses += 1
            return hook(weight)
        entry = self._entries.get(id(layer))
        if entry is not None and entry[0] is weight and entry[1] is hook:
            self.hits += 1
            return entry[2]
        fused = _pow2_fused(hook)
        if fused is not None:
            quantized = fused(weight, self._pow2_state.setdefault(id(layer), []))
        else:
            quantized = hook(weight)
        self.misses += 1
        self._entries[id(layer)] = (weight, hook, quantized)
        return quantized

    def clear(self) -> None:
        self._entries.clear()
        self._pow2_state.clear()


class _Scratch:
    """Transient per-plan scratch buffers, grown on demand, one per dtype.

    Only values that never survive past the current kernel live here
    (quantization temporaries, inverted masks, pooling sums); anything a
    backward pass reads is a persistent per-layer workspace instead.
    """

    def __init__(self):
        self._bufs: dict[str, np.ndarray] = {}
        self._views: dict[tuple, np.ndarray] = {}

    def get(self, dtype, shape) -> np.ndarray:
        key = (np.dtype(dtype).str, shape)
        view = self._views.get(key)
        if view is not None:
            return view
        size = int(np.prod(shape))
        buf = self._bufs.get(key[0])
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=dtype)
            self._bufs[key[0]] = buf
            self._views = {k: v for k, v in self._views.items() if k[0] != key[0]}
        view = buf[:size].reshape(shape)
        self._views[key] = view
        return view


def _make_dfp_inplace(fmt, scratch: _Scratch):
    """In-place kernel replaying ``dfp_quantize`` exactly, zero allocations.

    Same chain as the eager hook — float64 scale, ``rint``, the int64
    cast (C truncation semantics preserved for pathological overflow),
    saturation, rescale, cast back — through reused scratch buffers.
    """
    scale = 2.0 ** fmt.frac
    res = fmt.resolution
    lo, hi = np.int64(-fmt.max_code), np.int64(fmt.max_code)

    def apply(y: np.ndarray) -> np.ndarray:
        f64 = scratch.get(np.float64, y.shape)
        i64 = scratch.get(np.int64, y.shape)
        np.multiply(y, scale, out=f64)
        np.rint(f64, out=f64)
        np.copyto(i64, f64, casting="unsafe")
        np.clip(i64, lo, hi, out=i64)
        # int64 * float64 scalar computed in float64, cast per element to
        # y's dtype: same double product and same final rounding as the
        # eager two-step (codes.astype(f64) * res).astype(x.dtype).
        np.multiply(i64, res, out=y, casting="same_kind")
        return y

    return apply


def _make_out_hook(layer: Layer, scratch: _Scratch):
    """The layer's output-quantization step: fused, delegated, or identity."""
    hook = layer.output_quantizer
    if hook is None:
        return lambda y: y
    fmt = _dfp_fmt(hook)
    if fmt is not None:
        return _make_dfp_inplace(fmt, scratch)
    return lambda y: hook(y)


# -- GEMM kernel probes -----------------------------------------------------------
#
# ``np.einsum`` is the eager reference primitive for the conv
# contractions.  These probes decide, once per geometry, whether the
# direct matmul formulation (BLAS without einsum's per-call dispatch) is
# bitwise-identical to it — float summation order is implementation
# detail, so the only acceptable proof is an exact comparison on random
# operands of the actual shapes and dtypes.  A mismatch anywhere keeps
# the eager einsum (with ``out=`` when that, too, probes equal).


@functools.lru_cache(maxsize=1024)
def _conv_fwd_mode(g: int, f: int, syn: int, pos: int, n: int, wdt: str, xdt: str) -> str:
    rng = np.random.default_rng(0xC0FFEE)  # repro-lint: disable=rng-discipline (fixed probe seed for kernel tracing; trace and replay must see identical inputs)
    w = rng.standard_normal((g, f, syn)).astype(wdt)
    cols = rng.standard_normal((n, g, syn, pos)).astype(xdt)
    ref = np.einsum("gfk,ngkp->ngfp", w, cols, optimize=True)
    out = np.empty_like(ref)
    if np.array_equal(np.matmul(w[None], cols, out=out), ref):
        return "matmul"
    if np.array_equal(np.einsum("gfk,ngkp->ngfp", w, cols, out=out, optimize=True), ref):
        return "einsum_out"
    return "einsum"


@functools.lru_cache(maxsize=1024)
def _conv_dcols_mode(g: int, f: int, syn: int, pos: int, n: int, wdt: str, gdt: str) -> str:
    rng = np.random.default_rng(0xBEEF)  # repro-lint: disable=rng-discipline (fixed probe seed for kernel tracing; trace and replay must see identical inputs)
    w = rng.standard_normal((g, f, syn)).astype(wdt)
    gr = rng.standard_normal((n, g, f, pos)).astype(gdt)
    ref = np.einsum("gfk,ngfp->ngkp", w, gr, optimize=True)
    out = np.empty_like(ref)
    # The kernel feeds matmul the transposed *view* (no copy per step);
    # probe the identical call so BLAS takes the identical path.
    if np.array_equal(np.matmul(w.transpose(0, 2, 1)[None], gr, out=out), ref):
        return "matmul"
    if np.array_equal(np.einsum("gfk,ngfp->ngkp", w, gr, out=out, optimize=True), ref):
        return "einsum_out"
    return "einsum"


@functools.lru_cache(maxsize=1024)
def _conv_dw_mode(g: int, f: int, syn: int, pos: int, n: int, gdt: str, xdt: str) -> str:
    """Kernel choice for the weight-gradient contraction ``ngfp,ngkp->gfk``.

    einsum's optimized path merges the contracted ``(n, p)`` axes and
    runs one GEMM per group behind its dispatch machinery; doing the
    merge explicitly (transpose copies into workspaces + ``matmul``)
    computes the identical float sequence for most geometries.  The
    probe requires bitwise equality *and* a wall-clock win before
    adopting the merged kernel — otherwise einsum (with ``out=`` when
    that probes equal) remains the reference.
    """
    rng = np.random.default_rng(0xD00D)  # repro-lint: disable=rng-discipline (fixed probe seed for kernel tracing; trace and replay must see identical inputs)
    gr = rng.standard_normal((n, g, f, pos)).astype(gdt)
    cols = rng.standard_normal((n, g, syn, pos)).astype(xdt)

    def einsum_ref():
        return np.einsum("ngfp,ngkp->gfk", gr, cols, optimize=True)

    ref = einsum_ref()
    out = np.empty_like(ref)
    gr_t = np.empty((g, f, n, pos), dtype=gr.dtype)
    cols_t = np.empty((g, n, pos, syn), dtype=cols.dtype)

    def merged():
        np.copyto(gr_t, gr.transpose(1, 2, 0, 3))
        np.copyto(cols_t, cols.transpose(1, 0, 3, 2))
        return np.matmul(gr_t.reshape(g, f, n * pos), cols_t.reshape(g, n * pos, syn), out=out)

    if np.array_equal(merged(), ref):
        best = {"einsum": min(_time_call(einsum_ref) for _ in range(3)),
                "merged": min(_time_call(merged) for _ in range(3))}
        if best["merged"] < best["einsum"]:
            return "merged"
    if np.array_equal(np.einsum("ngfp,ngkp->gfk", gr, cols, out=out, optimize=True), ref):
        return "einsum_out"
    return "einsum"


def _time_call(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# -- per-layer kernel builders ----------------------------------------------------
#
# Each builder receives the traced input/output array metadata and
# returns ``(forward, make_backward)``:
#   forward(x, training) -> y                 (workspace-backed, eager-exact)
#   make_backward(gshape, gdtype, need_dx) -> fn
#                                             (built lazily at first backward,
#                                              when the incoming grad is known)
# Builders raise to decline a layer, in which case the plan transparently
# delegates that layer to its eager object.
#
# ``need_dx=False`` is dead-code elimination: the trainer discards the
# gradient with respect to the network *input*, so the first layer's
# backward never has to produce it — for a leading convolution that
# deletes an entire GEMM plus the col2im scatter per step.  Parameter
# gradients are computed identically either way.


def _build_conv(layer: Conv2D, in_meta, out_meta, cache, scratch, in_fmt):
    (n, c, h, w), in_dtype = in_meta
    k, s, p, g = layer.kernel_size, layer.stride, layer.pad, layer.groups
    oh = conv_output_size(h, k, s, p)
    ow = conv_output_size(w, k, s, p)
    out_c = layer.out_channels
    f = out_c // g
    syn = (c // g) * k * k
    pos = oh * ow
    hp, wp = h + 2 * p, w + 2 * p
    w_dtype = layer.weight.data.dtype
    y_dtype = np.result_type(in_dtype, w_dtype)

    pad_ws = np.zeros((n, c, hp, wp), dtype=in_dtype) if p else None
    cols_ws = np.empty((n, c, k, k, oh, ow), dtype=in_dtype)
    cols_g = cols_ws.reshape(n, g, syn, pos)
    y_ws = np.empty((n, g, f, pos), dtype=y_dtype)
    fwd_mode = _conv_fwd_mode(g, f, syn, pos, n, w_dtype.str, np.dtype(in_dtype).str)
    out_hook = _make_out_hook(layer, scratch)
    bias = layer.bias
    wshape = layer.weight.data.shape
    cell: list = [None]  # w_mat of the latest forward, for backward

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        if pad_ws is not None:
            pad_ws[:, :, p : p + h, p : p + w] = x
            src = pad_ws
        else:
            src = x
        win = sliding_window_view(src, (k, k), axis=(2, 3))
        win = win[:, :, ::s, ::s, :, :][:, :, :oh, :ow, :, :]
        np.copyto(cols_ws, win.transpose(0, 1, 4, 5, 2, 3))
        w_mat = cache.effective_weight(layer).reshape(g, f, syn)
        if fwd_mode == "matmul":
            np.matmul(w_mat[None], cols_g, out=y_ws)
        elif fwd_mode == "einsum_out":
            np.einsum("gfk,ngkp->ngfp", w_mat, cols_g, out=y_ws, optimize=True)
        else:
            y_ws[...] = np.einsum("gfk,ngkp->ngfp", w_mat, cols_g, optimize=True)
        y = y_ws.reshape(n, out_c, pos)
        if bias is not None:
            y += bias.data[None, :, None]
        cell[0] = w_mat
        return out_hook(y.reshape(n, out_c, oh, ow))

    def make_backward(gshape, gdtype, need_dx):
        gdt = np.dtype(gdtype)
        dw_dtype = np.result_type(gdt, in_dtype)
        dw_ws = np.empty((g, f, syn), dtype=dw_dtype)
        bsum_ws = np.empty((g, f), dtype=gdt) if bias is not None else None
        dw_mode = _conv_dw_mode(g, f, syn, pos, n, gdt.str, np.dtype(in_dtype).str)
        if dw_mode == "merged":
            gr_t_ws = np.empty((g, f, n, pos), dtype=gdt)
            cols_t_ws = np.empty((g, n, pos, syn), dtype=in_dtype)
        if need_dx:
            dcols_dtype = np.result_type(w_dtype, gdt)
            dcols_ws = np.empty((n, g, syn, pos), dtype=dcols_dtype)
            dx_ws = np.empty((n, c, hp, wp), dtype=dcols_dtype)
            dcols_mode = _conv_dcols_mode(g, f, syn, pos, n, w_dtype.str, gdt.str)

        def backward(grad: np.ndarray) -> np.ndarray:
            gr = grad.reshape(n, g, f, pos)
            if dw_mode == "merged":
                np.copyto(gr_t_ws, gr.transpose(1, 2, 0, 3))
                np.copyto(cols_t_ws, cols_g.transpose(1, 0, 3, 2))
                np.matmul(
                    gr_t_ws.reshape(g, f, n * pos),
                    cols_t_ws.reshape(g, n * pos, syn),
                    out=dw_ws,
                )
                dw = dw_ws
            elif dw_mode == "einsum_out":
                np.einsum("ngfp,ngkp->gfk", gr, cols_g, out=dw_ws, optimize=True)
                dw = dw_ws
            else:
                dw = np.einsum("ngfp,ngkp->gfk", gr, cols_g, optimize=True)
            # Copies, not workspace views: eager backward hands out fresh
            # grad arrays each step, so a caller that keeps param.grad
            # across steps must not see it mutate under the next batch.
            # Parameter-sized copies are noise next to the activations.
            layer.weight.grad = dw.reshape(wshape).astype(w_dtype, copy=True)
            if bias is not None:
                np.sum(gr, axis=(0, 3), out=bsum_ws)
                layer.bias.grad = bsum_ws.reshape(-1).astype(bias.data.dtype, copy=True)
            if not need_dx:
                return None
            w_mat = cell[0]
            if dcols_mode == "matmul":
                np.matmul(w_mat.transpose(0, 2, 1)[None], gr, out=dcols_ws)
            elif dcols_mode == "einsum_out":
                np.einsum("gfk,ngfp->ngkp", w_mat, gr, out=dcols_ws, optimize=True)
            else:
                dcols_ws[...] = np.einsum("gfk,ngfp->ngkp", w_mat, gr, optimize=True)
            return col2im(dcols_ws.reshape(n, g * syn, pos), (n, c, h, w), k, k, s, p, out=dx_ws)

        return backward

    return forward, make_backward


def _build_dense(layer: Dense, in_meta, out_meta, cache, scratch, in_fmt):
    (n, in_f), in_dtype = in_meta
    if in_f != layer.in_features:
        raise ValueError("traced shape disagrees with layer geometry")
    out_f = layer.out_features
    w_dtype = layer.weight.data.dtype
    y_ws = np.empty((n, out_f), dtype=np.result_type(in_dtype, w_dtype))
    out_hook = _make_out_hook(layer, scratch)
    bias = layer.bias
    cell: list = [None]

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        wq = cache.effective_weight(layer)
        y = y_ws
        np.matmul(x, wq.T, out=y)
        if bias is not None:
            y += bias.data[None, :]
        cell[0] = (x, wq)
        return out_hook(y)

    def make_backward(gshape, gdtype, need_dx):
        gdt = np.dtype(gdtype)
        dw_ws = np.empty((out_f, in_f), dtype=np.result_type(gdt, in_dtype))
        bsum_ws = np.empty(out_f, dtype=gdt) if bias is not None else None
        if need_dx:
            dx_ws = np.empty((n, in_f), dtype=np.result_type(gdt, w_dtype))

        def backward(grad: np.ndarray) -> np.ndarray:
            x, wq = cell[0]
            np.matmul(grad.T, x, out=dw_ws)
            # Copies for the same reason as the conv builder: param.grad
            # must not be a view of a reused workspace.
            layer.weight.grad = dw_ws.astype(w_dtype, copy=True)
            if bias is not None:
                np.sum(grad, axis=0, out=bsum_ws)
                layer.bias.grad = bsum_ws.astype(bias.data.dtype, copy=True)
            if not need_dx:
                return None
            np.matmul(grad, wq, out=dx_ws)
            return dx_ws

        return backward

    return forward, make_backward


def _build_relu(layer: ReLU, in_meta, out_meta, cache, scratch, in_fmt):
    shape, dtype = in_meta
    mask_ws = np.empty(shape, dtype=bool)  # persists: backward reads it
    y_ws = np.empty(shape, dtype=dtype)
    out_hook = _make_out_hook(layer, scratch)

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        np.greater(x, 0, out=mask_ws)
        # fmax(x, 0.0) equals where(x > 0, x, 0.0) for *every* input
        # class — x > 0 passes through, x <= 0 and -0.0 give +0.0, and
        # fmax ignores NaN exactly as the False mask does — in one
        # vectorized pass instead of masked fills.
        np.fmax(x, 0.0, out=y_ws)
        return out_hook(y_ws)

    def make_backward(gshape, gdtype, need_dx):
        if not need_dx:
            return lambda grad: None
        g_ws = np.empty(shape, dtype=gdtype)

        def backward(grad: np.ndarray) -> np.ndarray:
            np.multiply(grad, mask_ws, out=g_ws)
            return g_ws

        return backward

    return forward, make_backward


def _pool_geometry(layer, h, w):
    k, s, p = layer.kernel_size, layer.stride, layer.pad
    oh = pool_output_size(h, k, s, p, layer.ceil_mode)
    ow = pool_output_size(w, k, s, p, layer.ceil_mode)
    pad_b = max(0, (oh - 1) * s + k - (h + p))
    pad_r = max(0, (ow - 1) * s + k - (w + p))
    return k, s, p, oh, ow, h + p + pad_b, w + p + pad_r


def _build_maxpool(layer: MaxPool2D, in_meta, out_meta, cache, scratch, in_fmt):
    (n, c, h, w), dtype = in_meta
    k, s, p, oh, ow, hp, wp = _pool_geometry(layer, h, w)
    xp_ws = np.full((n, c, hp, wp), -np.inf, dtype=dtype)  # border stays -inf
    flat_ws = np.empty((n, c, oh, ow, k, k), dtype=dtype)
    flat = flat_ws.reshape(n, c, oh, ow, k * k)
    arg_ws = np.empty((n, c, oh, ow), dtype=np.intp)  # persists: backward reads it
    y_ws = np.empty((n, c, oh, ow), dtype=dtype)
    out_hook = _make_out_hook(layer, scratch)
    # Inference-mode fast path: with a DFP output hook, a tap-by-tap
    # ``np.maximum`` accumulation (no window materialization, no argmax)
    # is bit-identical *post-hook* — a +0.0/-0.0 tie is the only value
    # the max scan order can change, and both cast to code 0; NaN
    # propagates through maximum exactly as through argmax-and-gather.
    # Training forwards always materialize argmax for the backward scatter.
    eval_fast = _dfp_fmt(layer.output_quantizer) is not None

    take_base = np.arange(n * c * oh * ow, dtype=np.intp) * (k * k)

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        xp_ws[:, :, p : p + h, p : p + w] = x
        if eval_fast and not training:
            y_ws[...] = xp_ws[:, :, : s * oh : s, : s * ow : s]
            for i in range(k):
                for j in range(k):
                    if i or j:
                        np.maximum(
                            y_ws,
                            xp_ws[:, :, i : i + s * oh : s, j : j + s * ow : s],
                            out=y_ws,
                        )
            return out_hook(y_ws)
        # Tap-by-tap strided copies beat one 6-D transposed copyto here
        # (few taps, large contiguous runs); element order per window is
        # the (i, j) order of the eager reshape, so argmax tie-breaking
        # is unchanged.
        for i in range(k):
            for j in range(k):
                flat_ws[:, :, :, :, i, j] = xp_ws[:, :, i : i + s * oh : s, j : j + s * ow : s]
        np.argmax(flat, axis=-1, out=arg_ws)
        take_idx = scratch.get(np.intp, (n * c * oh * ow,))
        np.add(take_base, arg_ws.reshape(-1), out=take_idx)
        np.take(flat.reshape(-1), take_idx, out=y_ws.reshape(-1))
        return out_hook(y_ws)

    rows_base = np.arange(oh, dtype=np.intp)[None, None, :, None] * s
    cols_base = np.arange(ow, dtype=np.intp)[None, None, None, :] * s
    nc_base = (np.arange(n * c, dtype=np.intp) * hp).reshape(n, c, 1, 1)

    def make_backward(gshape, gdtype, need_dx):
        if not need_dx:
            return lambda grad: None
        dxp_ws = np.empty((n, c, hp, wp), dtype=gdtype)
        target_ws = np.empty((n, c, oh, ow), dtype=np.intp)

        def backward(grad: np.ndarray) -> np.ndarray:
            target = target_ws
            np.floor_divide(arg_ws, k, out=target)
            target += rows_base
            target += nc_base
            target *= wp
            rem = scratch.get(np.intp, (n, c, oh, ow))
            np.remainder(arg_ws, k, out=rem)
            target += rem
            target += cols_base
            dxp_ws[...] = 0
            np.add.at(
                dxp_ws.reshape(-1),
                target.reshape(-1),
                np.ascontiguousarray(grad).reshape(-1),
            )
            return dxp_ws[:, :, p : p + h, p : p + w]

        return backward

    return forward, make_backward


def _build_avgpool(layer: AvgPool2D, in_meta, out_meta, cache, scratch, in_fmt):
    (n, c, h, w), dtype = in_meta
    k, s, p, oh, ow, hp, wp = _pool_geometry(layer, h, w)
    counts = pool_valid_counts(h, w, k, s, p, layer.ceil_mode)[None, None]
    xp_ws = np.zeros((n, c, hp, wp), dtype=dtype)  # border stays 0
    y_ws = np.empty((n, c, oh, ow), dtype=dtype)
    out_hook = _make_out_hook(layer, scratch)
    # Exactness-aware kernel selection: when the input arrives from a DFP
    # boundary, every element is code * 2^-f with |code| <= 2^(b-1)-1, so
    # any partial window sum is an integer multiple of 2^-f bounded by
    # k^2 * max_code * 2^-f.  If k^2 * max_code fits the float mantissa,
    # every partial sum is exactly representable and summation order
    # cannot change the result — the cheap tap-by-tap accumulation is
    # bit-identical to the eager pairwise ``win.sum``.  (The same
    # argument the integer engine uses to run its GEMMs in float64.)
    mantissa = 2 ** (53 if np.dtype(dtype) == np.float64 else 24)
    exact = (
        in_fmt is not None
        and np.dtype(dtype).kind == "f"
        and k * k * in_fmt.max_code <= mantissa
    )

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        xp_ws[:, :, p : p + h, p : p + w] = x
        sums = scratch.get(dtype, (n, c, oh, ow))
        if exact:
            sums[...] = 0.0
            for i in range(k):
                for j in range(k):
                    sums += xp_ws[:, :, i : i + s * oh : s, j : j + s * ow : s]
        else:
            win = sliding_window_view(xp_ws, (k, k), axis=(2, 3))[:, :, ::s, ::s][:, :, :oh, :ow]
            win.sum(axis=(-1, -2), out=sums)
        f64 = scratch.get(np.float64, (n, c, oh, ow))
        np.divide(sums, counts, out=f64)
        np.copyto(y_ws, f64, casting="same_kind")
        return out_hook(y_ws)

    def make_backward(gshape, gdtype, need_dx):
        if not need_dx:
            return lambda grad: None
        g64_ws = np.empty((n, c, oh, ow), dtype=np.float64)
        dxp_ws = np.empty((n, c, hp, wp), dtype=gdtype)

        def backward(grad: np.ndarray) -> np.ndarray:
            np.divide(grad, counts, out=g64_ws)
            dxp_ws[...] = 0
            for i in range(k):
                for j in range(k):
                    dxp_ws[:, :, i : i + s * oh : s, j : j + s * ow : s] += g64_ws
            return dxp_ws[:, :, p : p + h, p : p + w]

        return backward

    return forward, make_backward


def _build_flatten(layer: Flatten, in_meta, out_meta, cache, scratch, in_fmt):
    shape, dtype = in_meta
    n = shape[0]
    features = int(np.prod(shape[1:]))
    out_hook = _make_out_hook(layer, scratch)

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        return out_hook(x.reshape(n, features))

    def make_backward(gshape, gdtype, need_dx):
        if not need_dx:
            return lambda grad: None

        def backward(grad: np.ndarray) -> np.ndarray:
            return grad.reshape(shape)

        return backward

    return forward, make_backward


def _build_dropout(layer: Dropout, in_meta, out_meta, cache, scratch, in_fmt):
    shape, dtype = in_meta
    mask_ws = np.empty(shape, dtype=dtype)  # persists: backward reads it
    y_ws = np.empty(shape, dtype=dtype)
    out_hook = _make_out_hook(layer, scratch)
    active: list = [False]

    def forward(x: np.ndarray, training: bool) -> np.ndarray:
        keep = 1.0 - layer.p  # read live: mutating layer.p mid-training works
        if not training or layer.p == 0.0:
            active[0] = False
            return out_hook(x)
        active[0] = True
        r64 = scratch.get(np.float64, shape)
        layer.rng.random(out=r64)
        keep_mask = scratch.get(bool, shape)
        np.less(r64, keep, out=keep_mask)
        m64 = scratch.get(np.float64, shape)
        np.divide(keep_mask, keep, out=m64)
        np.copyto(mask_ws, m64, casting="same_kind")
        np.multiply(x, mask_ws, out=y_ws)
        return out_hook(y_ws)

    def make_backward(gshape, gdtype, need_dx):
        if not need_dx:
            return lambda grad: None
        g_ws = np.empty(shape, dtype=gdtype)

        def backward(grad: np.ndarray) -> np.ndarray:
            if not active[0]:
                return grad
            np.multiply(grad, mask_ws, out=g_ws)
            return g_ws

        return backward

    return forward, make_backward


#: Exact-type dispatch: subclasses may override semantics, so they are
#: delegated to their eager objects instead of silently planned.
_BUILDERS = {
    Conv2D: _build_conv,
    Dense: _build_dense,
    ReLU: _build_relu,
    MaxPool2D: _build_maxpool,
    AvgPool2D: _build_avgpool,
    Flatten: _build_flatten,
    Dropout: _build_dropout,
}


class _Step:
    """One planned layer: its kernels plus profiling accumulators."""

    __slots__ = (
        "layer",
        "name",
        "kind",
        "delegated",
        "fwd",
        "make_bwd",
        "bwd",
        "fwd_s",
        "bwd_s",
        "fwd_calls",
        "bwd_calls",
    )

    def __init__(self, layer: Layer):
        self.layer = layer
        self.name = layer.name
        self.kind = type(layer).__name__
        self.delegated = False
        self.fwd: Optional[Callable] = None
        self.make_bwd: Optional[Callable] = None
        self.bwd: Optional[Callable] = None
        self.fwd_s = 0.0
        self.bwd_s = 0.0
        self.fwd_calls = 0
        self.bwd_calls = 0


class TrainPlan:
    """A compiled forward/backward program for one ``(shape, dtype)``.

    Built by *tracing*: the first batch runs through the eager layers
    (recording every intermediate array's shape and dtype — and serving
    as that step's bit-exact execution), after which per-layer kernels
    with preallocated workspaces replay the identical op sequence.
    Backward kernels are created lazily on the first backward pass, when
    the incoming gradient's dtype is known.
    """

    def __init__(self, net: Network, cache: QuantizedWeightCache, profile: bool = False):
        self.net = net
        self.cache = cache
        self.profile = profile
        self.scratch = _Scratch()
        self.steps: Optional[list[_Step]] = None
        self.input_fn: Optional[Callable] = None
        self.delegated_layers: list[str] = []
        self._cells_ready = False  # True once a compiled forward populated cells

    # -- compilation -------------------------------------------------------
    def _build_input(self, x_meta):
        hook = self.net.input_quantizer
        if hook is None:
            return None
        fmt = _dfp_fmt(hook)
        if fmt is None:
            return lambda x: hook(x)
        shape, dtype = x_meta
        in_ws = np.empty(shape, dtype=dtype)
        fused = _make_dfp_inplace(fmt, self.scratch)

        def quantize_input(x: np.ndarray) -> np.ndarray:
            np.copyto(in_ws, x)
            return fused(in_ws)

        return quantize_input

    def _trace_forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Eager forward that doubles as the compile pass."""
        net = self.net
        out = x
        if net.input_quantizer is not None:
            out = net.input_quantizer(out)
        self.input_fn = self._build_input((out.shape, out.dtype))
        steps = []
        in_fmt = _dfp_fmt(net.input_quantizer)
        for layer in net.layers:
            step = _Step(layer)
            in_meta = (out.shape, out.dtype)
            out = layer.forward(out)
            builder = _BUILDERS.get(type(layer))
            if builder is not None:
                try:
                    step.fwd, step.make_bwd = builder(
                        layer, in_meta, (out.shape, out.dtype), self.cache, self.scratch, in_fmt
                    )
                except Exception:
                    builder = None
            if builder is None:
                step.delegated = True
                step.fwd = lambda x, training, _l=layer: _l.forward(x)
                step.make_bwd = lambda gshape, gdtype, need_dx, _l=layer: _l.backward
                self.delegated_layers.append(layer.name)
            in_fmt = _dfp_fmt(layer.output_quantizer)
            steps.append(step)
        self.steps = steps
        self._cells_ready = False
        return out

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self.net.set_training(training)
        if self.steps is None:
            return self._trace_forward(x, training)  # trace step, not profiled
        if self.input_fn is not None:
            x = self.input_fn(x)
        self._cells_ready = True
        if self.profile:
            for step in self.steps:
                t0 = time.perf_counter()
                x = step.fwd(x, training)
                step.fwd_s += time.perf_counter() - t0
                step.fwd_calls += 1
            return x
        for step in self.steps:
            x = step.fwd(x, training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.steps is None:
            raise RuntimeError("backward called before forward")
        eager = not self._cells_ready  # the trace batch: layer caches are eager
        first = self.steps[0]
        for step in reversed(self.steps):
            if step.bwd is None:
                # The first layer's input gradient is dead code: the
                # trainer never consumes dL/dinput.
                step.bwd = step.make_bwd(grad.shape, grad.dtype, step is not first)
            fn = step.layer.backward if eager else step.bwd
            if self.profile:
                t0 = time.perf_counter()
                grad = fn(grad)
                step.bwd_s += time.perf_counter() - t0
                step.bwd_calls += 1
            else:
                grad = fn(grad)
        return grad


class CompiledTrainer:
    """Compiled training executor for one :class:`Network`.

    Owns one :class:`TrainPlan` per distinct input ``(shape, dtype)``
    (the full training batch, the trailing partial batch, and each
    evaluation batch size get their own plans and workspaces) plus the
    shared :class:`QuantizedWeightCache`.  A cheap structural signature
    — layer and hook object identities and hook parameters — is checked
    on every forward; any change drops the plans and recompiles, so
    mutating quantization hooks mid-training stays correct.

    All execution is bit-identical to the eager ``Network`` path by
    construction; see the module docstring for the argument.
    """

    def __init__(self, net: Network, profile: bool = False):
        self.net = net
        self.profile = profile
        self.quant_cache = QuantizedWeightCache()
        self._plans: dict[tuple, TrainPlan] = {}
        self._last_plan: Optional[TrainPlan] = None
        self._signature = self._net_signature()

    def _net_signature(self) -> tuple:
        net = self.net
        iq = net.input_quantizer
        sig = [id(iq), getattr(iq, "fmt", None)]
        for layer in net.layers:
            wq, oq = layer.weight_quantizer, layer.output_quantizer
            sig.append(
                (
                    id(layer),
                    id(wq),
                    id(oq),
                    getattr(wq, "mode", None),
                    getattr(wq, "min_exp", None),
                    getattr(wq, "max_exp", None),
                    getattr(oq, "fmt", None),
                )
            )
        return tuple(sig)

    def _invalidate_if_changed(self) -> None:
        sig = self._net_signature()
        if sig != self._signature:
            self._plans.clear()
            self.quant_cache.clear()
            self._signature = sig

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network on a batch (bit-identical to ``net.forward``)."""
        x = np.asarray(x)
        self._invalidate_if_changed()
        key = (x.shape, x.dtype.str)
        plan = self._plans.get(key)
        if plan is None:
            plan = TrainPlan(self.net, self.quant_cache, profile=self.profile)
            self._plans[key] = plan
        self._last_plan = plan
        return plan.forward(x, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the most recent forward's plan."""
        if self._last_plan is None:
            raise RuntimeError("backward called before forward")
        return self._last_plan.backward(grad)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (mirrors ``Network.logits``)."""
        return self.forward(x, training=False)

    # -- introspection -----------------------------------------------------
    def quantized_weights(self) -> dict[str, np.ndarray]:
        """Weights as the forward pass sees them, served from the cache.

        Bit-identical to ``MFDFPNetwork.quantized_weights`` but
        requantizes only tensors whose master changed since the cache
        last saw them — after an epoch's validation sweep, a snapshot is
        pure cache hits.  Returned arrays are shared with the cache;
        copy before mutating.
        """
        out = {}
        for layer in self.net.layers:
            if getattr(layer, "weight", None) is not None:
                out[layer.name] = self.quant_cache.effective_weight(layer)
            else:
                w = layer.effective_weight()
                if w is not None:
                    out[layer.name] = w
        return out

    def plan_count(self) -> int:
        return len(self._plans)

    def profile_rows(self) -> list[dict]:
        """Per-layer forward/backward seconds, aggregated over all plans."""
        by_name: dict[str, dict] = {}
        for plan in self._plans.values():
            for step in plan.steps or []:
                row = by_name.setdefault(
                    step.name,
                    {
                        "layer": step.name,
                        "kind": step.kind,
                        "delegated": step.delegated,
                        "forward_s": 0.0,
                        "backward_s": 0.0,
                        "calls": 0,
                    },
                )
                row["forward_s"] += step.fwd_s
                row["backward_s"] += step.bwd_s
                row["calls"] += step.fwd_calls
        order = {layer.name: i for i, layer in enumerate(self.net.layers)}
        return sorted(by_name.values(), key=lambda r: order.get(r["layer"], 1 << 30))


def format_profile(rows: list[dict]) -> str:
    """Render :meth:`CompiledTrainer.profile_rows` as a table."""
    lines = [f"{'layer':<14}{'kind':<14}{'fwd s':>10}{'bwd s':>10}{'total s':>10}  note"]
    lines.append("-" * len(lines[0]))
    total_f = total_b = 0.0
    for row in rows:
        total_f += row["forward_s"]
        total_b += row["backward_s"]
        note = "eager (delegated)" if row.get("delegated") else ""
        lines.append(
            f"{row['layer']:<14}{row['kind']:<14}{row['forward_s']:>10.4f}"
            f"{row['backward_s']:>10.4f}{row['forward_s'] + row['backward_s']:>10.4f}  {note}"
        )
    lines.append(
        f"{'total':<28}{total_f:>10.4f}{total_b:>10.4f}{total_f + total_b:>10.4f}"
    )
    return "\n".join(lines)
