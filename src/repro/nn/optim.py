"""Optimizers and learning-rate schedules.

The paper fine-tunes with SGD, starting at 1e-3, dividing the rate by 10
whenever learning levels off, and stopping once it drops below 1e-7.
:class:`PlateauScheduler` implements exactly that policy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers.base import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Update rule (Caffe-style):
        ``v = momentum * v - lr * (grad + weight_decay * w)``
        ``w += v``
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update using each parameter's current gradient."""
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * g
            p.data = p.data + v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    # -- persistence (exact resume) ---------------------------------------
    def state_dict(self) -> dict:
        """Complete optimizer state: hyper-parameters + velocity copies.

        Velocity buffers are keyed by parameter name, so the state can be
        restored into a freshly built optimizer over an identically named
        parameter list (a resumed process).
        """
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": {p.name: v.copy() for p, v in zip(self.params, self._velocity)},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (strict name/shape match)."""
        velocity = state["velocity"]
        own = [p.name for p in self.params]
        if set(own) != set(velocity):
            missing = set(own) ^ set(velocity)
            raise ValueError(f"optimizer state name mismatch: {sorted(missing)}")
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        new = []
        for p, v in zip(self.params, self._velocity):
            value = np.asarray(velocity[p.name])
            if value.shape != v.shape:
                raise ValueError(
                    f"velocity for {p.name!r}: shape {value.shape} != {v.shape}"
                )
            new.append(value.astype(v.dtype).copy())
        self._velocity = new


class StepScheduler:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self, metric: float | None = None) -> None:
        """Advance one epoch (``metric`` accepted for interface parity)."""
        del metric
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    def state_dict(self) -> dict:
        """Schedule progress (the LR itself lives in the optimizer state)."""
        return {"epoch": self._epoch}

    def load_state_dict(self, state: dict) -> None:
        self._epoch = int(state["epoch"])


class PlateauScheduler:
    """Divide the learning rate when the monitored metric stops improving.

    Implements the paper's schedule: "decrease the rate by a factor of 10
    when learning levels off and stop the training when the learning rate
    drops below 1e-07".  :attr:`finished` turns True at that point.
    """

    def __init__(
        self,
        optimizer: SGD,
        factor: float = 0.1,
        patience: int = 3,
        min_lr: float = 1e-7,
        threshold: float = 1e-4,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self.best = np.inf
        self._bad_epochs = 0
        self.finished = False

    def step(self, metric: float) -> None:
        """Record the epoch's monitored metric (lower is better)."""
        if metric < self.best - self.threshold:
            self.best = metric
            self._bad_epochs = 0
            return
        self._bad_epochs += 1
        if self._bad_epochs > self.patience:
            self.optimizer.lr *= self.factor
            self._bad_epochs = 0
            if self.optimizer.lr < self.min_lr:
                self.finished = True

    def state_dict(self) -> dict:
        """Plateau-tracking state for exact resume.

        ``best`` may be ``inf`` (no improvement recorded yet); JSON
        round-trips it as ``Infinity``, bit-exactly.
        """
        return {
            "best": float(self.best),
            "bad_epochs": self._bad_epochs,
            "finished": self.finished,
        }

    def load_state_dict(self, state: dict) -> None:
        self.best = float(state["best"])
        self._bad_epochs = int(state["bad_epochs"])
        self.finished = bool(state["finished"])
