"""Sequential network container."""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.nn.layers.base import Layer, Parameter


class Network:
    """A feed-forward stack of layers.

    Args:
        layers: The layers, applied in order.
        input_shape: Optional single-sample input shape ``(C, H, W)`` or
            ``(D,)``; enables :meth:`summary` and shape inference.
        name: Network identifier (used in reports).

    The optional :attr:`input_quantizer` is applied to the raw input before
    the first layer — the paper quantizes input data to 8-bit fixed point.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Optional[tuple] = None,
        name: str = "net",
    ):
        self.layers = list(layers)
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.name = name
        self.input_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None
        seen: dict[str, int] = {}
        for layer in self.layers:
            base = layer.name
            if base in seen:
                seen[base] += 1
                layer.name = f"{base}_{seen[base]}"
            else:
                seen[base] = 0
            for p in layer.params:
                p.name = f"{layer.name}.{p.name.rsplit('.', 1)[-1]}"

    # -- execution ---------------------------------------------------------
    def set_training(self, training: bool) -> None:
        """Set every layer's training flag (shared with the compiled path)."""
        for layer in self.layers:
            layer.training = training

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network; returns the final layer output (logits)."""
        self.set_training(training)
        if self.input_quantizer is not None:
            x = self.input_quantizer(x)
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (dL/dlogits); returns dL/dinput."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch."""
        return self.logits(x).argmax(axis=1)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameters --------------------------------------------------------
    @property
    def params(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.params]

    def param_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def get_weights(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed by name."""
        return {p.name: p.data.copy() for p in self.params}

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Load parameters from :meth:`get_weights` output (strict match)."""
        own = {p.name: p for p in self.params}
        if set(own) != set(weights):
            missing = set(own) ^ set(weights)
            raise KeyError(f"weight name mismatch: {sorted(missing)}")
        for name, value in weights.items():
            p = own[name]
            if p.data.shape != value.shape:
                raise ValueError(f"{name}: shape {value.shape} != {p.data.shape}")
            p.data = value.astype(p.data.dtype).copy()

    def save(self, path) -> None:
        """Serialize parameters to an ``.npz`` file."""
        np.savez(path, **self.get_weights())

    def load(self, path) -> None:
        """Load parameters saved with :meth:`save`."""
        with np.load(path) as data:
            self.set_weights({k: data[k] for k in data.files})

    def clone(self) -> "Network":
        """Deep copy of the network (structure, weights, and hooks)."""
        return copy.deepcopy(self)

    # -- introspection -----------------------------------------------------
    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in {self.name!r}")

    def compute_layers(self) -> list[Layer]:
        """Layers with trainable weights (conv/dense) in execution order."""
        return [layer for layer in self.layers if layer.params]

    def layer_shapes(self) -> list[tuple[str, tuple]]:
        """(layer name, single-sample output shape) pairs, in order.

        Requires ``input_shape`` to have been provided.
        """
        if self.input_shape is None:
            raise ValueError("network was built without input_shape")
        shapes = []
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append((layer.name, shape))
        return shapes

    def summary(self) -> str:
        """Human-readable table of layers, shapes and parameter counts."""
        lines = [f"Network {self.name!r}"]
        header = f"{'layer':<18}{'output shape':<20}{'params':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        shapes: Iterable = self.layer_shapes() if self.input_shape else ((l.name, "?") for l in self.layers)
        by_name = {layer.name: layer for layer in self.layers}
        for lname, shape in shapes:
            n = sum(p.size for p in by_name[lname].params)
            lines.append(f"{lname:<18}{str(shape):<20}{n:>10}")
        lines.append("-" * len(header))
        lines.append(f"{'total':<38}{self.param_count():>10}")
        return "\n".join(lines)
