"""Training loop, evaluation helpers, and history tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.nn.data import ArrayDataset, BatchIterator
from repro.nn.loss import Loss, SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optim import SGD, PlateauScheduler


def topk_correct(
    net: Network, x: np.ndarray, y: np.ndarray, k: int = 1, batch_size: int = 256
) -> int:
    """Number of samples whose label lands in the top-k logits.

    The chunked evaluation primitive shared by :func:`evaluate_topk` and
    the analysis campaign runner (:mod:`repro.analysis.campaign`): one
    forward pass per ``batch_size`` slice, never materializing logits
    for the whole set at once.
    """
    correct = 0
    for start in range(0, len(x), batch_size):
        logits = net.logits(x[start : start + batch_size])
        topk = np.argpartition(-logits, kth=min(k, logits.shape[1] - 1), axis=1)[:, :k]
        correct += int((topk == y[start : start + batch_size, None]).any(axis=1).sum())
    return correct


def evaluate_topk(net: Network, dataset: ArrayDataset, k: int = 1, batch_size: int = 256) -> float:
    """Top-k classification accuracy of ``net`` on ``dataset`` (fraction)."""
    return topk_correct(net, dataset.x, dataset.y, k=k, batch_size=batch_size) / len(dataset)


def error_rate(net: Network, dataset: ArrayDataset, batch_size: int = 256) -> float:
    """Top-1 error rate (1 - accuracy)."""
    return 1.0 - evaluate_topk(net, dataset, k=1, batch_size=batch_size)


@dataclass
class EpochResult:
    """Metrics recorded after each training epoch."""

    epoch: int
    train_loss: float
    val_error: float
    lr: float


@dataclass
class TrainHistory:
    """Sequence of per-epoch results with convenience accessors."""

    epochs: list[EpochResult] = field(default_factory=list)

    def append(self, result: EpochResult) -> None:
        self.epochs.append(result)

    @property
    def val_errors(self) -> list[float]:
        return [e.val_error for e in self.epochs]

    @property
    def train_losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def best_epoch(self) -> EpochResult:
        if not self.epochs:
            raise ValueError("history is empty")
        return min(self.epochs, key=lambda e: e.val_error)


class Trainer:
    """Mini-batch SGD training driver.

    Args:
        net: Network to train.
        optimizer: Parameter updater (typically :class:`SGD` over
            ``net.params``).
        loss: Loss object; defaults to softmax cross entropy.
        scheduler: Optional LR schedule stepped once per epoch with the
            validation error; a :class:`PlateauScheduler` reproduces the
            paper's policy and its ``finished`` flag stops training.
        batch_size: Mini-batch size.
        rng: Generator controlling batch shuffling.
        epoch_callback: Optional ``fn(trainer, EpochResult)`` hook invoked
            after each epoch (used by the MF-DFP pipeline to snapshot
            quantized weights).
        augment: Optional batch transform (e.g. :class:`~repro.nn.augment.Augmenter`)
            applied to training inputs only.
    """

    def __init__(
        self,
        net: Network,
        optimizer: SGD,
        loss: Optional[Loss] = None,
        scheduler=None,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
        epoch_callback: Optional[Callable] = None,
        augment: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.net = net
        self.optimizer = optimizer
        self.loss = loss or SoftmaxCrossEntropy()
        self.scheduler = scheduler
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng(0)
        self.epoch_callback = epoch_callback
        self.augment = augment
        self.history = TrainHistory()

    def train_epoch(self, train: ArrayDataset) -> float:
        """One pass over the training set; returns mean batch loss."""
        batches = BatchIterator(train, self.batch_size, shuffle=True, rng=self.rng)
        losses = []
        for x, y in batches:
            if self.augment is not None:
                x = self.augment(x)
            logits = self.net.forward(x, training=True)
            losses.append(self.loss.forward(logits, y))
            self.net.zero_grad()
            self.net.backward(self.loss.backward())
            self.optimizer.step()
        return float(np.mean(losses)) if losses else float("nan")

    def fit(self, train: ArrayDataset, val: ArrayDataset, epochs: int) -> TrainHistory:
        """Train up to ``epochs`` epochs (or until the scheduler finishes)."""
        for epoch in range(1, epochs + 1):
            train_loss = self.train_epoch(train)
            val_error = error_rate(self.net, val)
            result = EpochResult(epoch, train_loss, val_error, self.optimizer.lr)
            self.history.append(result)
            if self.epoch_callback is not None:
                self.epoch_callback(self, result)
            if self.scheduler is not None:
                self.scheduler.step(val_error)
                if isinstance(self.scheduler, PlateauScheduler) and self.scheduler.finished:
                    break
        return self.history
