"""Training loop, evaluation helpers, and history tracking."""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.nn.data import ArrayDataset, BatchIterator
from repro.nn.loss import Loss, SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optim import SGD, PlateauScheduler


def topk_correct(
    net: Network,
    x: np.ndarray,
    y: np.ndarray,
    k: int = 1,
    batch_size: int = 256,
    logits_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> int:
    """Number of samples whose label lands in the top-k logits.

    The chunked evaluation primitive shared by :func:`evaluate_topk` and
    the analysis campaign runner (:mod:`repro.analysis.campaign`): one
    forward pass per ``batch_size`` slice, never materializing logits
    for the whole set at once.  ``logits_fn`` overrides the forward pass
    (the compiled training fast path routes evaluation through its
    planned executor, which returns bit-identical logits).
    """
    if logits_fn is None:
        logits_fn = net.logits
    correct = 0
    for start in range(0, len(x), batch_size):
        logits = logits_fn(x[start : start + batch_size])
        topk = np.argpartition(-logits, kth=min(k, logits.shape[1] - 1), axis=1)[:, :k]
        correct += int((topk == y[start : start + batch_size, None]).any(axis=1).sum())
    return correct


def evaluate_topk(net: Network, dataset: ArrayDataset, k: int = 1, batch_size: int = 256) -> float:
    """Top-k classification accuracy of ``net`` on ``dataset`` (fraction)."""
    return topk_correct(net, dataset.x, dataset.y, k=k, batch_size=batch_size) / len(dataset)


def error_rate(net: Network, dataset: ArrayDataset, batch_size: int = 256) -> float:
    """Top-1 error rate (1 - accuracy)."""
    return 1.0 - evaluate_topk(net, dataset, k=1, batch_size=batch_size)


def _rng_state_to_jsonable(state):
    """Bit-generator state → JSON-able form (MT19937 et al. carry ndarrays)."""
    if isinstance(state, dict):
        return {k: _rng_state_to_jsonable(v) for k, v in state.items()}
    if isinstance(state, np.ndarray):
        return {"__ndarray__": state.tolist(), "dtype": str(state.dtype)}
    if isinstance(state, np.integer):
        return int(state)
    return state


def _rng_state_from_jsonable(state):
    """Exact inverse of :func:`_rng_state_to_jsonable`."""
    if isinstance(state, dict):
        if "__ndarray__" in state:
            return np.array(state["__ndarray__"], dtype=state["dtype"])
        return {k: _rng_state_from_jsonable(v) for k, v in state.items()}
    return state


@dataclass
class EpochResult:
    """Metrics recorded after each training epoch."""

    epoch: int
    train_loss: float
    val_error: float
    lr: float


@dataclass
class TrainHistory:
    """Sequence of per-epoch results with convenience accessors."""

    epochs: list[EpochResult] = field(default_factory=list)

    def append(self, result: EpochResult) -> None:
        self.epochs.append(result)

    @property
    def val_errors(self) -> list[float]:
        return [e.val_error for e in self.epochs]

    @property
    def train_losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def best_epoch(self) -> EpochResult:
        if not self.epochs:
            raise ValueError("history is empty")
        return min(self.epochs, key=lambda e: e.val_error)


class Trainer:
    """Mini-batch SGD training driver.

    Args:
        net: Network to train.
        optimizer: Parameter updater (typically :class:`SGD` over
            ``net.params``).
        loss: Loss object; defaults to softmax cross entropy.
        scheduler: Optional LR schedule stepped once per epoch with the
            validation error; a :class:`PlateauScheduler` reproduces the
            paper's policy and its ``finished`` flag stops training.
        batch_size: Mini-batch size.
        rng: Generator controlling batch shuffling.
        epoch_callback: Optional ``fn(trainer, EpochResult)`` hook invoked
            after each epoch (used by the MF-DFP pipeline to snapshot
            quantized weights).
        augment: Optional batch transform (e.g. :class:`~repro.nn.augment.Augmenter`)
            applied to training inputs only.
        compiled: Route training and evaluation through the compiled
            fast path (:mod:`repro.nn.compiled`): planned, workspace
            backed kernels that are bit-identical to the eager layers.
            On by default; falls back to eager execution transparently
            (unsupported layers are delegated inside the plan, and any
            failure to build the executor disables it for this trainer).
        profile: Collect per-layer forward/backward wall-clock times;
            see :meth:`profile_rows`.
    """

    def __init__(
        self,
        net: Network,
        optimizer: SGD,
        loss: Optional[Loss] = None,
        scheduler=None,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
        epoch_callback: Optional[Callable] = None,
        augment: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        compiled: bool = True,
        profile: bool = False,
    ):
        self.net = net
        self.optimizer = optimizer
        self.loss = loss or SoftmaxCrossEntropy()
        self.scheduler = scheduler
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (documented deterministic default; golden loss curves depend on this exact stream)
        self.epoch_callback = epoch_callback
        self.augment = augment
        self.compiled = compiled
        self.profile = profile
        self.history = TrainHistory()
        self._executor = None
        self._eager_profile: dict[str, dict] = {}

    @property
    def executor(self):
        """The compiled executor, built lazily; None when disabled."""
        if not self.compiled:
            return None
        if self._executor is None:
            try:
                from repro.nn.compiled import CompiledTrainer

                self._executor = CompiledTrainer(self.net, profile=self.profile)
            except Exception:  # missing/broken fast path: stay eager
                self.compiled = False
                return None
        return self._executor

    # -- single-batch execution (compiled or eager, always bit-identical) --
    def forward_batch(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Forward one batch through the compiled executor or eagerly.

        The building block custom training loops (e.g. the phase-2
        distillation loop) share with :meth:`train_epoch`; bit-identical
        either way.
        """
        executor = self.executor
        if executor is not None:
            return executor.forward(x, training=training)
        if not self.profile:
            return self.net.forward(x, training=training)
        self.net.set_training(training)
        if self.net.input_quantizer is not None:
            x = self.net.input_quantizer(x)
        for layer in self.net.layers:
            t0 = time.perf_counter()
            x = layer.forward(x)
            row = self._profile_row(layer)
            row["forward_s"] += time.perf_counter() - t0
            row["calls"] += 1
        return x

    def backward_batch(self, grad: np.ndarray) -> None:
        """Backpropagate one batch (pairs with :meth:`forward_batch`)."""
        executor = self.executor
        if executor is not None:
            executor.backward(grad)
            return
        if not self.profile:
            self.net.backward(grad)
            return
        for layer in reversed(self.net.layers):
            t0 = time.perf_counter()
            grad = layer.backward(grad)
            self._profile_row(layer)["backward_s"] += time.perf_counter() - t0

    def _profile_row(self, layer) -> dict:
        return self._eager_profile.setdefault(
            layer.name,
            {
                "layer": layer.name,
                "kind": type(layer).__name__,
                "delegated": False,
                "forward_s": 0.0,
                "backward_s": 0.0,
                "calls": 0,
            },
        )

    def train_epoch(self, train: ArrayDataset) -> float:
        """One pass over the training set; returns the mean sample loss.

        Batch losses are weighted by batch size, so the return value is
        the exact mean over every sample seen this epoch even when the
        dataset length is not divisible by ``batch_size`` (an unweighted
        mean of batch means over-weights a partial trailing batch).
        """
        batches = BatchIterator(train, self.batch_size, shuffle=True, rng=self.rng)
        total, count = 0.0, 0
        for x, y in batches:
            if self.augment is not None:
                x = self.augment(x)
            logits = self.forward_batch(x, training=True)
            total += self.loss.forward(logits, y) * len(x)
            count += len(x)
            self.net.zero_grad()
            self.backward_batch(self.loss.backward())
            self.optimizer.step()
        return total / count if count else float("nan")

    def evaluate_error(self, dataset: ArrayDataset, batch_size: int = 256) -> float:
        """Top-1 error on ``dataset``, through the compiled executor when on.

        Bit-identical to :func:`error_rate` on the same network — the
        executor replays the eager op sequence — but without
        requantizing unchanged weights on every batch.
        """
        executor = self.executor
        logits_fn = None
        if executor is not None:
            logits_fn = lambda xb: executor.forward(xb, training=False)  # noqa: E731
        correct = topk_correct(
            self.net, dataset.x, dataset.y, k=1, batch_size=batch_size, logits_fn=logits_fn
        )
        return 1.0 - correct / len(dataset)

    def quantized_weights(self) -> dict[str, np.ndarray]:
        """Weights as the quantized forward pass sees them.

        Served from the compiled executor's quantized-weight cache when
        available — after an epoch's validation sweep this requantizes
        nothing — and recomputed eagerly otherwise.  The MF-DFP pipeline
        snapshots these per phase-1 epoch.
        """
        executor = self.executor
        if executor is not None:
            return executor.quantized_weights()
        out = {}
        for layer in self.net.layers:
            w = layer.effective_weight()
            if w is not None:
                out[layer.name] = w
        return out

    # -- persistence (exact resume) ----------------------------------------
    def rng_sites(self) -> list[tuple[str, np.random.Generator]]:
        """Every random source that influences the training trajectory.

        The trainer's shuffle generator, the augmenter's, each layer's
        (dropout masks) and each quantization hook's (stochastic weight
        rounding).  Labels are stable across processes, so a checkpoint
        written in one run restores into a freshly built trainer in
        another.  Sites may alias one underlying generator (the MF-DFP
        pipeline threads one generator through shuffling and hooks);
        capturing and restoring aliases is idempotent because all
        aliased labels carry the same state.
        """
        sites: list[tuple[str, np.random.Generator]] = [("trainer", self.rng)]
        if isinstance(getattr(self.augment, "rng", None), np.random.Generator):
            sites.append(("augment", self.augment.rng))
        for layer in self.net.layers:
            if isinstance(getattr(layer, "rng", None), np.random.Generator):
                sites.append((f"layer:{layer.name}", layer.rng))
            for tag, hook in (
                ("whook", layer.weight_quantizer),
                ("ohook", layer.output_quantizer),
            ):
                if isinstance(getattr(hook, "rng", None), np.random.Generator):
                    sites.append((f"{tag}:{layer.name}", hook.rng))
        return sites

    def state_dict(self) -> dict:
        """Everything needed to resume training bit-identically.

        Master weights, optimizer velocity and hyper-parameters,
        scheduler progress, every RNG site's bit-generator state, and
        the epoch history.  Captured at an epoch boundary (after the
        scheduler step), restoring this into a freshly constructed
        trainer and continuing with ``fit(..., resume=True)`` reproduces
        the uninterrupted run exactly — see ``repro.io.checkpoint``.
        """
        return {
            "weights": {p.name: p.data.copy() for p in self.net.params},
            "optimizer": self.optimizer.state_dict(),
            "scheduler": None if self.scheduler is None else self.scheduler.state_dict(),
            "rng": {
                label: _rng_state_to_jsonable(gen.bit_generator.state)
                for label, gen in self.rng_sites()
            },
            "history": [asdict(e) for e in self.history.epochs],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this trainer (strict)."""
        self.net.set_weights(state["weights"])
        self.optimizer.load_state_dict(state["optimizer"])
        saved_scheduler = state.get("scheduler")
        if (saved_scheduler is None) != (self.scheduler is None):
            raise ValueError(
                "scheduler mismatch: checkpoint "
                f"{'has' if saved_scheduler is not None else 'lacks'} scheduler state, "
                f"trainer {'lacks' if self.scheduler is None else 'has'} a scheduler"
            )
        if saved_scheduler is not None:
            self.scheduler.load_state_dict(saved_scheduler)
        sites = dict(self.rng_sites())
        saved_rng = state["rng"]
        if set(sites) != set(saved_rng):
            missing = set(sites) ^ set(saved_rng)
            raise ValueError(f"RNG site mismatch: {sorted(missing)}")
        for label, gen in sites.items():
            gen.bit_generator.state = _rng_state_from_jsonable(saved_rng[label])
        self.history = TrainHistory([EpochResult(**e) for e in state["history"]])

    def profile_rows(self) -> list[dict]:
        """Per-layer timing rows (compiled plans or eager timers)."""
        if self._executor is not None:
            return self._executor.profile_rows()
        order = {layer.name: i for i, layer in enumerate(self.net.layers)}
        return sorted(
            self._eager_profile.values(), key=lambda r: order.get(r["layer"], 1 << 30)
        )

    def fit(
        self,
        train: ArrayDataset,
        val: ArrayDataset,
        epochs: int,
        resume: bool = False,
        checkpoint: Optional[Callable[["Trainer"], None]] = None,
    ) -> TrainHistory:
        """Train up to ``epochs`` epochs (or until the scheduler finishes).

        With ``resume=True`` the run continues from the restored history
        (see :meth:`load_state_dict`): epoch numbering picks up where it
        left off and ``epochs`` still means *total* epochs, so a run
        killed after k epochs and resumed trains exactly the remaining
        ``epochs - k``.  ``checkpoint`` is invoked with the trainer after
        each epoch's scheduler step — the epoch boundary where
        :meth:`state_dict` is exact — typically a
        :class:`repro.io.checkpoint.Checkpointer`.
        """
        start = len(self.history.epochs) + 1 if resume else 1
        for epoch in range(start, epochs + 1):
            if isinstance(self.scheduler, PlateauScheduler) and self.scheduler.finished:
                break
            train_loss = self.train_epoch(train)
            val_error = self.evaluate_error(val)
            result = EpochResult(epoch, train_loss, val_error, self.optimizer.lr)
            self.history.append(result)
            if self.epoch_callback is not None:
                self.epoch_callback(self, result)
            if self.scheduler is not None:
                self.scheduler.step(val_error)
            if checkpoint is not None:
                checkpoint(self)
            if isinstance(self.scheduler, PlateauScheduler) and self.scheduler.finished:
                break
        return self.history
