"""Pure-numpy deep neural network substrate.

This subpackage replaces the Caffe dependency of the original paper with a
small, self-contained framework providing the layer types the paper uses
(convolution, pooling, fully-connected, non-linearities), backpropagation,
SGD with momentum, the paper's plateau learning-rate schedule, and a
training loop.  All layers expose quantization hooks so the MF-DFP
machinery in :mod:`repro.core` can run quantized forward passes while
gradients accumulate in floating-point master weights.
"""

from repro.nn.augment import Augmenter, random_horizontal_flip, random_shift_crop
from repro.nn.compiled import CompiledTrainer, TrainPlan, format_profile
from repro.nn.data import ArrayDataset, BatchIterator, train_val_split
from repro.nn.initializers import gaussian_init, he_init, xavier_init, zeros_init
from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.loss import Loss, SoftmaxCrossEntropy, softmax
from repro.nn.network import Network
from repro.nn.optim import SGD, PlateauScheduler, StepScheduler
from repro.nn.trainer import EpochResult, Trainer, error_rate, evaluate_topk, topk_correct

__all__ = [
    "ArrayDataset",
    "Augmenter",
    "AvgPool2D",
    "BatchIterator",
    "CompiledTrainer",
    "Conv2D",
    "Dense",
    "Dropout",
    "EpochResult",
    "Flatten",
    "Layer",
    "LocalResponseNorm",
    "Loss",
    "MaxPool2D",
    "Network",
    "Parameter",
    "PlateauScheduler",
    "ReLU",
    "SGD",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "StepScheduler",
    "Tanh",
    "TrainPlan",
    "Trainer",
    "error_rate",
    "evaluate_topk",
    "format_profile",
    "gaussian_init",
    "he_init",
    "random_horizontal_flip",
    "random_shift_crop",
    "softmax",
    "topk_correct",
    "train_val_split",
    "xavier_init",
    "zeros_init",
]
