"""Loss functions."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


class Loss:
    """Base class: ``forward(logits, target) -> float``; ``backward() -> dlogits``."""

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, logits: np.ndarray, target: np.ndarray) -> float:
        return self.forward(logits, target)


class SoftmaxCrossEntropy(Loss):
    """Mean cross entropy between softmax(logits) and integer labels."""

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        target = np.asarray(target)
        n = logits.shape[0]
        logp = log_softmax(logits, axis=1)
        self._probs = np.exp(logp)
        self._target = target
        return float(-logp[np.arange(n), target].mean())

    def backward(self) -> np.ndarray:
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._target] -= 1.0
        return grad / n


class MeanSquaredError(Loss):
    """Mean squared error over all elements (utility for regression tests)."""

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        self._diff = logits - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size
