"""Weight initialization schemes.

Initializers are plain functions ``(shape, fan_in, fan_out, rng, dtype)``
returning a numpy array.  They are passed to layer constructors by name or
as callables; :func:`resolve_initializer` performs the lookup.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

InitFn = Callable[..., np.ndarray]


def gaussian_init(shape, fan_in, fan_out, rng, dtype, std=0.01):
    """Zero-mean Gaussian with fixed standard deviation (Caffe's default)."""
    del fan_in, fan_out
    return rng.normal(0.0, std, size=shape).astype(dtype)


def xavier_init(shape, fan_in, fan_out, rng, dtype):
    """Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(fi+fo))."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def he_init(shape, fan_in, fan_out, rng, dtype):
    """He/Kaiming normal initialization, suited to ReLU networks."""
    del fan_out
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def zeros_init(shape, fan_in, fan_out, rng, dtype):
    """All-zeros initialization (used for biases)."""
    del fan_in, fan_out, rng
    return np.zeros(shape, dtype=dtype)


_REGISTRY: dict[str, InitFn] = {
    "gaussian": gaussian_init,
    "xavier": xavier_init,
    "he": he_init,
    "zeros": zeros_init,
}


def resolve_initializer(init: Union[str, InitFn]) -> InitFn:
    """Return the initializer function for ``init``.

    ``init`` may already be a callable (returned unchanged) or one of the
    registered names: ``gaussian``, ``xavier``, ``he``, ``zeros``.
    """
    if callable(init):
        return init
    try:
        return _REGISTRY[init]
    except KeyError:
        names = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown initializer {init!r}; expected one of: {names}") from None
