"""AlexNet (Krizhevsky et al., NIPS 2012) for the ImageNet experiments.

Built as the single-column variant without grouped convolutions — the
form distributed through the Caffe Model Zoo that the paper obtained its
float model from.  Parameter count is 62,378,344, i.e. 237.95 MB at
32 bits, matching Table 3 of the paper exactly.

LRN layers are removed by default (the paper: "We remove all local
response normalization layers since they are not amenable to our
multiplier-free hardware implementation").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
)
from repro.nn.network import Network

#: Caffe's AlexNet input resolution (center crop of a 256x256 image).
ALEXNET_INPUT = (3, 227, 227)


def alexnet(
    num_classes: int = 1000,
    include_lrn: bool = False,
    include_dropout: bool = True,
    grouped: bool = False,
    dtype=np.float32,
    rng: Optional[np.random.Generator] = None,
    name: str = "alexnet",
) -> Network:
    """Build AlexNet for 3x227x227 inputs (floor-mode convs, ceil pools).

    ``grouped=True`` builds Krizhevsky's original two-column network
    (``groups=2`` on conv2/4/5, 60,965,224 parameters); the default is the
    single-column Model-Zoo form the paper's Table 3 numbers correspond to
    (62,378,344 parameters).
    """
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (published zoo entry: the deployable's weights are defined by this fixed seed)
    g = 2 if grouped else 1
    layers = [
        Conv2D(3, 96, 11, stride=4, pad=0, weight_init="he", dtype=dtype, rng=rng, name="conv1"),
        ReLU(name="relu1"),
    ]
    if include_lrn:
        layers.append(LocalResponseNorm(local_size=5, alpha=1e-4, beta=0.75, name="norm1"))
    layers.append(MaxPool2D(3, stride=2, name="pool1"))
    layers += [
        Conv2D(96, 256, 5, stride=1, pad=2, groups=g, weight_init="he", dtype=dtype, rng=rng, name="conv2"),
        ReLU(name="relu2"),
    ]
    if include_lrn:
        layers.append(LocalResponseNorm(local_size=5, alpha=1e-4, beta=0.75, name="norm2"))
    layers.append(MaxPool2D(3, stride=2, name="pool2"))
    layers += [
        Conv2D(256, 384, 3, stride=1, pad=1, weight_init="he", dtype=dtype, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        Conv2D(384, 384, 3, stride=1, pad=1, groups=g, weight_init="he", dtype=dtype, rng=rng, name="conv4"),
        ReLU(name="relu4"),
        Conv2D(384, 256, 3, stride=1, pad=1, groups=g, weight_init="he", dtype=dtype, rng=rng, name="conv5"),
        ReLU(name="relu5"),
        MaxPool2D(3, stride=2, name="pool5"),
        Flatten(name="flat"),
        Dense(256 * 6 * 6, 4096, weight_init="xavier", dtype=dtype, rng=rng, name="fc6"),
        ReLU(name="relu6"),
    ]
    if include_dropout:
        layers.append(Dropout(0.5, rng=rng, name="drop6"))
    layers += [
        Dense(4096, 4096, weight_init="xavier", dtype=dtype, rng=rng, name="fc7"),
        ReLU(name="relu7"),
    ]
    if include_dropout:
        layers.append(Dropout(0.5, rng=rng, name="drop7"))
    layers.append(
        Dense(4096, num_classes, weight_init="xavier", dtype=dtype, rng=rng, name="fc8")
    )
    return Network(layers, input_shape=ALEXNET_INPUT, name=name)


def alexnet_deployable(
    num_classes: int = 20,
    size: int = 16,
    n_calib: int = 128,
    seed: int = 0,
):
    """Serving entry point: a deployed MF-DFP AlexNet artifact.

    Builds the surrogate-scale network (:func:`alexnet_small` — the full
    62M-parameter model takes minutes to quantize in numpy, far too slow
    for a serving construction path), quantizes it on downscaled-ImageNet
    calibration data, and freezes it to the integer artifact the serving
    registry hosts under the name ``"alexnet"``.  Weights are untrained:
    the serving layer's contracts (bit-exactness, throughput, admission
    control) do not depend on accuracy.  Deterministic for a given
    ``seed``.
    """
    from repro.core.mfdfp import deploy_calibrated
    from repro.datasets import imagenet_surrogate

    train, _ = imagenet_surrogate(
        n_train=max(n_calib, 64), n_test=8, num_classes=num_classes, size=size, seed=seed
    )
    net = alexnet_small(num_classes=num_classes, size=size, rng=np.random.default_rng(seed))
    return deploy_calibrated(net, train.x[:n_calib])


def alexnet_small(
    num_classes: int = 20,
    size: int = 32,
    dtype=np.float32,
    rng: Optional[np.random.Generator] = None,
    name: str = "alexnet_small",
) -> Network:
    """AlexNet-style network scaled for the downscaled ImageNet surrogate.

    Preserves the conv-heavy front / fc-heavy back structure of AlexNet at
    a width and resolution trainable in numpy.
    """
    if size % 8:
        raise ValueError("size must be divisible by 8")
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (published zoo entry: the deployable's weights are defined by this fixed seed)
    final = size // 8
    layers = [
        Conv2D(3, 16, 3, stride=1, pad=1, weight_init="he", dtype=dtype, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(3, stride=2, name="pool1"),
        Conv2D(16, 32, 3, stride=1, pad=1, weight_init="he", dtype=dtype, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(3, stride=2, name="pool2"),
        Conv2D(32, 32, 3, stride=1, pad=1, weight_init="he", dtype=dtype, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        MaxPool2D(3, stride=2, name="pool3"),
        Flatten(name="flat"),
        Dense(32 * final * final, 128, weight_init="xavier", dtype=dtype, rng=rng, name="fc6"),
        ReLU(name="relu6"),
        Dense(128, num_classes, weight_init="xavier", dtype=dtype, rng=rng, name="fc8"),
    ]
    return Network(layers, input_shape=(3, size, size), name=name)
