"""Caffe's ``cifar10_full`` architecture (Krizhevsky's CIFAR-10 net).

Topology (LRN removed, as in the paper):

    conv1 32@5x5 pad2 → relu → maxpool 3/2 →
    conv2 32@5x5 pad2 → relu → avgpool 3/2 →
    conv3 64@5x5 pad2 → relu → avgpool 3/2 →
    ip1   1024 → 10

Caffe places ``pool1`` before ``relu1``; we emit ``relu`` first, which is
mathematically identical for max pooling (max commutes with monotone
functions) and lets the accelerator fuse every ReLU into its compute
layer.  Parameter count is 89,578 — 0.3417 MB at 32 bits, matching
Table 3 of the paper exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
)
from repro.nn.network import Network


def cifar10_full(
    num_classes: int = 10,
    include_lrn: bool = False,
    dtype=np.float32,
    rng: Optional[np.random.Generator] = None,
    name: str = "cifar10_full",
) -> Network:
    """Build the CIFAR-10 benchmark network for 3x32x32 inputs."""
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (published zoo entry: the deployable's weights are defined by this fixed seed)
    layers = [
        Conv2D(3, 32, 5, stride=1, pad=2, weight_init="he", dtype=dtype, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(3, stride=2, name="pool1"),
    ]
    if include_lrn:
        layers.append(LocalResponseNorm(local_size=3, alpha=5e-5, beta=0.75, name="norm1"))
    layers += [
        Conv2D(32, 32, 5, stride=1, pad=2, weight_init="he", dtype=dtype, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        AvgPool2D(3, stride=2, name="pool2"),
    ]
    if include_lrn:
        layers.append(LocalResponseNorm(local_size=3, alpha=5e-5, beta=0.75, name="norm2"))
    layers += [
        Conv2D(32, 64, 5, stride=1, pad=2, weight_init="he", dtype=dtype, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        AvgPool2D(3, stride=2, name="pool3"),
        Flatten(name="flat"),
        Dense(64 * 4 * 4, num_classes, weight_init="xavier", dtype=dtype, rng=rng, name="ip1"),
    ]
    return Network(layers, input_shape=(3, 32, 32), name=name)


def cifar10_full_deployable(
    size: int = 16,
    width: int = 8,
    n_calib: int = 128,
    seed: int = 0,
):
    """Serving entry point: a deployed MF-DFP ``cifar10_full`` artifact.

    Builds the surrogate-scale network (:func:`cifar10_small` — full
    3x32x32 quantization is minutes of numpy, far too slow for a serving
    construction path), quantizes it on surrogate calibration data, and
    freezes it to the integer artifact the serving registry hosts under
    the name ``"cifar10_full"``.  Weights are untrained: the serving
    layer's contracts (bit-exactness, throughput, admission control) do
    not depend on accuracy.  Deterministic for a given ``seed``.
    """
    from repro.core.mfdfp import deploy_calibrated
    from repro.datasets import cifar10_surrogate

    train, _ = cifar10_surrogate(n_train=max(n_calib, 64), n_test=8, size=size, seed=seed)
    net = cifar10_small(size=size, width=width, rng=np.random.default_rng(seed))
    return deploy_calibrated(net, train.x[:n_calib])


def cifar10_small(
    num_classes: int = 10,
    size: int = 16,
    width: int = 8,
    dtype=np.float32,
    rng: Optional[np.random.Generator] = None,
    name: str = "cifar10_small",
) -> Network:
    """Scaled-down ``cifar10_full`` for fast surrogate-data experiments.

    Same layer pattern at 1/4 width (default) on ``size``x``size`` inputs;
    used by tests and benchmarks where training the full network would be
    too slow in pure numpy.
    """
    if size % 8:
        raise ValueError("size must be divisible by 8 (three 2x poolings)")
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (published zoo entry: the deployable's weights are defined by this fixed seed)
    final = size // 8
    layers = [
        Conv2D(3, width, 5, stride=1, pad=2, weight_init="he", dtype=dtype, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(3, stride=2, name="pool1"),
        Conv2D(width, width, 5, stride=1, pad=2, weight_init="he", dtype=dtype, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        AvgPool2D(3, stride=2, name="pool2"),
        Conv2D(width, 2 * width, 5, stride=1, pad=2, weight_init="he", dtype=dtype, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        AvgPool2D(3, stride=2, name="pool3"),
        Flatten(name="flat"),
        Dense(2 * width * final * final, num_classes, weight_init="xavier", dtype=dtype, rng=rng, name="ip1"),
    ]
    return Network(layers, input_shape=(3, size, size), name=name)
