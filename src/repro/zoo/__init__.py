"""Network zoo: the architectures the paper evaluates.

* :func:`cifar10_full` — Caffe's ``cifar10_full`` network [2], the
  CIFAR-10 benchmark architecture (89,578 parameters → the 0.3417 MB of
  Table 3).
* :func:`alexnet` — AlexNet [20] as distributed in the Caffe Model Zoo
  without grouped convolutions (62,378,344 parameters → the 237.95 MB of
  Table 3).

Both are built without local response normalization by default, since the
paper removes LRN layers ("they are not amenable to our multiplier-free
hardware implementation"); pass ``include_lrn=True`` for the original
float topology.  Scaled-down variants are provided for laptop-scale
training on the surrogate datasets.

For the serving layer, :data:`DEPLOYABLE_BUILDERS` maps the model names
``python -m repro serve`` accepts to builders of ready-to-serve deployed
MF-DFP artifacts (surrogate scale, quantized and calibrated;
:class:`repro.serve.ModelRegistry` hosts them behind the compile-once
engine cache).
"""

from repro.zoo.alexnet import alexnet, alexnet_deployable, alexnet_small
from repro.zoo.cifar10_full import cifar10_full, cifar10_full_deployable, cifar10_small

#: Serving entry points: registry name → deployable-artifact builder.
DEPLOYABLE_BUILDERS = {
    "cifar10_full": cifar10_full_deployable,
    "alexnet": alexnet_deployable,
}


def publish_deployables(store, names=None) -> dict[str, int]:
    """Build zoo deployables and publish them into an artifact store.

    ``store`` is an :class:`~repro.io.store.ArtifactStore` (or a path,
    created if missing).  Builds each named entry of
    :data:`DEPLOYABLE_BUILDERS` (default: all) and publishes it;
    returns ``{name: version}``.  Publishing is content-addressed, so
    re-running against an unchanged zoo returns the existing versions
    without writing new files — what ``python -m repro export`` calls.
    """
    from repro.io.store import ArtifactStore

    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    if names is None:
        names = list(DEPLOYABLE_BUILDERS)
    # Validate every name up front: an unknown one must not leave the
    # store partially published.
    unknown = [name for name in names if name not in DEPLOYABLE_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown deployable {unknown[0]!r} (available: {sorted(DEPLOYABLE_BUILDERS)})"
        )
    return {name: store.publish_deployed(name, DEPLOYABLE_BUILDERS[name]()) for name in names}


__all__ = [
    "DEPLOYABLE_BUILDERS",
    "alexnet",
    "alexnet_deployable",
    "alexnet_small",
    "cifar10_full",
    "cifar10_full_deployable",
    "cifar10_small",
    "publish_deployables",
]
