"""The injection-site catalog and the process-wide plan installation.

An **injection site** is a named seam an owning layer threads through
its own code: ``repro.io`` fires ``io.artifact.read`` just before it
opens a container, ``repro.parallel`` fires ``parallel.pool.submit`` as
each task enters the pool, the serve fault doubles fire
``serve.engine.run`` on every engine call.  Sites are registered at the
owning module's import time via :func:`register_site`, so the catalog
(:func:`site_catalog`) is a complete, documented inventory of where the
system can be made to fail.

:func:`inject` is the only thing the instrumented code calls.  With no
plan installed it is a dict lookup and a ``None`` compare — the hot
paths pay nothing.  :func:`installed` activates one
:class:`~repro.chaos.plan.FaultPlan` process-wide for a ``with`` block
(nested installs are a :class:`~repro.chaos.errors.ChaosError`: two
overlapping experiments cannot be told apart afterwards).

Discipline contract (enforced by the ``injection-discipline`` lint
rule): site names at call sites are string literals — the catalog must
be statically enumerable — and fault code raises typed errors only.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.chaos.errors import ChaosError, UnknownSiteError
from repro.chaos.plan import FaultPlan


@dataclass(frozen=True)
class InjectionSite:
    """Catalog entry for one named seam: owning layer + what firing means."""

    name: str
    layer: str
    description: str


_SITES: dict[str, InjectionSite] = {}
_LOCK = threading.Lock()
_ACTIVE: Optional[FaultPlan] = None


def register_site(name: str, layer: str, description: str) -> str:
    """Register an injection site (idempotent; owning-module import time).

    Returns ``name`` so modules can bind it to a constant in one line.
    """
    if not name or "." not in name:
        raise ChaosError(f"site names are dotted paths like 'io.artifact.read', got {name!r}")
    with _LOCK:
        existing = _SITES.get(name)
        if existing is not None and existing.layer != layer:
            raise ChaosError(
                f"site {name!r} already registered by layer {existing.layer!r}"
            )
        _SITES[name] = InjectionSite(name=name, layer=layer, description=description)
    return name


def site_catalog() -> dict[str, InjectionSite]:
    """Every registered site, sorted by name (import the layers first)."""
    with _LOCK:
        return dict(sorted(_SITES.items()))


def inject(site: str, **context) -> None:
    """Fire one injection site; a no-op unless a plan is installed.

    The owning layer calls this at its seam with whatever context the
    faults need (``path=``, ``pool=``, ``segment=``, ``sleep=``...).
    Counting only happens for sites the active plan has rules for, so
    an installed plan perturbs nothing it does not target.
    """
    plan = _ACTIVE
    if plan is None or site not in plan.sites():
        return
    plan.fire(site, context)


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE


@contextmanager
def installed(plan: FaultPlan, strict: bool = True):
    """Install ``plan`` process-wide for the duration of the block.

    ``strict=True`` (the default) requires every rule's site to be in
    the registered catalog — a typo in a site name fails at install
    time instead of silently never firing.  Import the layers whose
    sites the plan targets before installing.
    """
    global _ACTIVE
    if strict:
        with _LOCK:
            unknown = [s for s in plan.sites() if s not in _SITES]
        if unknown:
            raise UnknownSiteError(
                f"plan {plan.name!r} targets unregistered site(s) {sorted(unknown)} "
                "(import the owning modules first, or pass strict=False)"
            )
    with _LOCK:
        if _ACTIVE is not None:
            raise ChaosError(
                f"a fault plan ({_ACTIVE.name!r}) is already installed; "
                "chaos experiments do not nest"
            )
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _LOCK:
            _ACTIVE = None
