"""Cross-layer chaos harness: deterministic faults, typed recovery drills.

The subsystem has three parts:

* **Plans** (:mod:`repro.chaos.plan`) — a :class:`FaultPlan` is a seed
  plus ordered ``(site, trigger, fault)`` rules; it serializes to JSON
  and replays bit-identically, so every failure the harness produces
  reproduces from a printed document.
* **Sites** (:mod:`repro.chaos.registry`) — named seams the owning
  layers thread through their own code (``io.artifact.write``,
  ``parallel.pool.submit``, ``serve.engine.run``, ...).  With no plan
  installed, firing a site costs a dict lookup; :func:`site_catalog`
  is the complete inventory of where the system can be made to fail.
* **Drills** (:mod:`repro.chaos.drills`) — end-to-end recovery
  exercises (``python -m repro chaos --drill NAME``), each asserting
  the same three invariants: no hangs (a :class:`Watchdog` bounds every
  drill), typed errors only, and bit-identical results after recovery.

The serve fault doubles (:mod:`repro.serve.faults`) are fronts over the
same machinery, so scheduled serving crashes and io/parallel chaos share
one trigger grammar and one fault catalog (:data:`FAULTS`).
"""

from repro.chaos.errors import (
    ChaosError,
    DrillError,
    DrillTimeoutError,
    FaultPlanError,
    InvariantViolation,
    UnknownSiteError,
)
from repro.chaos.faults import FAULTS
from repro.chaos.plan import FaultPlan, FaultRule
from repro.chaos.registry import (
    InjectionSite,
    active_plan,
    inject,
    installed,
    register_site,
    site_catalog,
)
from repro.chaos.watchdog import Watchdog
from repro.chaos.drills import DRILLS, DrillReport, run_all_drills, run_drill

__all__ = [
    "ChaosError",
    "DRILLS",
    "DrillError",
    "DrillReport",
    "DrillTimeoutError",
    "FAULTS",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectionSite",
    "InvariantViolation",
    "UnknownSiteError",
    "Watchdog",
    "active_plan",
    "inject",
    "installed",
    "register_site",
    "run_all_drills",
    "run_drill",
    "site_catalog",
]
