"""End-to-end recovery drills: inject a fault plan, assert recovery.

Each drill stages a realistic failure through a printed
:class:`~repro.chaos.plan.FaultPlan` and then asserts the same three
invariants:

1. **No hangs** — the whole drill runs inside a
   :class:`~repro.chaos.watchdog.Watchdog`; a wedged recovery path
   surfaces as :class:`~repro.chaos.errors.DrillTimeoutError` with every
   thread's stack dumped, never as a stuck CI job.
2. **Typed errors only** — every error the fault provokes must belong to
   the owning layer's hierarchy (``ArtifactError``, ``PoolError``,
   ``CrashError``); a raw ``OSError``/``zipfile``/``numpy`` exception
   escaping a layer boundary is an
   :class:`~repro.chaos.errors.InvariantViolation`.
3. **Bit-identical recovery** — after the system recovers, its results
   (final weights, served logits, campaign outputs) equal the
   fault-free reference exactly, to the last bit.

The four drills (``DRILLS``):

``torn-checkpoint-resume``
    The newest checkpoint file is torn post-write (storage that lied
    about durability); resume must fall back to the previous valid step
    and refit to a bit-identical final state.
``corrupted-store-cold-start``
    The newest published model version rots on disk; a cold-started
    registry must quarantine it and silently serve the previous
    verified version, while a direct load of the bad version raises
    :class:`~repro.io.store.QuarantinedArtifactError`.
``worker-death-campaign``
    A pool worker is SIGKILLed mid-campaign; the crash must surface as
    a typed :class:`~repro.parallel.pool.WorkerCrashedError` within the
    liveness poll, and a policy-driven retry must complete the campaign
    with results bit-identical to the single-threaded baseline.
``kill-and-resume-under-load``
    A trainer subprocess is SIGKILLed mid-epoch (right after a
    checkpoint write) while this process streams serving traffic
    against the artifact store; the resumed run must produce
    bit-identical final weights and the serving tier must answer every
    request — zero drops.

Drills are deterministic from their seed: the printed plan JSON plus the
seed reproduce any failure exactly (``--seed`` on the CLI).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import threading
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.chaos.errors import DrillError, InvariantViolation
from repro.chaos.plan import FaultPlan, FaultRule
from repro.chaos.registry import installed
from repro.chaos.watchdog import Watchdog


@dataclass
class DrillReport:
    """One drill run: its plan, what fired, and the invariant verdicts."""

    name: str
    seed: int
    quick: bool
    passed: bool
    duration_s: float
    plan: dict
    fired: list
    invariants: dict = field(default_factory=dict)
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "quick": self.quick,
            "passed": self.passed,
            "duration_s": self.duration_s,
            "plan": self.plan,
            "fired": [list(f) for f in self.fired],
            "invariants": dict(self.invariants),
            "details": dict(self.details),
        }


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise DrillError(message)


def _typed_only(fn: Callable, allowed: tuple, label: str):
    """Run ``fn``; an exception outside ``allowed`` is an invariant breach.

    Returns ``(result, error)`` — exactly one is non-None — so drills
    can assert on errors that are *supposed* to happen without ever
    letting a raw one through.
    """
    try:
        return fn(), None
    except allowed as exc:
        return None, exc
    except BaseException as exc:
        raise InvariantViolation(
            f"{label}: raw {type(exc).__name__} escaped the layer boundary: {exc}"
        ) from exc


def _no_sleep(_seconds: float) -> None:
    """Zero-wait sleeper for retry backoff inside drills (determinism)."""


def _tiny_deployed(seed: int):
    """A deployed MF-DFP network small enough to publish/serve in ms."""
    from repro.core.mfdfp import deploy_calibrated
    from repro.zoo import cifar10_small

    net = cifar10_small(size=8, width=4, rng=np.random.default_rng(seed), dtype=np.float64)
    calib = np.random.default_rng(seed + 1).normal(size=(16, 3, 8, 8))
    return deploy_calibrated(net, calib)


def _make_trainer(seed: int):
    """The drills' shared training problem (surrogate CIFAR-10, tiny net)."""
    from repro.datasets import cifar10_surrogate
    from repro.nn import SGD, PlateauScheduler, Trainer
    from repro.zoo import cifar10_small

    train, test = cifar10_surrogate(n_train=64, n_test=32, size=8, seed=seed)
    net = cifar10_small(size=8, width=4, rng=np.random.default_rng(seed + 1))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net,
        optimizer,
        scheduler=PlateauScheduler(optimizer, patience=1),
        batch_size=16,
        rng=np.random.default_rng(seed + 2),
    )
    return trainer, train, test


def _weights_of(trainer) -> dict:
    return {k: v.copy() for k, v in trainer.net.get_weights().items()}


def _assert_weights_equal(ref: dict, got: dict, label: str) -> None:
    _expect(set(ref) == set(got), f"{label}: weight key sets differ")
    for key in sorted(ref):
        _expect(
            bool(np.array_equal(ref[key], got[key])),
            f"{label}: weight {key!r} differs after recovery (not bit-identical)",
        )


# -- drill 1: torn checkpoint, resume falls back ----------------------------


def drill_torn_checkpoint_resume(
    seed: int, quick: bool, workdir: Path
) -> tuple[FaultPlan, dict, dict]:
    """Tear the newest checkpoint post-write; resume must fall back."""
    from repro.io.artifacts import ArtifactError, load_checkpoint
    from repro.io.checkpoint import Checkpointer, _is_readable

    total = 4 if quick else 6
    torn_epoch = total - 1
    plan = FaultPlan(
        seed=seed,
        name="torn-checkpoint-resume",
        rules=[
            FaultRule(
                site="io.artifact.write",
                fault="torn-write",
                trigger={"suffix": f"epoch_{torn_epoch:04d}.npz"},
                params={"fraction": 0.4},
            )
        ],
    )

    # Reference: the uninterrupted run.
    reference, train, test = _make_trainer(seed)
    reference.fit(train, test, epochs=total)
    ref_weights = _weights_of(reference)

    # Faulted run: train to torn_epoch with checkpoints; the plan tears
    # the newest file the moment its (atomic) write completes.
    ckpt_dir = workdir / "ckpt"
    trainer, train, test = _make_trainer(seed)
    checkpointer = Checkpointer(ckpt_dir)
    with installed(plan):
        trainer.fit(train, test, epochs=torn_epoch, checkpoint=checkpointer)
    torn = ckpt_dir / f"epoch_{torn_epoch:04d}.npz"
    _expect(torn.is_file(), "torn checkpoint file vanished instead of being torn")
    _expect(not _is_readable(torn), "the fault plan failed to tear the newest checkpoint")

    # A direct load of the torn file must fail typed, never raw.
    _, load_error = _typed_only(
        lambda: load_checkpoint(torn), (ArtifactError,), "load of torn checkpoint"
    )
    _expect(load_error is not None, "loading a torn checkpoint unexpectedly succeeded")

    # Recovery: a fresh trainer resumes — skipping the torn newest file —
    # and refits to the end.
    resumed, train, test = _make_trainer(seed)
    restored, resume_error = _typed_only(
        lambda: checkpointer.resume(resumed), (ArtifactError,), "checkpoint resume"
    )
    _expect(resume_error is None, f"resume failed instead of falling back: {resume_error}")
    _expect(
        restored == torn_epoch - 1,
        f"resume restored {restored} epochs; expected fallback to {torn_epoch - 1}",
    )
    resumed.fit(train, test, epochs=total, resume=True, checkpoint=checkpointer)
    _assert_weights_equal(ref_weights, _weights_of(resumed), "torn-checkpoint-resume")
    _expect(
        list(np.asarray(reference.history.train_losses))
        == list(np.asarray(resumed.history.train_losses)),
        "loss curves differ after torn-checkpoint recovery",
    )
    invariants = {
        "typed-errors-only": f"torn load raised {type(load_error).__name__}",
        "fallback": f"resume skipped epoch_{torn_epoch:04d}.npz, restored {restored} epochs",
        "bit-identical": f"{len(ref_weights)} weight tensors equal after refit",
    }
    details = {"epochs": total, "torn_epoch": torn_epoch}
    return plan, invariants, details


# -- drill 2: corrupted store, cold start falls back ------------------------


def drill_corrupted_store_cold_start(
    seed: int, quick: bool, workdir: Path
) -> tuple[FaultPlan, dict, dict]:
    """Rot the newest published version; cold start must quarantine it."""
    from repro.core.engine import BatchedEngine, engine_fingerprint
    from repro.io.artifacts import ArtifactError
    from repro.io.store import ArtifactStore, QuarantinedArtifactError
    from repro.serve import ModelRegistry

    model = "drill_model"
    plan = FaultPlan(
        seed=seed,
        name="corrupted-store-cold-start",
        rules=[
            FaultRule(
                site="io.store.read",
                fault="truncate",
                trigger={"suffix": "v0002.npz", "call": 2},
                params={"fraction": 0.6},
            )
        ],
    )

    store = ArtifactStore(workdir / "store", sleep=_no_sleep)
    v1_artifact = _tiny_deployed(seed + 11)
    v2_artifact = _tiny_deployed(seed + 13)
    _expect(store.publish_deployed(model, v1_artifact) == 1, "v1 publish did not land as 1")
    _expect(store.publish_deployed(model, v2_artifact) == 2, "v2 publish did not land as 2")

    rng = np.random.default_rng(seed + 17)
    batch = rng.normal(scale=0.5, size=(4, 3, 8, 8))
    ref_logits = BatchedEngine(v1_artifact).run(batch)

    with installed(plan):
        # Warm read: both versions verify before the rot sets in.
        warm_version, _ = store.load_newest_verified(model)
        _expect(warm_version == 2, f"warm read resolved v{warm_version}, expected v2")
        # Cold start: the second read of v0002 hits the rotted bytes.
        registry, start_error = _typed_only(
            lambda: ModelRegistry.from_store(store), (ArtifactError,), "registry cold start"
        )
        _expect(start_error is None, f"cold start failed instead of falling back: {start_error}")
        engine, build_error = _typed_only(
            lambda: registry.engine(model), (ArtifactError,), "engine build"
        )
        _expect(build_error is None, f"engine build failed instead of falling back: {build_error}")

    _expect(
        registry.version_label(model) == "v0001",
        f"cold start served {registry.version_label(model)}, expected fallback to v0001",
    )
    _expect(
        store.quarantined_versions(model) == [2],
        f"quarantine holds {store.quarantined_versions(model)}, expected [2]",
    )
    reason = store.quarantine_dir(model) / "v0002.reason.json"
    _expect(reason.is_file(), "quarantine reason sidecar missing")
    _expect(
        json.loads(reason.read_text())["model"] == model,
        "quarantine reason sidecar does not name the model",
    )

    # A direct load of the quarantined version is a typed, specific error.
    _, direct_error = _typed_only(
        lambda: store.load_deployed(model, 2), (ArtifactError,), "direct load of bad version"
    )
    _expect(
        isinstance(direct_error, QuarantinedArtifactError),
        f"direct load raised {type(direct_error).__name__}, expected QuarantinedArtifactError",
    )

    # Bit-identity: the fallback serves exactly v1's bytes and logits.
    _expect(
        engine_fingerprint(engine.deployed) == engine_fingerprint(v1_artifact),
        "fallback engine fingerprint differs from the v1 artifact",
    )
    _expect(
        bool(np.array_equal(engine.run(batch), ref_logits)),
        "fallback engine logits differ from the v1 reference (not bit-identical)",
    )
    invariants = {
        "typed-errors-only": "direct load raised QuarantinedArtifactError",
        "quarantine": "v0002.npz moved to quarantine/ with a reason sidecar",
        "bit-identical": "cold start silently serves v0001, logits equal",
    }
    details = {"model": model, "quarantined": store.quarantined_versions(model)}
    return plan, invariants, details


# -- drill 3: worker death mid-campaign -------------------------------------


def _campaign_point(seed: int) -> float:
    """One deterministic campaign point (module-level: pickles by reference)."""
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal(2048).sum())


def _gated_campaign_point(seed: int, claim_dir: str, gate: str) -> float:
    """A campaign point that claims itself, then blocks until ``gate`` exists.

    Pure rendezvous around :func:`_campaign_point` (the value is
    identical): the claim marker is the sigkill-worker fault's evidence
    that this worker is mid-task, and the gate — touched only *after*
    the kill — guarantees no result can land while the victim is still
    alive.  Without it the victim can die idle and the survivor drain
    the whole queue, turning the drill into a coin flip.
    """
    claim = Path(claim_dir) / f"claim_{seed}"
    claim.touch()
    deadline = time.monotonic() + 30.0
    while not Path(gate).exists():
        if time.monotonic() > deadline:
            raise DrillError(f"campaign point {seed} never saw the kill gate at {gate}")
        time.sleep(0.002)
    return _campaign_point(seed)


def drill_worker_death_campaign(
    seed: int, quick: bool, workdir: Path
) -> tuple[FaultPlan, dict, dict]:
    """SIGKILL a pool worker mid-campaign; a typed retry must finish it."""
    from repro.parallel.pool import PoolError, ProcessPoolRunner, WorkerCrashedError
    from repro.retry import RetryPolicy

    n_points = 6 if quick else 10
    kill_at = 2 if quick else 4
    point_seeds = [seed + 100 + i for i in range(n_points)]
    claim_dir = workdir / "claims"
    claim_dir.mkdir()
    gate = workdir / "kill-gate"
    plan = FaultPlan(
        seed=seed,
        name="worker-death-campaign",
        rules=[
            FaultRule(
                site="parallel.pool.submit",
                fault="sigkill-worker",
                trigger={"call": kill_at},
                params={
                    "worker": 0,
                    "await_claims": str(claim_dir),
                    "await_count": 2,
                    "release": str(gate),
                },
            )
        ],
    )

    baseline = [_campaign_point(s) for s in point_seeds]
    retries: list[dict] = []

    def run_campaign() -> list:
        with ProcessPoolRunner(2) as runner:
            return runner.map(
                [
                    partial(_gated_campaign_point, s, str(claim_dir), str(gate))
                    for s in point_seeds
                ]
            )

    policy = RetryPolicy(attempts=3, backoff_initial_s=0.01, backoff_cap_s=0.05)
    with installed(plan):
        results, error = _typed_only(
            lambda: policy.call(
                run_campaign,
                retry_on=(PoolError,),
                sleep=_no_sleep,
                on_retry=lambda k, exc: retries.append(
                    {"attempt": k, "error": f"{type(exc).__name__}: {exc}"}
                ),
            ),
            (PoolError,),
            "campaign under worker death",
        )
    _expect(error is None, f"campaign never recovered: {error}")
    _expect(len(retries) == 1, f"expected exactly one typed retry, saw {len(retries)}")
    _expect(
        retries[0]["error"].startswith(WorkerCrashedError.__name__),
        f"retry was caused by {retries[0]['error']}, expected WorkerCrashedError",
    )
    _expect(results == baseline, "campaign results differ from baseline (not bit-identical)")
    invariants = {
        "no-hang": "worker death surfaced within the liveness poll",
        "typed-errors-only": retries[0]["error"].split(":")[0] + " only",
        "bit-identical": f"{n_points} points equal the single-process baseline",
    }
    details = {"points": n_points, "kill_at_submit": kill_at, "retries": retries}
    return plan, invariants, details


# -- drill 4: SIGKILL the trainer while serving stays live -------------------

_DRIVER_SRC = """
import numpy as np
from repro.chaos import FaultPlan, installed
from repro.datasets import cifar10_surrogate
from repro.io import Checkpointer
import repro.io.artifacts  # registers the io.artifact.* injection sites
from repro.nn import SGD, PlateauScheduler, Trainer
from repro.zoo import cifar10_small

SEED = {seed}
TOTAL = {total}

def make_trainer():
    train, test = cifar10_surrogate(n_train=64, n_test=32, size=8, seed=SEED)
    net = cifar10_small(size=8, width=4, rng=np.random.default_rng(SEED + 1))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net, optimizer,
        scheduler=PlateauScheduler(optimizer, patience=1),
        batch_size=16, rng=np.random.default_rng(SEED + 2),
    )
    return trainer, train, test
"""

_KILLED_SRC = """
plan = FaultPlan.from_json(open("plan.json").read())
trainer, train, test = make_trainer()
with installed(plan):
    trainer.fit(train, test, epochs=TOTAL, checkpoint=Checkpointer("ckpt"))
raise SystemExit("the fault plan never killed this process")
"""

_RESUMED_SRC = """
trainer, train, test = make_trainer()
ck = Checkpointer("ckpt")
restored = ck.resume(trainer)
assert restored == {kill_call}, f"resumed {{restored}} epochs, expected {kill_call}"
trainer.fit(train, test, epochs=TOTAL, resume=True, checkpoint=ck)
out = {{f"w/{{k}}": v for k, v in trainer.net.get_weights().items()}}
out["losses"] = np.array(trainer.history.train_losses)
np.savez("final.npz", **out)
"""


def _run_driver(workdir: Path, name: str, source: str) -> subprocess.CompletedProcess:
    import repro

    script = workdir / f"{name}.py"
    script.write_text(source)
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return subprocess.run(
        [sys.executable, str(script)],
        cwd=workdir,
        env=env,
        capture_output=True,
        text=True,
        timeout=240,
    )


def drill_kill_and_resume_under_load(
    seed: int, quick: bool, workdir: Path
) -> tuple[FaultPlan, dict, dict]:
    """SIGKILL a trainer mid-run while streaming requests against the store."""
    from repro.core.engine import BatchedEngine
    from repro.io.store import ArtifactStore
    from repro.serve import ModelRegistry, ServerRuntime

    total = 4 if quick else 6
    kill_call = total - 2  # die right after this checkpoint write lands
    n_requests = 32 if quick else 96
    model = "drill_served"
    plan = FaultPlan(
        seed=seed,
        name="kill-and-resume-under-load",
        rules=[
            FaultRule(
                site="io.artifact.write",
                fault="sigkill-self",
                trigger={"call": kill_call},
            )
        ],
    )
    (workdir / "plan.json").write_text(plan.to_json())

    # The serving tier: a store-backed model this process streams
    # requests against for the whole duration of the kill + resume.
    store = ArtifactStore(workdir / "store", sleep=_no_sleep)
    served_artifact = _tiny_deployed(seed + 21)
    store.publish_deployed(model, served_artifact)
    registry = ModelRegistry.from_store(store)
    rng = np.random.default_rng(seed + 23)
    samples = [rng.normal(scale=0.5, size=(3, 8, 8)) for _ in range(n_requests)]
    reference_engine = BatchedEngine(served_artifact)
    expected = [reference_engine.run(s[None])[0] for s in samples]

    futures: list = []
    submit_errors: list = []

    def stream(runtime: ServerRuntime) -> None:
        for sample in samples:
            try:
                futures.append(runtime.submit(model, sample))
            except Exception as exc:  # collected, asserted typed below
                submit_errors.append(exc)
            time.sleep(0.002)

    driver_src = textwrap.dedent(_DRIVER_SRC.format(seed=seed, total=total))
    with ServerRuntime(registry, [model], workers=1) as runtime:
        streamer = threading.Thread(target=stream, args=(runtime,), daemon=True)
        streamer.start()

        # Reference final weights: the uninterrupted run, this process.
        reference, train, test = _make_trainer(seed)
        reference.fit(train, test, epochs=total)
        ref_weights = _weights_of(reference)

        killed = _run_driver(workdir, "killed", driver_src + textwrap.dedent(_KILLED_SRC))
        _expect(
            killed.returncode == -signal.SIGKILL,
            f"trainer exited {killed.returncode}, expected SIGKILL (-9): "
            f"{killed.stderr[-500:]}",
        )
        resumed = _run_driver(
            workdir,
            "resumed",
            driver_src + textwrap.dedent(_RESUMED_SRC.format(kill_call=kill_call)),
        )
        _expect(
            resumed.returncode == 0,
            f"resume driver failed ({resumed.returncode}): {resumed.stderr[-800:]}",
        )
        streamer.join(timeout=60)
        _expect(not streamer.is_alive(), "request streamer wedged")

    _expect(not submit_errors, f"submits failed during the kill: {submit_errors[:3]}")
    _expect(len(futures) == n_requests, "not every request was admitted")
    dropped = [i for i, f in enumerate(futures) if not f.done()]
    _expect(not dropped, f"{len(dropped)} request future(s) never resolved")
    for i, future in enumerate(futures):
        logits, serve_error = _typed_only(
            lambda f=future: f.result(timeout=30), (), f"request {i}"
        )
        _expect(serve_error is None, f"request {i} failed: {serve_error}")
        _expect(
            bool(np.array_equal(logits, expected[i])),
            f"request {i} logits differ from the engine reference",
        )

    with np.load(workdir / "final.npz") as data:
        final = {k[2:]: data[k] for k in data.files if k.startswith("w/")}
        final_losses = list(data["losses"])
    _assert_weights_equal(ref_weights, final, "kill-and-resume-under-load")
    _expect(
        list(np.asarray(reference.history.train_losses)) == final_losses,
        "loss curves differ after kill-and-resume",
    )
    invariants = {
        "no-hang": "kill, resume, and drain all completed inside the watchdog",
        "typed-errors-only": "no submit or serve errors during the kill window",
        "bit-identical": (
            f"final weights equal the uninterrupted run; "
            f"{n_requests}/{n_requests} requests answered correctly"
        ),
    }
    details = {
        "epochs": total,
        "killed_at_checkpoint": kill_call,
        "killed_returncode": killed.returncode,
        "requests": n_requests,
    }
    return plan, invariants, details


# -- the drill registry and runners ------------------------------------------

DRILLS: dict[str, Callable] = {
    "torn-checkpoint-resume": drill_torn_checkpoint_resume,
    "corrupted-store-cold-start": drill_corrupted_store_cold_start,
    "worker-death-campaign": drill_worker_death_campaign,
    "kill-and-resume-under-load": drill_kill_and_resume_under_load,
}

#: Per-drill watchdog budgets (seconds) — generous enough for slow CI,
#: tight enough that a hang fails long before the job times out.
_BUDGETS = {
    "torn-checkpoint-resume": 120.0,
    "corrupted-store-cold-start": 120.0,
    "worker-death-campaign": 120.0,
    "kill-and-resume-under-load": 300.0,
}


def run_drill(
    name: str,
    seed: int = 0,
    quick: bool = False,
    workdir: Optional[Path] = None,
    log: Callable[[str], None] = lambda line: None,
) -> DrillReport:
    """Run one drill under its watchdog; returns the (passed) report.

    A failed invariant raises :class:`~repro.chaos.errors.DrillError`
    (or :class:`~repro.chaos.errors.DrillTimeoutError` on a hang) —
    drills do not return failure, they raise it, so CI pipelines fail
    loudly.  ``log`` receives progress lines (the CLI passes ``print``).
    """
    if name not in DRILLS:
        raise DrillError(f"unknown drill {name!r}; choose from {sorted(DRILLS)}")
    start = time.monotonic()
    with tempfile.TemporaryDirectory(prefix=f"repro-chaos-{name}-") as tmp:
        base = Path(workdir) if workdir is not None else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)
        with Watchdog(_BUDGETS[name], label=name):
            plan, invariants, details = DRILLS[name](seed, quick, base)
    report = DrillReport(
        name=name,
        seed=seed,
        quick=quick,
        passed=True,
        duration_s=time.monotonic() - start,
        plan=plan.to_dict(),
        fired=list(plan.fired),
        invariants=invariants,
        details=details,
    )
    log(f"drill {name}: PASS in {report.duration_s:.1f}s (seed={seed})")
    return report


def run_all_drills(
    seed: int = 0,
    quick: bool = False,
    log: Callable[[str], None] = lambda line: None,
) -> list[DrillReport]:
    """Run every drill in catalog order; raises on the first failure."""
    return [run_drill(name, seed=seed, quick=quick, log=log) for name in DRILLS]
