"""Deterministic fault plans: seeded RNG + ordered ``(site, trigger, fault)`` rules.

A :class:`FaultPlan` is the unit of reproducibility for every chaos
experiment in the repo.  It owns

* a seed (one :class:`numpy.random.Generator` shared by every fault
  that needs randomness — byte positions for bit flips, etc.), and
* an ordered tuple of :class:`FaultRule` entries, each binding an
  injection **site** (a name the owning layer fires through
  :func:`repro.chaos.registry.inject`), a **trigger** (which firings of
  that site the rule matches) and a **fault** (what happens — see
  :data:`repro.chaos.faults.FAULTS`).

Plans serialize to JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`); every drill prints its plan, so a failure
observed anywhere reproduces from the printed document alone.  Firing
is counted per site under a lock, so a plan replays identically under
any thread interleaving that preserves per-site call order — the same
contract the serve fault doubles have always made.

Trigger grammar (all present keys must match; an empty trigger never
fires):

``{"call": 3}``
    the 3rd firing of the site (1-based).
``{"calls": [2, 5]}``
    an explicit set of firings.
``{"always": true}``
    every firing.
``{"suffix": "v0002.npz"}``
    only when ``str(context["path"])`` ends with the suffix (combined
    with a call key, the count still advances on every firing).
``{"match": {"name": "cifar10_full"}}``
    equality over context values (compared as strings, so plans stay
    JSON-round-trippable).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.chaos.errors import FaultPlanError

_TRIGGER_KEYS = {"call", "calls", "always", "suffix", "match"}


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: at ``site``, when ``trigger`` matches, do ``fault``."""

    site: str
    fault: str
    trigger: dict
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.site or not isinstance(self.site, str):
            raise FaultPlanError(f"rule site must be a non-empty string, got {self.site!r}")
        if not self.fault or not isinstance(self.fault, str):
            raise FaultPlanError(f"rule fault must be a non-empty string, got {self.fault!r}")
        if not isinstance(self.trigger, dict):
            raise FaultPlanError(f"rule trigger must be a dict, got {self.trigger!r}")
        unknown = set(self.trigger) - _TRIGGER_KEYS
        if unknown:
            raise FaultPlanError(
                f"unknown trigger key(s) {sorted(unknown)} (known: {sorted(_TRIGGER_KEYS)})"
            )

    def matches(self, call: int, context: dict) -> bool:
        """Whether this rule fires on the ``call``-th firing with ``context``."""
        trigger = self.trigger
        if not trigger:
            return False
        if "call" in trigger and call != int(trigger["call"]):
            return False
        if "calls" in trigger and call not in {int(c) for c in trigger["calls"]}:
            return False
        if "suffix" in trigger and not str(context.get("path", "")).endswith(
            str(trigger["suffix"])
        ):
            return False
        if "match" in trigger:
            for key, expected in trigger["match"].items():
                if str(context.get(key)) != str(expected):
                    return False
        if "always" in trigger and not trigger["always"]:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "fault": self.fault,
            "trigger": dict(self.trigger),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise FaultPlanError(f"rule must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"site", "fault", "trigger", "params"}
        if unknown:
            raise FaultPlanError(f"unknown rule field(s) {sorted(unknown)}")
        try:
            return cls(
                site=data["site"],
                fault=data["fault"],
                trigger=dict(data.get("trigger", {})),
                params=dict(data.get("params", {})),
            )
        except KeyError as exc:
            raise FaultPlanError(f"rule is missing required field {exc}") from exc


class FaultPlan:
    """A seeded, ordered set of fault rules plus per-site firing counters.

    Thread-safe: counting and the fired-log append happen under one
    lock; the fault action itself runs outside it (faults may sleep,
    kill processes, or re-enter other sites).

    Args:
        seed: Seed of the plan's generator (used by randomized faults).
        rules: The :class:`FaultRule` entries, in evaluation order.
        name: Label echoed in ``describe()`` and drill reports.
    """

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = (), name: str = "plan"):
        self.seed = int(seed)
        self.name = name
        self.rules = tuple(rules)
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultPlanError(f"rules must be FaultRule instances, got {rule!r}")
        from repro.chaos.faults import FAULTS  # local: faults imports layers lazily

        for rule in self.rules:
            if rule.fault not in FAULTS:
                raise FaultPlanError(
                    f"unknown fault {rule.fault!r} in rule for site {rule.site!r} "
                    f"(known: {', '.join(sorted(FAULTS))})"
                )
        self.rng = np.random.default_rng(self.seed)
        self._sites = frozenset(rule.site for rule in self.rules)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        #: Log of every fault actually executed: (site, call, fault name).
        self.fired: list[tuple[str, int, str]] = []

    # -- firing ------------------------------------------------------------
    def calls(self, site: str) -> int:
        """How many times ``site`` has fired through this plan."""
        with self._lock:
            return self._counts.get(site, 0)

    def sites(self) -> frozenset[str]:
        """Every site this plan has a rule for."""
        return self._sites

    def fire(self, site: str, context: Optional[dict] = None) -> None:
        """Record one firing of ``site`` and execute any matching faults.

        Called by :func:`repro.chaos.registry.inject` (global
        installation) or directly by a fault double holding a private
        plan.  Fault actions run in rule order; a fault that raises
        stops the remaining rules for this firing (the error is the
        injected failure, propagating into the owning layer).
        """
        from repro.chaos.faults import FAULTS

        context = context if context is not None else {}
        with self._lock:
            call = self._counts.get(site, 0) + 1
            self._counts[site] = call
        for rule in self.rules:
            if rule.site != site or not rule.matches(call, context):
                continue
            with self._lock:
                self.fired.append((site, call, rule.fault))
            ctx = dict(context)
            ctx["site"] = site
            ctx["call"] = call
            FAULTS[rule.fault](self, rule, ctx)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"plan must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"name", "seed", "rules"}
        if unknown:
            raise FaultPlanError(f"unknown plan field(s) {sorted(unknown)}")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise FaultPlanError("plan 'rules' must be a list")
        return cls(
            seed=data.get("seed", 0),
            rules=[FaultRule.from_dict(r) for r in rules],
            name=str(data.get("name", "plan")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def describe(self) -> str:
        """One line per rule, for drill logs."""
        lines = [f"FaultPlan {self.name!r} (seed={self.seed}, {len(self.rules)} rule(s))"]
        for rule in self.rules:
            lines.append(
                f"  {rule.site}: {rule.fault} when {json.dumps(rule.trigger, sort_keys=True)}"
                + (f" with {json.dumps(rule.params, sort_keys=True)}" if rule.params else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(name={self.name!r}, seed={self.seed}, rules={len(self.rules)})"
