"""The fault catalog: what a triggered rule actually does.

Every fault is a callable ``fault(plan, rule, ctx)`` registered in
:data:`FAULTS`; ``ctx`` is the injection context plus the reserved keys
``site`` and ``call`` (the 1-based firing count).  Faults either mutate
the world (corrupt a file, kill a worker, unlink a segment) and return
— letting the owning layer discover the damage through its normal
verification — or raise an error **from the owning layer's typed
hierarchy** so the failure is indistinguishable from the real thing.
Raising raw ``OSError``/``RuntimeError`` here is a lint violation
(``injection-discipline``): a fault that raises an untyped error would
test nothing but the harness's own sloppiness.

File-corrupting faults draw byte positions from the plan's seeded
generator, so a plan replays the *same* corruption on every run.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path


def _path_of(ctx: dict) -> Path:
    from repro.chaos.errors import FaultPlanError

    path = ctx.get("path")
    if path is None:
        raise FaultPlanError(
            f"fault at site {ctx.get('site')!r} needs a 'path' in the injection context"
        )
    return Path(path)


def fault_bitflip(plan, rule, ctx) -> None:
    """Flip ``params['flips']`` (default 1) random byte(s) of ``ctx['path']``.

    Positions and masks come from the plan RNG — deterministic per plan.
    The mutated file is left in place; the owning layer's verify-on-load
    is what must catch (or survive) the damage.
    """
    path = _path_of(ctx)
    data = bytearray(path.read_bytes())
    if not data:
        return
    for _ in range(int(rule.params.get("flips", 1))):
        pos = int(plan.rng.integers(0, len(data)))
        data[pos] ^= int(plan.rng.integers(1, 256))
    path.write_bytes(bytes(data))


def fault_truncate(plan, rule, ctx) -> None:
    """Cut ``ctx['path']`` to ``params['fraction']`` (default 0.5) of its bytes."""
    path = _path_of(ctx)
    data = path.read_bytes()
    fraction = float(rule.params.get("fraction", 0.5))
    path.write_bytes(data[: int(len(data) * fraction)])


def fault_torn_write(plan, rule, ctx) -> None:
    """Tear a just-completed write: keep only a prefix of the final file.

    Fired at a write site, this models the one failure the atomic
    temp-file + replace protocol cannot rule out — storage that lied
    about durability (power loss after the rename, a torn NFS page).
    The newest file *looks* present but is truncated, which is exactly
    the state checkpoint fallback and store quarantine must recover
    from.
    """
    fault_truncate(plan, rule, {**ctx})


def fault_raise(plan, rule, ctx) -> None:
    """Raise a typed error from the owning layer: ``params['error']``.

    Known names: ``transient-store`` (heals on retry),
    ``artifact-corrupt``, ``crash`` (the serve doubles' CrashError).
    """
    from repro.chaos.errors import FaultPlanError

    kind = rule.params.get("error", "crash")
    fields = dict(rule.params)
    fields.update(error=kind, site=ctx.get("site"), call=ctx.get("call"))
    message = str(
        rule.params.get("message", "injected {error} at {site} call {call}")
    ).format(**fields)
    if kind == "transient-store":
        from repro.io.store import TransientStoreError

        raise TransientStoreError(message)
    if kind == "artifact-corrupt":
        from repro.io.artifacts import ArtifactCorruptError

        raise ArtifactCorruptError(message)
    if kind == "crash":
        from repro.serve.faults import CrashError

        raise CrashError(message)
    raise FaultPlanError(f"unknown raise fault error kind {kind!r}")


def fault_crash(plan, rule, ctx) -> None:
    """The serve doubles' scheduled crash (label + call echoed, as always)."""
    from repro.serve.faults import CrashError

    label = str(ctx.get("label", rule.params.get("label", "injected")))
    what = str(rule.params.get("what", "call"))
    raise CrashError(f"{label}: scheduled {what} {ctx['call']}")


def fault_latency(plan, rule, ctx) -> None:
    """A latency spike: sleep ``params['seconds']`` on the context's clock.

    ``ctx['sleep']`` (injectable — the serve tests pass a fake-clock
    sleeper) defaults to :func:`time.sleep`.
    """
    sleep = ctx.get("sleep") or time.sleep
    sleep(float(rule.params.get("seconds", 0.05)))


def fault_sigkill_worker(plan, rule, ctx) -> None:
    """SIGKILL a live worker of the pool in ``ctx['pool']``.

    ``params['worker']`` picks which (default 0, modulo the live ones).
    Two optional rendezvous params let callers make the kill
    deterministic when tasks gate on a file: ``await_claims`` /
    ``await_count`` block (bounded by ``await_timeout_s``, default 10 s)
    until that many files exist in the claims directory — evidence that
    every worker is mid-task — and ``release`` names a gate file touched
    *after* the kill, so no task can finish before the victim is dead.
    The pool's liveness poll must then surface the death as
    :class:`~repro.parallel.pool.WorkerCrashedError` — never a hang.
    """
    from repro.chaos.errors import FaultPlanError

    pool = ctx.get("pool")
    if pool is None:
        raise FaultPlanError("sigkill-worker needs a 'pool' in the injection context")
    claims = rule.params.get("await_claims")
    if claims is not None:
        want = int(rule.params.get("await_count", 1))
        deadline = time.monotonic() + float(rule.params.get("await_timeout_s", 10.0))
        while sum(1 for _ in Path(claims).iterdir()) < want:
            if time.monotonic() > deadline:
                raise FaultPlanError(
                    f"sigkill-worker: fewer than {want} task claims appeared "
                    f"under {claims} before the await timeout"
                )
            time.sleep(0.002)
    alive = [p for p in pool._processes if p.is_alive()]
    if not alive:
        return
    victim = alive[int(rule.params.get("worker", 0)) % len(alive)]
    os.kill(victim.pid, signal.SIGKILL)
    release = rule.params.get("release")
    if release is not None:
        Path(release).touch()


def fault_sigkill_self(plan, rule, ctx) -> None:
    """SIGKILL the calling process — the real mid-run kill, no cleanup.

    Used by drill driver subprocesses to die abruptly at a chosen
    injection point (e.g. right after the Nth checkpoint write), the
    way an OOM kill or power loss would.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def fault_unlink_segment(plan, rule, ctx) -> None:
    """Unlink the shared-memory segment named in ``ctx['segment']``.

    Models a segment stolen underneath a worker (a foreign cleaner, a
    crashed publisher's tracker).  The attach path must turn the loss
    into a typed :class:`~repro.parallel.arena.ArenaSegmentLostError`.
    """
    from repro.chaos.errors import FaultPlanError
    from repro.parallel.arena import unlink_segment

    segment = ctx.get("segment")
    if segment is None:
        raise FaultPlanError("unlink-segment needs a 'segment' in the injection context")
    unlink_segment(str(segment))


#: Name → implementation; plan validation rejects unknown names.
FAULTS = {
    "bitflip": fault_bitflip,
    "truncate": fault_truncate,
    "torn-write": fault_torn_write,
    "raise": fault_raise,
    "crash": fault_crash,
    "latency": fault_latency,
    "sigkill-worker": fault_sigkill_worker,
    "sigkill-self": fault_sigkill_self,
    "unlink-segment": fault_unlink_segment,
}
