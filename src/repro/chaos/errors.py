"""Typed errors of the chaos subsystem.

The chaos harness holds the rest of the system to a typed-errors-only
standard, so it keeps the same discipline itself: everything it raises
is a :class:`ChaosError` subclass.  Note the *injected* faults never
raise these — a fault raises (or provokes) an error from the owning
layer's hierarchy (``ArtifactError``, ``PoolError``, ``CrashError``),
exactly what production code would see.  ``ChaosError`` covers the
harness's own failures: malformed plans, unknown sites, drills that
hang or break an invariant.
"""

from __future__ import annotations


class ChaosError(RuntimeError):
    """Base class for chaos-harness failures (not injected faults)."""


class FaultPlanError(ChaosError):
    """A fault plan is malformed: unknown fault, bad trigger, bad JSON."""


class UnknownSiteError(ChaosError):
    """A plan rule names an injection site no loaded module registered."""


class DrillError(ChaosError):
    """A recovery drill failed — one of its invariants did not hold."""


class DrillTimeoutError(DrillError):
    """The drill watchdog expired: the system hung instead of recovering."""


class InvariantViolation(DrillError):
    """A drill observed a non-typed (raw) error escaping a layer boundary.

    Carries the original exception as ``__cause__`` — the whole point of
    the drills is that this never fires.
    """
