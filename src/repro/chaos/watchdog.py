"""Drill watchdog: a hang is a failure, not a wait.

Every recovery drill runs inside a :class:`Watchdog`.  If the budget
expires the watchdog dumps every thread's stack (``faulthandler``, which
fires even when all Python threads are wedged on locks) and interrupts
the main thread; the context manager converts the interrupt into a
typed :class:`~repro.chaos.errors.DrillTimeoutError` so "the system
hung instead of recovering" surfaces as an assertable drill failure —
the first of the three drill invariants.
"""

from __future__ import annotations

import _thread
import faulthandler
import sys
import threading

from repro.chaos.errors import DrillTimeoutError


class Watchdog:
    """Context manager bounding a block's wall-clock time.

    Args:
        budget_s: Seconds the block may run.
        label: Echoed in the timeout error.
    """

    def __init__(self, budget_s: float, label: str = "drill"):
        if budget_s <= 0:
            raise DrillTimeoutError(f"watchdog budget must be positive, got {budget_s}")
        self.budget_s = float(budget_s)
        self.label = label
        self.expired = False
        self._timer: threading.Timer | None = None

    def _fire(self) -> None:
        self.expired = True
        faulthandler.dump_traceback(file=sys.stderr)
        # KeyboardInterrupt in the main thread unsticks interruptible
        # waits; __exit__ retypes it below.  A hard wedge in C code is
        # still caught by the outer faulthandler dump for diagnosis.
        _thread.interrupt_main()

    def __enter__(self) -> "Watchdog":
        self._timer = threading.Timer(self.budget_s, self._fire)
        self._timer.daemon = True
        self._timer.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._timer is not None:
            self._timer.cancel()
        if self.expired:
            raise DrillTimeoutError(
                f"{self.label}: exceeded the {self.budget_s:.0f}s watchdog budget "
                "(stacks dumped to stderr)"
            ) from (exc if isinstance(exc, BaseException) else None)
        return False
