"""repro — reproduction of Tann et al., "Hardware-Software Codesign of
Accurate, Multiplier-free Deep Neural Networks" (DAC 2017).

Public API tour:

* :mod:`repro.nn` — pure-numpy DNN framework (the Caffe substitute).
* :mod:`repro.core` — MF-DFP quantization, Algorithm 1, distillation,
  ensembles (the paper's contribution).
* :mod:`repro.hw` — the multiplier-free accelerator: bit-accurate
  datapath, tile scheduler, 65 nm cost model.
* :mod:`repro.zoo` — ``cifar10_full`` and AlexNet architectures.
* :mod:`repro.datasets` — CIFAR-10/ImageNet surrogates + real loaders.
* :mod:`repro.report` — regenerate the paper's tables.
* :mod:`repro.serve` — request micro-batching over the compiled
  :class:`repro.core.engine.BatchedEngine` for serving workloads.
* :mod:`repro.io` — versioned artifact persistence: the container
  format, training checkpoint/resume, and the on-disk model store the
  serving registry cold-starts from.

Quickstart::

    from repro.datasets import cifar10_surrogate
    from repro.zoo import cifar10_small
    from repro.core import run_algorithm1, MFDFPConfig
    from repro.hw import Accelerator, AcceleratorConfig

    train, test = cifar10_surrogate(n_train=2000, n_test=500, size=16)
    net = cifar10_small(size=16)
    ...  # train the float network (see examples/quickstart.py)
    result = run_algorithm1(net, train, test, train.x[:256])
    accel = Accelerator(AcceleratorConfig(precision="mfdfp"))
    logits = accel.run(result.mfdfp.deploy(), test.x[:8])
"""

__version__ = "1.0.0"

from repro import core, datasets, hw, io, nn, report, serve, zoo

__all__ = ["core", "datasets", "hw", "io", "nn", "report", "serve", "zoo", "__version__"]
