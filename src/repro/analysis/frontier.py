"""Pareto dominance over multi-objective design points.

The co-design explorer (:mod:`repro.explore`) ranks candidate designs on
several objectives at once — accuracy (maximize), energy, area (both
minimize).  This module holds the pure geometry: objective declarations,
pairwise dominance, frontier extraction, and margin-based pruning for the
successive-halving scheduler.

Everything here is deterministic and order-stable: frontiers and pruned
sets preserve the input ordering, ties are kept (two designs with equal
objective vectors both survive), and comparisons are exact float
comparisons — no tolerances sneak in unless the caller passes an explicit
``margin``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class Objective:
    """One axis of a multi-objective comparison.

    Args:
        name: Label used in reports (``"accuracy"``, ``"energy_uj"``...).
        key: Extracts this objective's value from a design point.
        maximize: Direction; ``False`` means smaller is better.
        margin: Slack used only by :func:`prune_dominated` — a point is
            pruned only if it is dominated even after being *credited*
            this much on the objective.  Use a nonzero margin on noisy
            objectives (low-fidelity accuracy estimates) and zero on
            exact ones (modeled area/energy).
    """

    name: str
    key: Callable[[object], float]
    maximize: bool = False
    margin: float = 0.0

    def __post_init__(self):
        if not callable(self.key):
            raise TypeError(f"objective {self.name!r} needs a callable key")
        if not (isinstance(self.margin, (int, float)) and not isinstance(self.margin, bool)):
            raise TypeError(f"objective {self.name!r} margin must be a number")
        if math.isnan(self.margin) or self.margin < 0:
            raise ValueError(f"objective {self.name!r} margin must be >= 0")

    def value(self, point) -> float:
        """The objective value, validated finite.

        NaN/inf never enter a dominance comparison silently — a NaN would
        make ``dominates`` non-transitive and the frontier ill-defined.
        """
        v = float(self.key(point))
        if not math.isfinite(v):
            raise ValueError(f"objective {self.name!r} is {v!r} — frontier needs finite values")
        return v


def dominates(a, b, objectives: Sequence[Objective]) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere and strictly
    better somewhere (margins are ignored — this is exact dominance)."""
    _require_objectives(objectives)
    strictly_better = False
    for obj in objectives:
        va, vb = obj.value(a), obj.value(b)
        if not obj.maximize:
            va, vb = -va, -vb
        if va < vb:
            return False
        if va > vb:
            strictly_better = True
    return strictly_better


def pareto_frontier(points: Sequence, objectives: Sequence[Objective]) -> list:
    """The non-dominated subset of ``points``, input order preserved.

    Duplicated objective vectors all survive (neither dominates the
    other), so bit-identical designs reached through different
    configurations stay visible in the report.
    """
    _require_objectives(objectives)
    points = list(points)
    frontier = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate, objectives) for j, other in enumerate(points) if j != i
        ):
            frontier.append(candidate)
    return frontier


def prune_dominated(points: Sequence, objectives: Sequence[Objective]) -> list:
    """Points that survive *margin-relaxed* dominance, order preserved.

    A point is pruned only when some other point still dominates it after
    the candidate is credited each objective's ``margin``.  With all
    margins zero this equals :func:`pareto_frontier`.  Nonzero margins
    make pruning conservative: a point whose low-fidelity accuracy
    estimate is within ``margin`` of a dominating point is kept for the
    next fidelity rung instead of being discarded on noise.
    """
    _require_objectives(objectives)
    points = list(points)
    kept = []
    for i, candidate in enumerate(points):
        if not any(
            _dominates_with_margin(other, candidate, objectives)
            for j, other in enumerate(points)
            if j != i
        ):
            kept.append(candidate)
    return kept


def _dominates_with_margin(a, b, objectives: Sequence[Objective]) -> bool:
    """Does ``a`` dominate ``b`` even after crediting ``b`` each margin?"""
    strictly_better = False
    for obj in objectives:
        va, vb = obj.value(a), obj.value(b)
        if not obj.maximize:
            va, vb = -va, -vb
        vb += obj.margin  # credit the candidate: prune only clear losses
        if va < vb:
            return False
        if va > vb:
            strictly_better = True
    return strictly_better


def _require_objectives(objectives: Sequence[Objective]) -> None:
    if not objectives:
        raise ValueError("need at least one objective")
    for obj in objectives:
        if not isinstance(obj, Objective):
            raise TypeError(f"expected Objective, got {type(obj).__name__}")
