"""Per-layer quantization-noise analysis.

SQNR (signal-to-quantization-noise ratio) per layer pinpoints where an
8-bit dynamic fixed-point network loses information — the diagnostic
Ristretto-style flows use when a quantized network underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.pow2 import pow2_exponents
from repro.core.quantizer import strip_quantization
from repro.nn.network import Network


def _db_from_powers(p_signal: float, p_noise: float) -> float:
    """SQNR in dB from accumulated signal/noise powers (inf-safe)."""
    if p_noise == 0.0:
        return float("inf")
    if p_signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(p_signal / p_noise)


def sqnr_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB.

    ``10 * log10(||signal||^2 / ||signal - noisy||^2)``; returns ``inf``
    for an exact match and ``-inf`` for zero signal with nonzero noise.
    """
    signal = np.asarray(signal, dtype=np.float64)
    noise = signal - np.asarray(noisy, dtype=np.float64)
    return _db_from_powers(float((signal**2).sum()), float((noise**2).sum()))


@dataclass(frozen=True)
class LayerNoiseReport:
    """Quantization noise of one layer boundary."""

    layer_name: str
    sqnr_db: float
    max_abs_error: float
    signal_range: float


def layer_sqnr_report(
    float_net: Network,
    quant_net: Network,
    x: np.ndarray,
    batch_size: Optional[int] = None,
) -> list[LayerNoiseReport]:
    """Compare per-layer activations of a float net and its quantized twin.

    Both networks must share the same topology (layer names are matched
    positionally).  Returns one report per layer, in execution order.

    ``batch_size`` bounds the activation working set: the comparison
    streams ``x`` in slices and accumulates signal/noise powers and
    per-layer maxima, so probe sets far larger than memory allows for a
    single pass still work.  With ``batch_size=None`` (default) the
    whole batch runs in one pass, byte-identical to the historical
    behaviour; chunked runs may differ in the last floating-point bit
    (summation order), never more.
    """
    if len(float_net.layers) != len(quant_net.layers):
        raise ValueError("networks must have the same number of layers")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive (or None for one pass)")
    if len(x) == 0:
        raise ValueError("cannot compare activations on an empty probe batch")
    n_layers = len(float_net.layers)
    p_signal = [0.0] * n_layers
    p_noise = [0.0] * n_layers
    max_err = [0.0] * n_layers
    sig_range = [0.0] * n_layers
    step = len(x) if batch_size is None else batch_size
    for start in range(0, len(x), max(step, 1)):
        out_f = x[start : start + step]
        out_q = (
            quant_net.input_quantizer(out_f) if quant_net.input_quantizer else out_f
        )
        for i, (layer_f, layer_q) in enumerate(zip(float_net.layers, quant_net.layers)):
            layer_f.training = False
            layer_q.training = False
            out_f = layer_f.forward(out_f)
            out_q = layer_q.forward(out_q)
            signal = np.asarray(out_f, dtype=np.float64)
            noise = signal - np.asarray(out_q, dtype=np.float64)
            p_signal[i] += float((signal**2).sum())
            p_noise[i] += float((noise**2).sum())
            max_err[i] = max(max_err[i], float(np.max(np.abs(out_f - out_q))))
            sig_range[i] = max(sig_range[i], float(np.max(np.abs(out_f))))
    return [
        LayerNoiseReport(
            layer_name=layer_f.name,
            sqnr_db=_db_from_powers(p_signal[i], p_noise[i]),
            max_abs_error=max_err[i],
            signal_range=sig_range[i],
        )
        for i, layer_f in enumerate(float_net.layers)
    ]


def exponent_histogram(net: Network, min_exp: int = -7, max_exp: int = 0) -> dict[str, np.ndarray]:
    """Histogram of power-of-two weight exponents per compute layer.

    Returns, for each parameterized layer, an array of counts indexed by
    exponent (``min_exp`` first).  A mass concentrated at ``min_exp``
    signals weights too small for the clamp — the failure mode that the
    paper's ``e >= -7`` bound risks.
    """
    histograms = {}
    for layer in net.layers:
        if not layer.params:
            continue
        weights = layer.params[0].data
        exps = pow2_exponents(weights, min_exp=min_exp, max_exp=max_exp)
        counts = np.bincount(exps.ravel() - min_exp, minlength=max_exp - min_exp + 1)
        histograms[layer.name] = counts
    return histograms


def quantization_noise_of(net: Network, calibration_x: np.ndarray, x: np.ndarray, **quant_kwargs):
    """One-call helper: quantize a clone and return its SQNR report."""
    from repro.core.mfdfp import MFDFPNetwork

    float_clone = net.clone()
    strip_quantization(float_clone)
    quant_clone = net.clone()
    strip_quantization(quant_clone)
    MFDFPNetwork.from_float(quant_clone, calibration_x, **quant_kwargs)
    return layer_sqnr_report(float_clone, quant_clone, x)


def quantization_noise_campaign(
    net: Network,
    calibration_x: np.ndarray,
    x: np.ndarray,
    configs: Sequence[dict],
    jobs: int = 1,
) -> list[list[LayerNoiseReport]]:
    """Per-layer SQNR reports for many quantization configs at once.

    Each entry of ``configs`` is a ``MFDFPNetwork.from_float`` kwargs
    dict (e.g. ``{"bits": 6}``); configs fan out over the campaign
    thread pool and each quantizes its own clone, so results are
    independent of ``jobs`` — provided configs do not share mutable
    state (in particular, give each stochastic-rounding config its own
    ``rng``; one Generator drawn from by two threads is neither
    thread-safe nor reproducible).  Returns one report list per config,
    in input order.
    """
    from functools import partial

    from repro.analysis.campaign import parallel_map

    return parallel_map(
        [partial(quantization_noise_of, net, calibration_x, x, **cfg) for cfg in configs],
        jobs=jobs,
    )
