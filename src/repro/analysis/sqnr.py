"""Per-layer quantization-noise analysis.

SQNR (signal-to-quantization-noise ratio) per layer pinpoints where an
8-bit dynamic fixed-point network loses information — the diagnostic
Ristretto-style flows use when a quantized network underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pow2 import pow2_exponents
from repro.core.quantizer import strip_quantization
from repro.nn.network import Network


def sqnr_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB.

    ``10 * log10(||signal||^2 / ||signal - noisy||^2)``; returns ``inf``
    for an exact match and ``-inf`` for zero signal with nonzero noise.
    """
    signal = np.asarray(signal, dtype=np.float64)
    noise = signal - np.asarray(noisy, dtype=np.float64)
    p_signal = float((signal**2).sum())
    p_noise = float((noise**2).sum())
    if p_noise == 0.0:
        return float("inf")
    if p_signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(p_signal / p_noise)


@dataclass(frozen=True)
class LayerNoiseReport:
    """Quantization noise of one layer boundary."""

    layer_name: str
    sqnr_db: float
    max_abs_error: float
    signal_range: float


def layer_sqnr_report(
    float_net: Network, quant_net: Network, x: np.ndarray
) -> list[LayerNoiseReport]:
    """Compare per-layer activations of a float net and its quantized twin.

    Both networks must share the same topology (layer names are matched
    positionally).  Returns one report per layer, in execution order.
    """
    if len(float_net.layers) != len(quant_net.layers):
        raise ValueError("networks must have the same number of layers")
    out_f = x
    out_q = quant_net.input_quantizer(x) if quant_net.input_quantizer else x
    reports = []
    for layer_f, layer_q in zip(float_net.layers, quant_net.layers):
        layer_f.training = False
        layer_q.training = False
        out_f = layer_f.forward(out_f)
        out_q = layer_q.forward(out_q)
        reports.append(
            LayerNoiseReport(
                layer_name=layer_f.name,
                sqnr_db=sqnr_db(out_f, out_q),
                max_abs_error=float(np.max(np.abs(out_f - out_q))),
                signal_range=float(np.max(np.abs(out_f))),
            )
        )
    return reports


def exponent_histogram(net: Network, min_exp: int = -7, max_exp: int = 0) -> dict[str, np.ndarray]:
    """Histogram of power-of-two weight exponents per compute layer.

    Returns, for each parameterized layer, an array of counts indexed by
    exponent (``min_exp`` first).  A mass concentrated at ``min_exp``
    signals weights too small for the clamp — the failure mode that the
    paper's ``e >= -7`` bound risks.
    """
    histograms = {}
    for layer in net.layers:
        if not layer.params:
            continue
        weights = layer.params[0].data
        exps = pow2_exponents(weights, min_exp=min_exp, max_exp=max_exp)
        counts = np.bincount(exps.ravel() - min_exp, minlength=max_exp - min_exp + 1)
        histograms[layer.name] = counts
    return histograms


def quantization_noise_of(net: Network, calibration_x: np.ndarray, x: np.ndarray, **quant_kwargs):
    """One-call helper: quantize a clone and return its SQNR report."""
    from repro.core.mfdfp import MFDFPNetwork

    float_clone = net.clone()
    strip_quantization(float_clone)
    quant_clone = net.clone()
    strip_quantization(quant_clone)
    MFDFPNetwork.from_float(quant_clone, calibration_x, **quant_kwargs)
    return layer_sqnr_report(float_clone, quant_clone, x)
