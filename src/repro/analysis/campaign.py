"""Parallel experiment campaigns over the MF-DFP design space.

The ablation sweeps and fault studies in :mod:`repro.analysis` all share
one shape: many independent *points* (a bit width, an exponent clamp, a
bit-error rate), each requiring an evaluation of some executable artifact
on a labelled test batch.  This module factors that shape out:

* :func:`evaluate_batched` — the one evaluation API every campaign
  routes through.  Deployed integer artifacts run through the compiled
  :class:`~repro.core.engine.BatchedEngine` behind a shared
  content-addressed :class:`~repro.core.engine.EngineCache` (compile
  once per content, bit-identical to the eager reference path);
  quantized-simulation networks run through the same chunked top-k
  evaluation the trainer uses, so sweep numbers are unchanged to the
  last bit relative to ``error_rate``.
* :func:`parallel_map` — the fan-out primitive, with two backends.
  ``backend="thread"`` (default) overlaps points on a thread pool: the
  hot loops are BLAS GEMMs and large NumPy kernels that release the
  GIL.  ``backend="process"`` fans points out across real cores via
  :class:`repro.parallel.ProcessPoolRunner` — tasks must then be
  picklable (the sweep/fault task objects are); closures are not.
  Either way campaigns stay *bit-deterministic* — every point derives
  its randomness and its inputs independently, so the result list is
  identical for any ``jobs``, any backend, any placement.
* :func:`run_campaign` — the named campaigns behind
  ``python -m repro sweep`` (bit width, exponent clamp, rounding mode,
  dynamic-vs-static radix, weight-memory faults), with wall-clock and
  engine-cache accounting attached.

Determinism contract: for every campaign, ``jobs=N, backend=B`` returns
a list bit-identical to ``jobs=1, backend="thread"``.  The regression
suite pins this property across both backends.
"""

from __future__ import annotations

import numbers
import os
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.engine import CacheStats, EngineCache
from repro.core.mfdfp import DeployedMFDFP, MFDFPNetwork
from repro.nn.data import ArrayDataset
from repro.nn.network import Network
from repro.nn.optim import SGD
from repro.nn.trainer import TrainHistory, Trainer, topk_correct

#: Evaluation artifacts :func:`evaluate_batched` accepts.
Evaluable = Union[Network, MFDFPNetwork, DeployedMFDFP]

#: Engines compiled for campaign evaluations are shared process-wide by
#: default, so sweeping the same artifact through many campaigns (or the
#: same campaign twice) compiles it once.  Bounded LRU; fault campaigns
#: stream corrupted variants through it without growing memory.
_SHARED_CACHE = EngineCache(capacity=32)


def shared_engine_cache() -> EngineCache:
    """The process-wide engine cache campaign evaluations default to."""
    return _SHARED_CACHE


def evaluate_batched(
    model: Evaluable,
    x: np.ndarray,
    y: np.ndarray,
    *,
    cache: Optional[EngineCache] = None,
    batch_size: int = 256,
    check_widths: bool = False,
    stats: Optional[CacheStats] = None,
) -> float:
    """Top-1 accuracy of an executable artifact on a labelled batch.

    The single evaluation entry point for sweeps, fault studies, and the
    campaign runner:

    * :class:`~repro.core.mfdfp.DeployedMFDFP` — executed through the
      compiled :class:`~repro.core.engine.BatchedEngine` obtained from
      ``cache`` (default: the shared campaign cache), in ``batch_size``
      slices.  Bit-identical to eager ``execute_deployed`` for every
      slice size; the engine compiles once per network *content*.
      ``stats`` attributes the cache lookup to one consumer's
      :class:`~repro.core.engine.CacheStats` (the campaign runner's
      per-campaign accounting) even when the cache is shared.
    * :class:`~repro.core.mfdfp.MFDFPNetwork` / plain
      :class:`~repro.nn.network.Network` — the quantized (or float)
      simulation, evaluated through the trainer's chunked top-k path, so
      the returned accuracy equals ``1 - error_rate(net, dataset)``
      exactly.

    Returns the accuracy as a fraction in ``[0, 1]``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) == 0:
        raise ValueError("cannot evaluate on an empty batch")
    if len(x) != len(y):
        raise ValueError(f"x has {len(x)} samples but y has {len(y)} labels")
    if isinstance(model, DeployedMFDFP):
        engine_cache = cache if cache is not None else _SHARED_CACHE
        engine = engine_cache.get(model, check_widths=check_widths, stats=stats)
        correct = 0
        for start in range(0, len(x), batch_size):
            codes = engine.run_codes(x[start : start + batch_size])
            correct += int((codes.argmax(axis=1) == y[start : start + batch_size]).sum())
        return correct / len(x)
    net = model.net if isinstance(model, MFDFPNetwork) else model
    return topk_correct(net, x, y, k=1, batch_size=batch_size) / len(x)


def train_surrogate(
    net: Network,
    train: ArrayDataset,
    val: ArrayDataset,
    epochs: int,
    *,
    lr: float = 0.02,
    momentum: float = 0.9,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
    compiled: bool = True,
    profile: bool = False,
) -> tuple[TrainHistory, Trainer]:
    """Train a campaign's surrogate network, compiled by default.

    Every ``python -m repro sweep CAMPAIGN --epochs N`` pays this
    training cost before a single campaign point runs, so it routes
    through the compiled training fast path (:mod:`repro.nn.compiled`)
    — bit-identical to the eager trainer, roughly twice the
    samples/sec.  Returns the history and the trainer (whose
    ``profile_rows()`` carry per-layer timings when ``profile``).
    """
    trainer = Trainer(
        net,
        SGD(net.params, lr=lr, momentum=momentum),
        batch_size=batch_size,
        rng=rng or np.random.default_rng(1),  # repro-lint: disable=rng-discipline (deterministic default when the caller injects no rng; fixed so repeated campaigns reproduce)
        compiled=compiled,
        profile=profile,
    )
    history = trainer.fit(train, val, epochs=epochs)
    return history, trainer


#: Fan-out backends :func:`parallel_map` / :func:`run_campaign` accept.
PARALLEL_BACKENDS = ("thread", "process")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None`` means every core.

    ``None`` resolves to ``os.cpu_count()`` explicitly; zero and
    negative values are rejected rather than silently coerced to inline
    execution (the pre-scale-out behavior, which hid misconfigured
    fan-out behind correct-but-serial results).
    """
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer or None (all cores), got {jobs}")
    return int(jobs)


class _PointCancelled(Exception):
    """Internal marker: a queued point skipped after an earlier failure."""


def parallel_map(
    fns: Sequence[Callable[[], object]],
    jobs: Optional[int] = None,
    backend: str = "thread",
    mp_context=None,
) -> list:
    """Run zero-argument point tasks, preserving input order.

    ``jobs=None`` uses every core (:func:`resolve_jobs`); ``jobs=1``
    with the thread backend runs inline — no pool, no thread hops —
    which is also the reference ordering for the determinism contract.
    ``backend="process"`` runs the points in a
    :class:`repro.parallel.ProcessPoolRunner` (tasks must pickle;
    ``mp_context`` picks the start method).

    Error semantics on both backends: the first exception propagates,
    and every point still queued at that moment is cancelled rather
    than run to completion — side-effecting tasks never execute after
    the batch has already failed.
    """
    fns = list(fns)
    jobs = resolve_jobs(jobs)
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {PARALLEL_BACKENDS}")
    if not fns:
        return []
    if backend == "process":
        from repro.parallel import ProcessPoolRunner

        with ProcessPoolRunner(min(jobs, len(fns)), mp_context=mp_context) as runner:
            return runner.map(fns)
    if jobs == 1 or len(fns) == 1:
        return [fn() for fn in fns]

    abort = threading.Event()

    def guarded(fn):
        if abort.is_set():
            raise _PointCancelled()
        try:
            return fn()
        except BaseException:
            abort.set()
            raise

    pool = ThreadPoolExecutor(max_workers=min(jobs, len(fns)), thread_name_prefix="campaign")
    try:
        futures = [pool.submit(guarded, fn) for fn in fns]
        results = []
        error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except (CancelledError, _PointCancelled):
                continue
            except BaseException as exc:
                if error is None:
                    error = exc
                    # Queued futures are cancelled outright; anything a
                    # worker thread already picked up sees the abort flag
                    # in ``guarded`` and skips itself.
                    pool.shutdown(wait=False, cancel_futures=True)
        if error is not None:
            raise error
        return results
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


# -- named campaigns ---------------------------------------------------------------
#: Default point lists per campaign kind; ``points=N`` takes a prefix.
DEFAULT_POINTS = {
    "bitwidth": (4, 6, 8, 10, 12, 16),
    "clamp": (-3, -5, -7, -9, -12, -15),
    "rounding": ("deterministic", "stochastic"),
    "dynamic": ("dynamic", "static"),
    "faults": (0.0, 1e-4, 1e-3, 1e-2, 3e-2, 0.1),
}

CAMPAIGN_KINDS = tuple(DEFAULT_POINTS)


@dataclass(frozen=True)
class CampaignResult:
    """One campaign run: its points plus execution accounting.

    Attributes:
        kind: Campaign name (one of :data:`CAMPAIGN_KINDS`).
        points: ``SweepPoint`` list for the design-space campaigns,
            ``(bit_error_rate, accuracy)`` pairs for ``faults``.
        jobs: Workers the campaign fanned out over (resolved — never
            ``None``).
        elapsed_s: Wall-clock seconds for the point evaluations.
        cache_hits / cache_misses: Engine-cache traffic during this
            campaign (misses == compiles), attributed per campaign: a
            :class:`~repro.core.engine.CacheStats` rides along with
            every lookup this campaign makes, so two campaigns running
            concurrently against the shared cache each see exactly
            their own traffic (``hits + misses`` equals the campaign's
            lookup count).  With ``backend="process"``, lookups happen
            in the workers' own caches, so the host-side stats count
            only host work (typically zero).
        backend: ``"thread"`` or ``"process"`` — how points fanned out.
    """

    kind: str
    points: list
    jobs: int
    elapsed_s: float
    cache_hits: int
    cache_misses: int
    backend: str = "thread"

    def rows(self) -> list[dict]:
        """Uniform ``{label, value}`` rows for printing any campaign."""
        if self.kind == "faults":
            return [{"label": f"ber={ber:.0e}", "value": acc} for ber, acc in self.points]
        return [{"label": p.label, "value": p.error_rate} for p in self.points]


def campaign_points(kind: str, points: Optional[int]) -> tuple:
    """The point prefix a campaign will run (validates ``kind``/``points``).

    Exposed so callers (e.g. the CLI) can reject a bad request *before*
    paying for training or deployment.
    """
    if kind not in DEFAULT_POINTS:
        raise ValueError(f"unknown campaign {kind!r}; choose from {CAMPAIGN_KINDS}")
    defaults = DEFAULT_POINTS[kind]
    if points is None:
        return defaults
    if isinstance(points, bool) or not isinstance(points, numbers.Integral):
        raise ValueError(f"points must be an integer, got {points!r}")
    if not 1 <= points <= len(defaults):
        raise ValueError(
            f"{kind} campaign supports 1..{len(defaults)} points, got {points}"
        )
    return defaults[: int(points)]


def run_campaign(
    kind: str,
    *,
    net: Optional[Network] = None,
    deployed: Optional[DeployedMFDFP] = None,
    calibration_x: Optional[np.ndarray] = None,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    points: Optional[int] = None,
    jobs: Optional[int] = 1,
    rng: Optional[np.random.Generator] = None,
    cache: Optional[EngineCache] = None,
    backend: str = "thread",
    mp_context=None,
) -> CampaignResult:
    """Run one named experiment campaign, fanned out over ``jobs`` workers.

    The design-space campaigns (``bitwidth``, ``clamp``, ``rounding``,
    ``dynamic``) need a float ``net``, a ``calibration_x`` batch, and the
    labelled test arrays ``x``/``y``; they quantize a clone per point and
    evaluate the quantized simulation (numerically identical to the
    serial ``repro.analysis.sweeps`` functions, which they delegate to).
    The ``faults`` campaign needs a ``deployed`` artifact; every
    corrupted variant runs through the shared compiled-engine path.

    ``points`` selects a prefix of :data:`DEFAULT_POINTS`; ``cache``
    overrides the shared engine cache (useful for isolation in tests).
    ``backend="process"`` evaluates points in pool workers
    (bit-identical to the thread backend — pinned by the cross-backend
    property tests); ``mp_context`` picks their start method.
    """
    from repro.analysis import faults as faults_mod
    from repro.analysis import sweeps
    from repro.nn.data import ArrayDataset

    selected = campaign_points(kind, points)
    jobs = resolve_jobs(jobs)
    if x is None or y is None:
        raise ValueError("campaigns need labelled test arrays x and y")
    engine_cache = cache if cache is not None else _SHARED_CACHE
    stats = CacheStats()
    start = time.perf_counter()
    fan_out = {"jobs": jobs, "backend": backend, "mp_context": mp_context}

    if kind == "faults":
        if deployed is None:
            raise ValueError("the faults campaign needs a deployed network")
        result_points = faults_mod.accuracy_under_faults(
            deployed, x, y, selected, rng=rng, cache=engine_cache, stats=stats, **fan_out
        )
    else:
        if net is None or calibration_x is None:
            raise ValueError(f"the {kind} campaign needs net and calibration_x")
        test = ArrayDataset(x, y)
        if kind == "bitwidth":
            result_points = sweeps.bitwidth_sweep(
                net, calibration_x, test, bit_widths=selected, **fan_out
            )
        elif kind == "clamp":
            result_points = sweeps.exponent_clamp_sweep(
                net, calibration_x, test, min_exps=selected, **fan_out
            )
        elif kind == "rounding":
            result_points = sweeps.stochastic_vs_deterministic(
                net, calibration_x, test, rng=rng, modes=selected, **fan_out
            )
        else:  # dynamic
            result_points = sweeps.dynamic_vs_static(
                net, calibration_x, test, modes=selected, **fan_out
            )

    elapsed = time.perf_counter() - start
    hits, misses = stats.counters()
    return CampaignResult(
        kind=kind,
        points=list(result_points),
        jobs=jobs,
        elapsed_s=elapsed,
        cache_hits=hits,
        cache_misses=misses,
        backend=backend,
    )
