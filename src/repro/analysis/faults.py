"""Bit-flip fault injection into deployed weight codes.

The 4-bit ⟨s, e⟩ encoding concentrates a lot of meaning per bit (a sign
flip negates the weight; an exponent MSB flip changes its magnitude by up
to 16x).  This module quantifies that sensitivity — a robustness study in
the spirit of the paper's "inherent resiliency of DNNs" motivation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mfdfp import DeployedMFDFP


@dataclass(frozen=True)
class FaultInjectionResult:
    """Outcome of one fault-injection run."""

    flipped_bits: int
    total_weight_bits: int
    bit_error_rate: float
    faulty: DeployedMFDFP


def inject_weight_faults(
    deployed: DeployedMFDFP,
    bit_error_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> FaultInjectionResult:
    """Flip each stored weight bit independently with the given probability.

    Only the 4-bit weight codes are attacked (biases and radix indices
    model registers/control, not the dense weight memory).  The input
    ``deployed`` network is not modified; a faulty deep copy is returned.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    faulty = copy.deepcopy(deployed)
    flipped = 0
    total_bits = 0
    for op in faulty.ops:
        if op.weight_codes is None:
            continue
        codes = op.weight_codes
        total_bits += codes.size * 4
        flips = rng.random((codes.size, 4)) < bit_error_rate
        if not flips.any():
            continue
        flat = codes.ravel().astype(np.uint8)
        for bit in range(4):
            mask = flips[:, bit]
            flat[mask] ^= np.uint8(1 << bit)
            flipped += int(mask.sum())
        op.weight_codes = flat.reshape(codes.shape)
    return FaultInjectionResult(
        flipped_bits=flipped,
        total_weight_bits=total_bits,
        bit_error_rate=bit_error_rate,
        faulty=faulty,
    )


def accuracy_under_faults(
    deployed: DeployedMFDFP,
    x: np.ndarray,
    y: np.ndarray,
    bit_error_rates,
    rng: Optional[np.random.Generator] = None,
) -> list[tuple[float, float]]:
    """Accuracy vs bit-error-rate curve on a labelled batch.

    Returns ``(bit_error_rate, accuracy)`` pairs, using bit-accurate
    accelerator execution of each faulty network.
    """
    from repro.hw.accelerator import execute_deployed

    rng = rng or np.random.default_rng(0)
    points = []
    for ber in bit_error_rates:
        result = inject_weight_faults(deployed, ber, rng)
        codes = execute_deployed(result.faulty, x)
        acc = float((codes.argmax(axis=1) == y).mean())
        points.append((float(ber), acc))
    return points
