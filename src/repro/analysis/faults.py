"""Bit-flip fault injection into deployed weight codes.

The 4-bit ⟨s, e⟩ encoding concentrates a lot of meaning per bit (a sign
flip negates the weight; an exponent MSB flip changes its magnitude by up
to 16x).  This module quantifies that sensitivity — a robustness study in
the spirit of the paper's "inherent resiliency of DNNs" motivation.

Fault curves are *point-independent*: every bit-error-rate point derives
its own child generator from the caller's ``rng`` and the BER value, so
a point's injected faults do not depend on which other BERs share the
curve, and curves are reproducible under any ``jobs`` fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.engine import CacheStats, EngineCache
from repro.core.mfdfp import DeployedMFDFP


@dataclass(frozen=True)
class FaultInjectionResult:
    """Outcome of one fault-injection run."""

    flipped_bits: int
    total_weight_bits: int
    bit_error_rate: float
    faulty: DeployedMFDFP


def inject_weight_faults(
    deployed: DeployedMFDFP,
    bit_error_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> FaultInjectionResult:
    """Flip each stored weight bit independently with the given probability.

    Only the 4-bit weight codes are attacked (biases and radix indices
    model registers/control, not the dense weight memory).  The input
    ``deployed`` network is never modified.  The returned copy shares
    every untouched tensor with the original — only ``weight_codes``
    arrays that actually took a flip are copied, so a zero-flip
    injection costs a handful of dataclass shells, not a deep copy of
    the weight memory.  Treat both networks as frozen artifacts: the
    shared arrays must not be mutated in place.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (deterministic fallback; fault campaigns derive per-point streams from this parent)
    flipped = 0
    total_bits = 0
    ops = []
    for op in deployed.ops:
        faulty_op = replace(op)  # field-shallow copy: shares the arrays
        if op.weight_codes is not None:
            codes = op.weight_codes
            total_bits += codes.size * 4
            flips = rng.random((codes.size, 4)) < bit_error_rate
            if flips.any():
                flat = codes.ravel().astype(np.uint8)  # fresh buffer for the copy
                for bit in range(4):
                    mask = flips[:, bit]
                    flat[mask] ^= np.uint8(1 << bit)
                    flipped += int(mask.sum())
                faulty_op.weight_codes = flat.reshape(codes.shape)
        ops.append(faulty_op)
    faulty = DeployedMFDFP(
        name=deployed.name,
        input_shape=deployed.input_shape,
        input_frac=deployed.input_frac,
        bits=deployed.bits,
        ops=ops,
    )
    return FaultInjectionResult(
        flipped_bits=flipped,
        total_weight_bits=total_bits,
        bit_error_rate=bit_error_rate,
        faulty=faulty,
    )


def _point_rng(entropy: int, bit_error_rate: float) -> np.random.Generator:
    """Independent child generator for one bit-error-rate point.

    Seeded by the parent generator's one-time entropy draw plus the
    BER's own bit pattern, so the faults injected at a given BER depend
    only on ``(rng, ber)`` — never on the point's position in the curve
    or on which other points accompany it.
    """
    ber_bits = int(np.float64(bit_error_rate).view(np.uint64))
    return np.random.default_rng(np.random.SeedSequence([entropy, ber_bits]))


class _FaultPoint:
    """A picklable zero-argument task for one fault-curve point.

    Injection randomness is fully determined by ``(entropy, ber)`` via
    :func:`_point_rng`, so the same task object produces the same point
    in any thread, any process, any placement.  ``cache`` and ``stats``
    ride along only on the thread backend (an ``EngineCache`` or
    :class:`CacheStats` holds a lock and cannot pickle); process workers
    fall back to their own shared campaign cache with no host-side
    attribution.
    """

    def __init__(self, deployed, ber, entropy, x, y, batch_size, cache, stats=None):
        self.deployed = deployed
        self.ber = ber
        self.entropy = entropy
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.cache = cache
        self.stats = stats

    def __call__(self) -> tuple[float, float]:
        from repro.analysis.campaign import evaluate_batched

        result = inject_weight_faults(self.deployed, self.ber, _point_rng(self.entropy, self.ber))
        acc = evaluate_batched(
            result.faulty,
            self.x,
            self.y,
            cache=self.cache,
            batch_size=self.batch_size,
            stats=self.stats,
        )
        return (float(self.ber), acc)


def accuracy_under_faults(
    deployed: DeployedMFDFP,
    x: np.ndarray,
    y: np.ndarray,
    bit_error_rates,
    rng: Optional[np.random.Generator] = None,
    *,
    jobs: Optional[int] = 1,
    batch_size: int = 256,
    cache: Optional[EngineCache] = None,
    backend: str = "thread",
    mp_context=None,
    stats: Optional[CacheStats] = None,
) -> list[tuple[float, float]]:
    """Accuracy vs bit-error-rate curve on a labelled batch.

    Returns ``(bit_error_rate, accuracy)`` pairs.  Every corrupted
    network executes through the compiled batched engine
    (:func:`repro.analysis.campaign.evaluate_batched` — bit-identical to
    the eager reference execution), and points fan out over ``jobs``
    workers on the chosen ``backend``.  Each point draws from an
    independent child generator keyed by the BER value, so
    ``accuracy_under_faults(d, x, y, [b])`` reproduces the same point
    inside any longer curve and the result is bit-identical for every
    ``jobs``/``backend`` setting.  The flip side of that keying: listing
    the *same* BER twice returns the identical point twice — for
    independent trials at one BER, call again with a different parent
    ``rng``.
    """
    from repro.analysis.campaign import parallel_map

    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (deterministic fallback; fault campaigns derive per-point streams from this parent)
    entropy = int(rng.integers(0, 2**63))
    point_cache = None if backend == "process" else cache
    point_stats = None if backend == "process" else stats
    return parallel_map(
        [
            _FaultPoint(deployed, ber, entropy, x, y, batch_size, point_cache, point_stats)
            for ber in bit_error_rates
        ],
        jobs=jobs,
        backend=backend,
        mp_context=mp_context,
    )
