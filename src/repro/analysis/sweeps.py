"""Parameter sweeps over the quantization design space.

These drive the ablation benchmarks and give downstream users a one-call
answer to "what would N bits have cost me?" — the question Section 1 of
the paper raises against sub-8-bit designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.mfdfp import MFDFPNetwork
from repro.nn.data import ArrayDataset
from repro.nn.network import Network
from repro.nn.trainer import error_rate


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured error rate."""

    label: str
    error_rate: float
    bits: int
    min_exp: int
    dynamic: bool


def _evaluate(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    label: str,
    **kwargs,
) -> SweepPoint:
    clone = net.clone()
    mf = MFDFPNetwork.from_float(clone, calibration_x, **kwargs)
    err = error_rate(mf.net, test)
    return SweepPoint(
        label=label,
        error_rate=err,
        bits=kwargs.get("bits", 8),
        min_exp=kwargs.get("min_exp", -7),
        dynamic=kwargs.get("dynamic", True),
    )


def bitwidth_sweep(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    bit_widths: Sequence[int] = (4, 6, 8, 10, 12, 16),
) -> list[SweepPoint]:
    """Error rate vs activation bit width (weight clamp scales along).

    No fine-tuning is applied: this isolates the representational cost of
    the format, the quantity Figure 3's epoch-0 point reflects.
    """
    return [
        _evaluate(
            net, calibration_x, test, f"{b}-bit", bits=b, min_exp=-(b - 1)
        )
        for b in bit_widths
    ]


def exponent_clamp_sweep(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    min_exps: Sequence[int] = (-3, -5, -7, -9, -12, -15),
) -> list[SweepPoint]:
    """Error rate vs the weight-exponent lower clamp.

    The paper bounds e >= -7 so weights fit 4 bits; this sweep quantifies
    what that clamp costs relative to wider exponent ranges.
    """
    return [
        _evaluate(net, calibration_x, test, f"e>={e}", min_exp=e)
        for e in min_exps
    ]


def dynamic_vs_static(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
) -> list[SweepPoint]:
    """Per-layer (dynamic) vs global (static) fixed-point radix."""
    return [
        _evaluate(net, calibration_x, test, "dynamic", dynamic=True),
        _evaluate(net, calibration_x, test, "static", dynamic=False),
    ]


def stochastic_vs_deterministic(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    rng: Optional[np.random.Generator] = None,
) -> list[SweepPoint]:
    """The weight-rounding-mode comparison of Section 4.1."""
    rng = rng or np.random.default_rng(0)
    return [
        _evaluate(net, calibration_x, test, "deterministic", weight_mode="deterministic"),
        _evaluate(net, calibration_x, test, "stochastic", weight_mode="stochastic", rng=rng),
    ]
