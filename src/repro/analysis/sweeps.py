"""Parameter sweeps over the quantization design space.

These drive the ablation benchmarks and give downstream users a one-call
answer to "what would N bits have cost me?" — the question Section 1 of
the paper raises against sub-8-bit designs.

Every sweep point evaluates through the shared batched-evaluation API
(:func:`repro.analysis.campaign.evaluate_batched`) and fans out over an
optional thread pool (``jobs``).  Point results are independent of the
fan-out: ``jobs=N`` returns a list bit-identical to the serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.campaign import evaluate_batched, parallel_map
from repro.core.mfdfp import MFDFPNetwork
from repro.nn.data import ArrayDataset
from repro.nn.network import Network


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured error rate."""

    label: str
    error_rate: float
    bits: int
    min_exp: int
    dynamic: bool


def _evaluate(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    label: str,
    **kwargs,
) -> SweepPoint:
    clone = net.clone()
    mf = MFDFPNetwork.from_float(clone, calibration_x, **kwargs)
    err = 1.0 - evaluate_batched(mf, test.x, test.y)
    return SweepPoint(
        label=label,
        error_rate=err,
        bits=kwargs.get("bits", 8),
        min_exp=kwargs.get("min_exp", -7),
        dynamic=kwargs.get("dynamic", True),
    )


def _point(net, calibration_x, test, label, **kwargs):
    """A zero-argument closure evaluating one sweep configuration."""
    return lambda: _evaluate(net, calibration_x, test, label, **kwargs)


def bitwidth_sweep(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    bit_widths: Sequence[int] = (4, 6, 8, 10, 12, 16),
    jobs: int = 1,
) -> list[SweepPoint]:
    """Error rate vs activation bit width (weight clamp scales along).

    No fine-tuning is applied: this isolates the representational cost of
    the format, the quantity Figure 3's epoch-0 point reflects.
    """
    return parallel_map(
        [
            _point(net, calibration_x, test, f"{b}-bit", bits=b, min_exp=-(b - 1))
            for b in bit_widths
        ],
        jobs=jobs,
    )


def exponent_clamp_sweep(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    min_exps: Sequence[int] = (-3, -5, -7, -9, -12, -15),
    jobs: int = 1,
) -> list[SweepPoint]:
    """Error rate vs the weight-exponent lower clamp.

    The paper bounds e >= -7 so weights fit 4 bits; this sweep quantifies
    what that clamp costs relative to wider exponent ranges.
    """
    return parallel_map(
        [_point(net, calibration_x, test, f"e>={e}", min_exp=e) for e in min_exps],
        jobs=jobs,
    )


def _mode_points(net, calibration_x, test, modes, mode_kwargs, jobs):
    """Evaluate the requested subset of a fixed mode set."""
    unknown = [m for m in modes if m not in mode_kwargs]
    if unknown:
        raise ValueError(f"unknown modes {unknown}; choose from {tuple(mode_kwargs)}")
    return parallel_map(
        [_point(net, calibration_x, test, m, **mode_kwargs[m]) for m in modes],
        jobs=jobs,
    )


def dynamic_vs_static(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    jobs: int = 1,
    modes: Sequence[str] = ("dynamic", "static"),
) -> list[SweepPoint]:
    """Per-layer (dynamic) vs global (static) fixed-point radix."""
    mode_kwargs = {"dynamic": {"dynamic": True}, "static": {"dynamic": False}}
    return _mode_points(net, calibration_x, test, modes, mode_kwargs, jobs)


def stochastic_vs_deterministic(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    rng: Optional[np.random.Generator] = None,
    jobs: int = 1,
    modes: Sequence[str] = ("deterministic", "stochastic"),
) -> list[SweepPoint]:
    """The weight-rounding-mode comparison of Section 4.1.

    The stochastic point owns the ``rng`` exclusively (the deterministic
    point draws nothing), so the pair can safely run in parallel.
    """
    rng = rng or np.random.default_rng(0)
    mode_kwargs = {
        "deterministic": {"weight_mode": "deterministic"},
        "stochastic": {"weight_mode": "stochastic", "rng": rng},
    }
    return _mode_points(net, calibration_x, test, modes, mode_kwargs, jobs)
