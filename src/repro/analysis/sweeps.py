"""Parameter sweeps over the quantization design space.

These drive the ablation benchmarks and give downstream users a one-call
answer to "what would N bits have cost me?" — the question Section 1 of
the paper raises against sub-8-bit designs.

Every sweep point evaluates through the shared batched-evaluation API
(:func:`repro.analysis.campaign.evaluate_batched`) and fans out over
``jobs`` workers on either fan-out backend (``"thread"`` or
``"process"`` — point tasks are picklable objects, not closures, so
they cross process boundaries).  Point results are independent of the
fan-out: any ``jobs``/``backend`` returns a list bit-identical to the
serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.campaign import evaluate_batched, parallel_map
from repro.core.mfdfp import MFDFPNetwork
from repro.nn.data import ArrayDataset
from repro.nn.network import Network


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured error rate."""

    label: str
    error_rate: float
    bits: int
    min_exp: int
    dynamic: bool


def _evaluate(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    label: str,
    **kwargs,
) -> SweepPoint:
    clone = net.clone()
    mf = MFDFPNetwork.from_float(clone, calibration_x, **kwargs)
    err = 1.0 - evaluate_batched(mf, test.x, test.y)
    return SweepPoint(
        label=label,
        error_rate=err,
        bits=kwargs.get("bits", 8),
        min_exp=kwargs.get("min_exp", -7),
        dynamic=kwargs.get("dynamic", True),
    )


class _SweepTask:
    """A picklable zero-argument task evaluating one sweep configuration.

    Replaces the old lambda closures so sweep points can cross process
    boundaries under ``backend="process"``.  Carries everything the
    point needs (the float network, calibration batch, test set, and
    quantization kwargs — a pickled stochastic ``rng`` draws the same
    values as the live one, keeping points bit-identical across
    backends).
    """

    def __init__(self, net, calibration_x, test, label, **kwargs):
        self.net = net
        self.calibration_x = calibration_x
        self.test = test
        self.label = label
        self.kwargs = kwargs

    def __call__(self) -> SweepPoint:
        return _evaluate(self.net, self.calibration_x, self.test, self.label, **self.kwargs)


def bitwidth_sweep(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    bit_widths: Sequence[int] = (4, 6, 8, 10, 12, 16),
    jobs: Optional[int] = 1,
    backend: str = "thread",
    mp_context=None,
) -> list[SweepPoint]:
    """Error rate vs activation bit width (weight clamp scales along).

    No fine-tuning is applied: this isolates the representational cost of
    the format, the quantity Figure 3's epoch-0 point reflects.
    """
    return parallel_map(
        [
            _SweepTask(net, calibration_x, test, f"{b}-bit", bits=b, min_exp=-(b - 1))
            for b in bit_widths
        ],
        jobs=jobs,
        backend=backend,
        mp_context=mp_context,
    )


def exponent_clamp_sweep(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    min_exps: Sequence[int] = (-3, -5, -7, -9, -12, -15),
    jobs: Optional[int] = 1,
    backend: str = "thread",
    mp_context=None,
) -> list[SweepPoint]:
    """Error rate vs the weight-exponent lower clamp.

    The paper bounds e >= -7 so weights fit 4 bits; this sweep quantifies
    what that clamp costs relative to wider exponent ranges.
    """
    return parallel_map(
        [_SweepTask(net, calibration_x, test, f"e>={e}", min_exp=e) for e in min_exps],
        jobs=jobs,
        backend=backend,
        mp_context=mp_context,
    )


def _mode_points(net, calibration_x, test, modes, mode_kwargs, jobs, backend, mp_context):
    """Evaluate the requested subset of a fixed mode set."""
    unknown = [m for m in modes if m not in mode_kwargs]
    if unknown:
        raise ValueError(f"unknown modes {unknown}; choose from {tuple(mode_kwargs)}")
    return parallel_map(
        [_SweepTask(net, calibration_x, test, m, **mode_kwargs[m]) for m in modes],
        jobs=jobs,
        backend=backend,
        mp_context=mp_context,
    )


def dynamic_vs_static(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    jobs: Optional[int] = 1,
    modes: Sequence[str] = ("dynamic", "static"),
    backend: str = "thread",
    mp_context=None,
) -> list[SweepPoint]:
    """Per-layer (dynamic) vs global (static) fixed-point radix."""
    mode_kwargs = {"dynamic": {"dynamic": True}, "static": {"dynamic": False}}
    return _mode_points(net, calibration_x, test, modes, mode_kwargs, jobs, backend, mp_context)


def stochastic_vs_deterministic(
    net: Network,
    calibration_x: np.ndarray,
    test: ArrayDataset,
    rng: Optional[np.random.Generator] = None,
    jobs: Optional[int] = 1,
    modes: Sequence[str] = ("deterministic", "stochastic"),
    backend: str = "thread",
    mp_context=None,
) -> list[SweepPoint]:
    """The weight-rounding-mode comparison of Section 4.1.

    The stochastic point owns the ``rng`` exclusively (the deterministic
    point draws nothing), so the pair can safely run in parallel — and a
    pickled generator replays the same draws, so the process backend
    returns the same point.
    """
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (deterministic fallback; sweep points derive child streams from this parent)
    mode_kwargs = {
        "deterministic": {"weight_mode": "deterministic"},
        "stochastic": {"weight_mode": "stochastic", "rng": rng},
    }
    return _mode_points(net, calibration_x, test, modes, mode_kwargs, jobs, backend, mp_context)
