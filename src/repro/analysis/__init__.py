"""Analysis tooling around the MF-DFP quantization.

Not part of the paper's tables, but the instruments one needs to *debug*
a quantized network of this kind:

* :mod:`repro.analysis.sqnr` — per-layer signal-to-quantization-noise
  ratios and weight-exponent histograms.
* :mod:`repro.analysis.sweeps` — parameter sweeps (bit width, exponent
  clamp, dynamic-vs-static) used by the ablation benchmarks.
* :mod:`repro.analysis.faults` — bit-flip fault injection into deployed
  weight codes, for robustness studies of the 4-bit encoding.
* :mod:`repro.analysis.frontier` — Pareto dominance geometry (objective
  declarations, frontier extraction, margin-relaxed pruning) used by the
  co-design explorer's successive-halving scheduler.
* :mod:`repro.analysis.campaign` — the shared batched-evaluation API
  (:func:`~repro.analysis.campaign.evaluate_batched`) and the parallel
  campaign runner behind ``python -m repro sweep``: every sweep point
  and fault trial evaluates through the compiled
  :class:`~repro.core.engine.BatchedEngine` / quantized simulation and
  fans out over a thread pool, bit-deterministically.
"""

from repro.analysis.campaign import (
    CAMPAIGN_KINDS,
    CampaignResult,
    evaluate_batched,
    parallel_map,
    run_campaign,
    shared_engine_cache,
    train_surrogate,
)
from repro.analysis.faults import (
    FaultInjectionResult,
    accuracy_under_faults,
    inject_weight_faults,
)
from repro.analysis.frontier import (
    Objective,
    dominates,
    pareto_frontier,
    prune_dominated,
)
from repro.analysis.sqnr import (
    LayerNoiseReport,
    exponent_histogram,
    layer_sqnr_report,
    quantization_noise_campaign,
    quantization_noise_of,
    sqnr_db,
)
from repro.analysis.sweeps import (
    SweepPoint,
    bitwidth_sweep,
    dynamic_vs_static,
    exponent_clamp_sweep,
    stochastic_vs_deterministic,
)

__all__ = [
    "CAMPAIGN_KINDS",
    "CampaignResult",
    "FaultInjectionResult",
    "LayerNoiseReport",
    "Objective",
    "SweepPoint",
    "accuracy_under_faults",
    "bitwidth_sweep",
    "dominates",
    "dynamic_vs_static",
    "evaluate_batched",
    "exponent_clamp_sweep",
    "exponent_histogram",
    "inject_weight_faults",
    "layer_sqnr_report",
    "parallel_map",
    "pareto_frontier",
    "prune_dominated",
    "quantization_noise_campaign",
    "quantization_noise_of",
    "run_campaign",
    "shared_engine_cache",
    "sqnr_db",
    "stochastic_vs_deterministic",
    "train_surrogate",
]
