"""Analysis tooling around the MF-DFP quantization.

Not part of the paper's tables, but the instruments one needs to *debug*
a quantized network of this kind:

* :mod:`repro.analysis.sqnr` — per-layer signal-to-quantization-noise
  ratios and weight-exponent histograms.
* :mod:`repro.analysis.sweeps` — parameter sweeps (bit width, exponent
  clamp, dynamic-vs-static) used by the ablation benchmarks.
* :mod:`repro.analysis.faults` — bit-flip fault injection into deployed
  weight codes, for robustness studies of the 4-bit encoding.
"""

from repro.analysis.faults import FaultInjectionResult, inject_weight_faults
from repro.analysis.sqnr import (
    LayerNoiseReport,
    exponent_histogram,
    layer_sqnr_report,
    sqnr_db,
)
from repro.analysis.sweeps import (
    SweepPoint,
    bitwidth_sweep,
    dynamic_vs_static,
    exponent_clamp_sweep,
)

__all__ = [
    "FaultInjectionResult",
    "LayerNoiseReport",
    "SweepPoint",
    "bitwidth_sweep",
    "dynamic_vs_static",
    "exponent_clamp_sweep",
    "exponent_histogram",
    "inject_weight_faults",
    "layer_sqnr_report",
    "sqnr_db",
]
