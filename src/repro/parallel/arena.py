"""Shared-memory arena of decoded engine weight planes.

One :class:`multiprocessing.shared_memory.SharedMemory` segment per
deployed network, named by its content-addressed
:func:`repro.core.engine.engine_fingerprint` — the same key the
EngineCache uses — holding every conv/dense weight plane in its
canonical float64 layout, concatenated at 8-byte-aligned offsets.  The
publisher decodes each plane **once per host**; workers attach the
segment read-only and hand the views straight to
``BatchedEngine(weight_planes=...)``, so N processes serving a model
share one physical copy of its weights and perform zero LUT decodes.

Lifecycle invariants:

* The :class:`SharedWeightArena` that created a segment owns it —
  ``close()`` (context-manager exit or atexit) unlinks it.  Publishing
  is idempotent per fingerprint within an arena.
* A leftover same-name segment from a dead publisher is *reclaimed*:
  adopted and rewritten when its size fits (contents are a pure
  function of the fingerprint, so the rewrite is byte-idempotent), or
  unlinked and recreated when it does not.
* Attachers memoize per process (:data:`_ATTACHED`), so a worker maps
  each model at most once no matter how many engines it builds.  Pool
  workers share the publisher's resource tracker (fork and spawn both
  inherit its fd), so the 3.11 attach-side re-register is a harmless
  set dedup; the publisher alone unlinks and unregisters, in
  :meth:`SharedWeightArena.close`.
* Attached views are explicitly re-frozen (``writeable=False`` does not
  survive a trip through ``mmap`` any more than it survives pickle).
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.chaos.registry import inject, register_site
from repro.core.engine import decode_weight_plane, engine_fingerprint
from repro.core.mfdfp import DeployedMFDFP
from repro.parallel.pool import PoolError


class ArenaClosedError(PoolError):
    """Publish attempted on a :class:`SharedWeightArena` after ``close()``.

    Once an arena unlinks its segments the specs it handed out are dead;
    callers must build a fresh arena rather than race the teardown.
    """


class ArenaSegmentLostError(PoolError):
    """A worker tried to attach a segment that no longer exists.

    The publisher died (its atexit unlinked the segment) or an external
    actor unlinked it; the spec the worker holds is dead and the model
    must be republished before workers can attach again.
    """

SEGMENT_PREFIX = "repro-wa"

register_site(
    "parallel.arena.attach",
    layer="parallel",
    description="Before a worker maps a shared-memory weight segment; "
    "context has segment (the segment name).",
)


def unlink_segment(name: str) -> bool:
    """Forcibly unlink a shared-memory segment by name (chaos/test hook).

    Models an external actor (OOM reaper, operator cleanup script,
    publisher crash) destroying a segment while workers still hold its
    spec.  Returns ``False`` when the segment does not exist.  Lives
    here so all :class:`~multiprocessing.shared_memory.SharedMemory`
    lifecycle manipulation stays inside the arena module.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()  # also unregisters from the tracker
    except FileNotFoundError:
        _untrack(name)  # raced with the owner's teardown
    # Attaching registered the name with this process's tracker (3.11
    # attach-side re-register); the unlink above already dropped it, so
    # just close our mapping.
    shm.close()
    return True


def _untrack(name: str) -> None:
    """Drop a segment from the stdlib resource tracker's unlink list.

    ``SharedMemory.unlink`` unregisters as a side effect; this is for
    the paths where the segment vanished underneath us (someone else
    unlinked first), so the tracker does not warn about — and try to
    unlink — a name that no longer exists at interpreter shutdown.
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass  # tracker may be absent (already reaped) on some platforms


@dataclass(frozen=True)
class PlaneSpec:
    """Location of one op's weight plane inside its model's segment."""

    op_index: int
    shape: tuple
    offset: int


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable handle a worker needs to attach one model's planes."""

    fingerprint: str
    segment: str
    planes: tuple  # tuple[PlaneSpec, ...]
    total_bytes: int


class SharedWeightArena:
    """Owns the shared-memory segments for a host's published models.

    Counters: ``created`` segments made fresh, ``adopted`` leftover
    segments reused in place, ``reclaimed`` leftovers unlinked and
    recreated because their size no longer matched.
    """

    def __init__(self, prefix: str = SEGMENT_PREFIX):
        self.prefix = prefix
        self._segments: dict[str, tuple[shared_memory.SharedMemory, ArenaSpec]] = {}
        self._closed = False
        self.created = 0
        self.adopted = 0
        self.reclaimed = 0
        atexit.register(self.close)

    def segment_name(self, fingerprint: str) -> str:
        return f"{self.prefix}-{fingerprint}"

    def __len__(self) -> int:
        return len(self._segments)

    def spec(self, fingerprint: str) -> Optional[ArenaSpec]:
        entry = self._segments.get(fingerprint)
        return entry[1] if entry is not None else None

    def publish(self, deployed: DeployedMFDFP) -> ArenaSpec:
        """Decode ``deployed``'s weight planes into shared memory (once).

        Returns the (picklable) :class:`ArenaSpec` workers attach with;
        republishing the same network returns the existing spec without
        touching memory.
        """
        if self._closed:
            raise ArenaClosedError("arena is closed")
        fingerprint = engine_fingerprint(deployed)
        existing = self._segments.get(fingerprint)
        if existing is not None:
            return existing[1]

        plane_specs = []
        planes = []
        offset = 0
        for i, op in enumerate(deployed.ops):
            plane = decode_weight_plane(op)
            if plane is None:
                continue
            plane_specs.append(PlaneSpec(i, tuple(plane.shape), offset))
            planes.append(plane)
            offset += plane.nbytes  # float64 planes keep offsets 8-aligned

        total = max(offset, 8)  # zero-weight nets still get a valid segment
        name = self.segment_name(fingerprint)
        shm = self._allocate(name, total)
        for spec, plane in zip(plane_specs, planes):
            view = np.ndarray(spec.shape, dtype=np.float64, buffer=shm.buf, offset=spec.offset)
            view[...] = plane

        arena_spec = ArenaSpec(fingerprint, name, tuple(plane_specs), total)
        self._segments[fingerprint] = (shm, arena_spec)
        return arena_spec

    def _allocate(self, name: str, total: int) -> shared_memory.SharedMemory:
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        except FileExistsError:
            leftover = shared_memory.SharedMemory(name=name)
            if leftover.size >= total:
                # Possibly still live in another process; contents are
                # fingerprint-determined, so rewriting in place is safe.
                self.adopted += 1
                return leftover
            leftover.close()
            try:
                leftover.unlink()  # also unregisters from the tracker
            except FileNotFoundError:
                _untrack(name)  # raced with another reclaimer; drop our entry
            self.reclaimed += 1
            shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        self.created += 1
        return shm

    def close(self) -> None:
        """Unlink every owned segment (idempotent; also runs at exit)."""
        if self._closed:
            return
        self._closed = True
        segments, self._segments = self._segments, {}
        for shm, _ in segments.values():
            try:
                shm.unlink()  # also unregisters from the tracker
            except FileNotFoundError:
                _untrack(shm.name)  # already unlinked elsewhere; drop our entry
            try:
                shm.close()
            except BufferError:
                pass  # a live engine in this process still holds views

    def __enter__(self) -> "SharedWeightArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- attach side (runs in workers; memoized per process) -------------------

_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, dict[int, np.ndarray]]] = {}


def attach_planes(spec: ArenaSpec) -> dict[int, np.ndarray]:
    """Map a published model's planes, at most once per process.

    Returns ``{op_index: frozen float64 view}`` suitable for
    ``BatchedEngine(weight_planes=...)``.  Views are backed directly by
    the shared segment — no copy — and explicitly re-frozen.
    """
    cached = _ATTACHED.get(spec.segment)
    if cached is not None:
        return cached[1]
    inject("parallel.arena.attach", segment=spec.segment)
    try:
        shm = shared_memory.SharedMemory(name=spec.segment)
    except FileNotFoundError as exc:
        raise ArenaSegmentLostError(
            f"shared-memory segment {spec.segment!r} no longer exists "
            "(publisher gone?); republish the model before attaching"
        ) from exc
    # No tracker unregister here: pool workers share the publisher's
    # resource tracker (fork and spawn both inherit its fd), whose name
    # set dedups the attach-side re-register; the publishing arena's
    # close() does the single unregister when it unlinks.
    views: dict[int, np.ndarray] = {}
    for plane in spec.planes:
        view = np.ndarray(plane.shape, dtype=np.float64, buffer=shm.buf, offset=plane.offset)
        view.setflags(write=False)
        views[plane.op_index] = view
    _ATTACHED[spec.segment] = (shm, views)
    return views


def attached_segment_count() -> int:
    """How many distinct segments this process has mapped."""
    return len(_ATTACHED)


def detach_all() -> None:
    """Unmap everything this process attached (test/diagnostic hook).

    Callers must drop their engine references first — numpy views into
    a closed segment are invalid.
    """
    attached = list(_ATTACHED.values())
    _ATTACHED.clear()
    for shm, views in attached:
        views.clear()
        try:
            shm.close()
        except BufferError:
            pass  # a live engine still holds views; leave the mapping
