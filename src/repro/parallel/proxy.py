"""Host-side engine facade executing batches in pool workers.

:class:`SharedEngineProxy` quacks like a
:class:`~repro.core.engine.BatchedEngine` for everything the serving
tier touches — ``run``, ``input_shape``, ``deployed``, ``fingerprint``
— but ships each batch to a :class:`~repro.parallel.pool.ProcessPoolRunner`
worker, where the real engine runs over shared-memory weight planes.
Supervision, metrics, adaptive batching, and rollover all operate on it
unchanged; a worker crash surfaces through ``run`` as
:class:`~repro.parallel.pool.WorkerCrashedError`, which the Supervisor
already treats as actor death.
"""

from __future__ import annotations

import numpy as np

from repro.core.mfdfp import DeployedMFDFP
from repro.parallel import worker as worker_mod
from repro.parallel.arena import ArenaSpec
from repro.parallel.pool import ProcessPoolRunner


class SharedEngineProxy:
    """Batched-engine stand-in whose batches execute in pool workers.

    Self-healing cold path: any worker may pick a batch up, and one
    that has not installed the model yet raises
    :class:`~repro.parallel.worker.ModelNotLoadedError`; the proxy
    retries once with :func:`~repro.parallel.worker.install_and_run`,
    which ships the (weightless-on-the-wire) deployed artifact and
    attaches the shared planes.  After each worker has seen each model
    once, requests carry only the fingerprint and the batch.
    """

    def __init__(
        self,
        runner: ProcessPoolRunner,
        deployed: DeployedMFDFP,
        spec: ArenaSpec,
        check_widths: bool = False,
    ):
        self.runner = runner
        self.deployed = deployed
        self.spec = spec
        self.check_widths = check_widths
        self.fingerprint = spec.fingerprint
        self.input_shape = tuple(deployed.input_shape)

    def run(self, x: np.ndarray) -> np.ndarray:
        try:
            return self.runner.call(worker_mod.run_batch, self.fingerprint, x)
        except worker_mod.ModelNotLoadedError:
            return self.runner.call(
                worker_mod.install_and_run, self.deployed, self.spec, x, self.check_widths
            )

    def __repr__(self) -> str:
        return (
            f"SharedEngineProxy({self.deployed.name}, segment={self.spec.segment}, "
            f"workers={self.runner.workers})"
        )
