"""Multi-process scale-out: shared-memory weights, process-pool fan-out.

The package behind ``backend="process"`` everywhere the repo
parallelizes — campaign fan-out (:func:`repro.analysis.campaign.parallel_map`)
and the serving tier's process-worker mode
(``ServerRuntime(backend="process")``):

* :mod:`~repro.parallel.pool` — :class:`ProcessPoolRunner`, an eagerly
  started, crash-typed, cancellation-aware worker pool.
* :mod:`~repro.parallel.arena` — :class:`SharedWeightArena`, one
  shared-memory segment of decoded weight planes per model fingerprint,
  mapped at most once per process.
* :mod:`~repro.parallel.worker` — the module-level task functions
  workers execute, and the per-process engine table they serve from.
* :mod:`~repro.parallel.proxy` — :class:`SharedEngineProxy`, the
  engine facade the serving tier drives.
"""

from repro.parallel.arena import (
    ArenaClosedError,
    ArenaSpec,
    PlaneSpec,
    SharedWeightArena,
    attach_planes,
    attached_segment_count,
)
from repro.parallel.pool import (
    PoolClosedError,
    PoolError,
    ProcessPoolRunner,
    WorkerCrashedError,
    default_context,
)
from repro.parallel.proxy import SharedEngineProxy
from repro.parallel.worker import ModelNotLoadedError

__all__ = [
    "ArenaClosedError",
    "ArenaSpec",
    "ModelNotLoadedError",
    "PlaneSpec",
    "PoolClosedError",
    "PoolError",
    "ProcessPoolRunner",
    "SharedEngineProxy",
    "SharedWeightArena",
    "WorkerCrashedError",
    "attach_planes",
    "attached_segment_count",
    "default_context",
]
