"""Worker-process side of the process-pool backend.

Module-level task functions (picklable by reference, as
:class:`~repro.parallel.pool.ProcessPoolRunner` requires) plus the
per-process model table they serve from.  A worker installs a model
once — building a :class:`~repro.core.engine.BatchedEngine` over
shared-memory weight planes via :func:`repro.parallel.arena.attach_planes`
— and then executes any number of batches against it by fingerprint,
with zero per-request pickling of weights and zero LUT decodes.

Also home to :func:`runtime_check`, the probe the fork/spawn regression
tests dispatch to assert the process-global invariants (frozen
``lru_cache`` gather tables, engine-cache same-object semantics, frozen
shared-plane views) hold in children under both start methods.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.core import engine as engine_mod
from repro.core.engine import BatchedEngine, engine_fingerprint
from repro.core.mfdfp import DeployedMFDFP
from repro.parallel.arena import ArenaSpec, attach_planes, attached_segment_count


class ModelNotLoadedError(RuntimeError):
    """This worker has not installed the requested model yet.

    Hosts recover by resending the batch through
    :func:`install_and_run` (see
    :class:`~repro.parallel.proxy.SharedEngineProxy`).
    """


#: Engines this worker has compiled, by content fingerprint.
_MODELS: dict[str, BatchedEngine] = {}

#: Decode-counter value when this worker started serving (fork copies
#: the parent's counter, so raw counts include pre-fork publisher work).
_DECODE_BASELINE = 0


def mark_decode_baseline() -> None:
    """Zero this worker's decode accounting; use as the pool initializer.

    Makes ``worker_stats()["plane_decodes"]`` mean "LUT decodes *this
    worker* performed", which is what the single-mapping-per-host
    assertions check (it must stay 0 when serving from shared planes).
    """
    global _DECODE_BASELINE
    _DECODE_BASELINE = engine_mod.plane_decode_count()


def init_serving(
    deployed: DeployedMFDFP,
    spec: Optional[ArenaSpec] = None,
    check_widths: bool = False,
) -> None:
    """Pool initializer: zero decode accounting, then pre-install a model.

    With this as the pool's ``initializer`` (and the picklable
    ``(deployed, spec)`` as ``initargs``), every worker holds the model
    before its first task, so the steady state ships only
    ``(fingerprint, batch)`` per request — never the artifact.
    """
    mark_decode_baseline()
    install_model(deployed, spec, check_widths)


def install_model(
    deployed: DeployedMFDFP,
    spec: Optional[ArenaSpec] = None,
    check_widths: bool = False,
) -> str:
    """Compile ``deployed`` in this worker (idempotent); returns its fingerprint.

    With an :class:`ArenaSpec`, the engine's weight planes are the
    shared-memory views — no decode happens here.  The engine is also
    seeded into the worker's shared campaign cache, so campaign tasks
    evaluating the same content hit it instead of recompiling.
    """
    fingerprint = engine_fingerprint(deployed)
    if fingerprint in _MODELS:
        return fingerprint
    planes = attach_planes(spec) if spec is not None else None
    engine = BatchedEngine(deployed, check_widths=check_widths, weight_planes=planes)
    _MODELS[fingerprint] = engine
    from repro.analysis.campaign import shared_engine_cache

    shared_engine_cache().install(engine)
    return fingerprint


def run_batch(fingerprint: str, x: np.ndarray) -> np.ndarray:
    """Run one batch on an installed model; raises :class:`ModelNotLoadedError`."""
    engine = _MODELS.get(fingerprint)
    if engine is None:
        raise ModelNotLoadedError(fingerprint)
    return engine.run(x)


def install_and_run(
    deployed: DeployedMFDFP,
    spec: Optional[ArenaSpec],
    x: np.ndarray,
    check_widths: bool = False,
) -> np.ndarray:
    """Install-if-needed then run: the proxy's cold-path fallback."""
    return run_batch(install_model(deployed, spec, check_widths), x)


def worker_stats() -> dict:
    """Accounting snapshot for the single-mapping-per-host assertions."""
    return {
        "pid": os.getpid(),
        "models": sorted(_MODELS),
        "attached_segments": attached_segment_count(),
        "plane_decodes": engine_mod.plane_decode_count() - _DECODE_BASELINE,
    }


def echo(value):
    """Return ``value`` unchanged — the pool's liveness/ping probe."""
    return value


def fail(message: str = "boom") -> None:
    """Raise ``ValueError(message)`` — the pool's error-path probe."""
    raise ValueError(message)  # repro-lint: disable=error-taxonomy (deliberate error-path probe; tests assert a plain ValueError round-trips the pool)


def crash(exit_code: int = 137) -> None:
    """Hard-kill this worker (test hook for the typed-death guarantee)."""
    os._exit(exit_code)


def hang(seconds: float = 60.0):
    """Block, then echo back — a task guaranteed to be mid-flight when killed."""
    import time

    time.sleep(seconds)
    return seconds


def runtime_check(
    spec: Optional[ArenaSpec] = None,
    deployed: Optional[DeployedMFDFP] = None,
) -> dict:
    """Probe the process-global engine invariants inside this worker.

    Children rebuild the ``lru_cache`` gather tables from scratch (the
    caches are per-process), so the properties that matter — frozen
    arrays, memoized same-object returns — must be re-established here,
    not inherited; this verifies they are, under fork and spawn alike.
    """
    im1 = engine_mod._im2col_indices(3, 8, 8, 3, 1, 1)
    im2 = engine_mod._im2col_indices(3, 8, 8, 3, 1, 1)
    pool1 = engine_mod._pool_indices(8, 8, 2, 2, 0, True)
    pool2 = engine_mod._pool_indices(8, 8, 2, 2, 0, True)
    out = {
        "pid": os.getpid(),
        "im2col_frozen": all(not a.flags.writeable for a in im1 if isinstance(a, np.ndarray)),
        "im2col_memoized": all(a is b for a, b in zip(im1, im2) if isinstance(a, np.ndarray)),
        "pool_frozen": all(not a.flags.writeable for a in pool1 if isinstance(a, np.ndarray)),
        "pool_memoized": all(a is b for a, b in zip(pool1, pool2) if isinstance(a, np.ndarray)),
    }
    if deployed is not None:
        from repro.analysis.campaign import shared_engine_cache

        cache = shared_engine_cache()
        first = cache.get(deployed)
        second = cache.get(deployed)
        out["cache_same_engine"] = first is second
        probe = np.arange(int(np.prod(first.input_shape)), dtype=np.float32)
        probe = (probe % 7 - 3).reshape((1, *first.input_shape)) / 4.0
        out["digest"] = first.run(probe).tobytes().hex()[:32]
    if spec is not None:
        views = attach_planes(spec)
        out["planes_frozen"] = all(not v.flags.writeable for v in views.values())
        out["attach_memoized"] = attach_planes(spec) is views
        out["attached_segments"] = attached_segment_count()
    return out
