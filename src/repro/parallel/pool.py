"""A supervised process pool: real cores for GIL-bound fan-out.

:class:`ProcessPoolRunner` is the execution backend behind
``backend="process"`` in :func:`repro.analysis.campaign.parallel_map`
and the process-worker mode of
:class:`repro.serve.runtime.ServerRuntime`.  It deliberately owns its
worker processes instead of wrapping
:class:`concurrent.futures.ProcessPoolExecutor`, because the repo's
parallel paths need guarantees the stdlib pool does not make:

* **Eager start** — every worker is forked/spawned at construction,
  before any serving threads exist, so a fork can never duplicate a
  thread holding a lock (the classic fork-after-threads deadlock).
* **Typed death** — a worker killed mid-task (OOM, SIGKILL, segfault)
  surfaces as :class:`WorkerCrashedError` on every pending future
  within the liveness-poll interval; nothing hangs waiting on a queue
  a dead process will never feed.
* **First-error cancellation** — :meth:`map` aborts the remaining
  queued tasks on the first failure (workers drain them without
  executing), so side-effecting point closures never run after a
  campaign has already failed.
* **Pre-pickled payloads** — tasks and results cross the queues as
  explicit pickle bytes, so an unpicklable argument raises in the
  caller and an unpicklable result raises in the future, instead of
  vanishing inside a queue feeder thread.

Workers run an optional ``initializer`` (e.g.
:func:`repro.parallel.worker.install_model` attaching shared-memory
weight planes) before serving tasks.  Task functions must be module
level (picklable by reference); see :mod:`repro.parallel.worker` for
the ones the repo ships.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import pickle
import queue
import threading
from concurrent.futures import CancelledError, Future
from typing import Callable, Optional, Sequence

from repro.chaos.registry import inject, register_site


class PoolError(RuntimeError):
    """Base class for process-pool failures."""


class WorkerCrashedError(PoolError):
    """A worker process died without reporting a result.

    Raised on every future that was pending when the death was
    detected, and on every submit after it — the pool is *broken* and
    must be replaced, exactly like
    :class:`concurrent.futures.process.BrokenProcessPool`.
    """


class PoolClosedError(PoolError):
    """The pool was closed while (or before) the task was pending."""


register_site(
    "parallel.pool.submit",
    layer="parallel",
    description="After a task is queued to the worker pool; context has "
    "task_index (monotonic id) and pool (the ProcessPoolRunner).",
)


def default_context() -> str:
    """The start method the runner uses when none is given.

    ``fork`` where the platform offers it — workers inherit the parent's
    imported modules, so startup is milliseconds — and ``spawn``
    elsewhere.  Callers forking from multi-threaded processes should
    construct their runner before starting threads (the serving runtime
    does) or pass ``mp_context="spawn"``.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _pickle_payload(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _pickle_error(error: BaseException) -> bytes:
    """Pickle an exception, degrading to a RuntimeError carrying its repr."""
    try:
        return _pickle_payload(error)
    except Exception:
        return _pickle_payload(RuntimeError(f"{type(error).__name__}: {error}"))


def _worker_main(tasks, results, abort, initializer, initargs) -> None:
    """Worker loop: run the initializer, then drain tasks until sentinel."""
    if initializer is not None:
        try:
            initializer(*pickle.loads(initargs))
        except BaseException as error:  # init failure breaks the pool, typed
            results.put((None, "init_error", _pickle_error(error)))
            return
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, payload = item
        if abort.is_set():
            results.put((task_id, "cancelled", b""))
            continue
        try:
            fn, args, kwargs = pickle.loads(payload)
            out = fn(*args, **kwargs)
            body = _pickle_payload(out)
        except BaseException as error:
            results.put((task_id, "error", _pickle_error(error)))
        else:
            results.put((task_id, "ok", body))


class ProcessPoolRunner:
    """Eagerly started worker processes draining a shared task queue.

    Args:
        workers: Worker process count (all started in the constructor).
        mp_context: Start method name (``"fork"``/``"spawn"``/
            ``"forkserver"``) or a :mod:`multiprocessing` context;
            default :func:`default_context`.
        initializer: Module-level callable run once in every worker
            before it serves tasks; a raise breaks the pool.
        initargs: Arguments for ``initializer`` (must pickle).

    Thread-safe: any number of threads may :meth:`submit` / :meth:`call`
    concurrently (the serving runtime's per-model actor workers do).
    """

    _LIVENESS_POLL_S = 0.1

    def __init__(
        self,
        workers: int,
        mp_context=None,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if mp_context is None or isinstance(mp_context, str):
            ctx = mp.get_context(mp_context or default_context())
        else:
            ctx = mp_context
        self.workers = workers
        self._ctx = ctx
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._abort = ctx.Event()
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._pending: dict[int, Future] = {}
        self._closed = False
        self._broken: Optional[BaseException] = None
        # Start the stdlib resource tracker *before* forking: workers
        # must inherit the live tracker fd.  A worker that lazily spawns
        # its own tracker (fd unset at fork) would unlink shared-memory
        # segments the parent still serves the moment it exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        initargs_payload = _pickle_payload(tuple(initargs))
        self._processes = [
            ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, self._abort, initializer, initargs_payload),
                name=f"repro-pool-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True
        )
        self._collector.start()
        atexit.register(self.close)

    # -- submission --------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Queue one task; resolves to its return value.

        ``fn`` must be picklable by reference (module-level).  Raises
        :class:`PoolClosedError` after :meth:`close` and
        :class:`WorkerCrashedError` once the pool is broken; an
        unpicklable argument raises here, synchronously.
        """
        payload = _pickle_payload((fn, args, kwargs))
        future: Future = Future()
        with self._lock:
            if self._broken is not None:
                raise WorkerCrashedError(str(self._broken))
            if self._closed:
                raise PoolClosedError("pool is closed")
            task_id = next(self._ids)
            self._pending[task_id] = future
        self._tasks.put((task_id, payload))
        inject("parallel.pool.submit", task_index=task_id, pool=self)
        return future

    def call(self, fn: Callable, *args, **kwargs):
        """Run one task and block for its result (or typed failure)."""
        return self.submit(fn, *args, **kwargs).result()

    def map(self, fns: Sequence[Callable]) -> list:
        """Run zero-argument callables, preserving input order.

        The first exception propagates; every task still queued at that
        moment is aborted — workers drain but do not execute it — so no
        point runs after the batch has failed.  A broken pool raises
        :class:`WorkerCrashedError`.
        """
        futures = [self.submit(fn) for fn in fns]
        error: Optional[BaseException] = None
        results = []
        for future in futures:
            try:
                value = future.result()
            except CancelledError:
                continue  # aborted after the first error
            except BaseException as exc:
                if error is None:
                    error = exc
                    self._abort.set()
                continue
            results.append(value)
        if error is not None:
            raise error
        return results

    # -- result collection / supervision -----------------------------------
    def _collect(self) -> None:
        while True:
            try:
                task_id, status, body = self._results.get(timeout=self._LIVENESS_POLL_S)
            except queue.Empty:
                with self._lock:
                    if self._closed:
                        return
                    dead = [p for p in self._processes if p.exitcode not in (None, 0)]
                if dead:
                    codes = ", ".join(str(p.exitcode) for p in dead)
                    self._break(
                        WorkerCrashedError(
                            f"{len(dead)} worker(s) died without reporting a result "
                            f"(exit codes: {codes})"
                        )
                    )
                    return
                continue
            if status == "init_error":
                self._break(WorkerCrashedError(f"worker initializer failed: {pickle.loads(body)}"))
                return
            with self._lock:
                future = self._pending.pop(task_id, None)
            if future is None:
                continue
            if status == "ok":
                future.set_result(pickle.loads(body))
            elif status == "cancelled":
                future.cancel()
            else:
                future.set_exception(pickle.loads(body))

    def _break(self, error: BaseException) -> None:
        """Mark the pool broken and fail every pending future, typed."""
        with self._lock:
            self._broken = error
            pending, self._pending = list(self._pending.values()), {}
        self._abort.set()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    @property
    def broken(self) -> bool:
        with self._lock:
            return self._broken is not None

    def alive_workers(self) -> int:
        return sum(p.is_alive() for p in self._processes)

    # -- lifecycle ---------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers and fail anything still pending (idempotent).

        Queued-but-unserved tasks resolve with :class:`PoolClosedError`;
        workers finish their in-flight task, then exit on the sentinel
        (stragglers are terminated after ``timeout``).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._processes:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break  # queue already torn down
        deadline = timeout
        for process in self._processes:
            process.join(timeout=max(0.1, deadline))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._collector.join(timeout=2.0)
        with self._lock:
            pending, self._pending = list(self._pending.values()), {}
        closed = self._broken or PoolClosedError("pool closed before serving this task")
        for future in pending:
            if not future.done():
                future.set_exception(closed)
        for q in (self._tasks, self._results):
            q.cancel_join_thread()
            q.close()

    def __enter__(self) -> "ProcessPoolRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
