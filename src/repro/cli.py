"""Command-line interface: regenerate the paper's tables from a shell.

Usage::

    python -m repro table1            # design area / power (Table 1)
    python -m repro table3            # parameter memory (Table 3)
    python -m repro schedule          # per-layer latency of both networks
    python -m repro fig3 [--epochs N] [--no-compiled] [--profile]
                                      # Figure-3 curves on the surrogate
    python -m repro table2 [--epochs N] [--no-compiled] [--profile]
                                      # accuracy/time/energy (Table 2)
    python -m repro serve [--models a,b] [--workers N] [--batch N] \
        [--max-queue N] [--requests N] [--store DIR] \
        [--target-p99-ms MS] [--min-batch N] [--quarantine-after N] \
        [--backend thread|process] [--pool-workers N] [--health]
                                      # supervised multi-model serving
    python -m repro sweep CAMPAIGN [--jobs N] [--backend thread|process] \
        [--points N] [--epochs N]
                                      # parallel ablation/fault campaigns
    python -m repro export --store DIR [--models a,b]
                                      # publish zoo deployables to a store
    python -m repro import SRC --store DIR [--name N]
                                      # validate + publish an artifact file
    python -m repro resume --checkpoint-dir DIR [--epochs N]
                                      # continue a checkpointed training run
    python -m repro chaos --drill NAME|all [--seed N] [--quick] [--list]
                                      # fault-injection recovery drills
    python -m repro explore [--bits 4,8] [--min-exps -7,-9] \
        [--weight-modes deterministic] [--num-pus 1,2] [--technologies 65nm] \
        [--seed N] [--rung-epochs 0,1] [--final-epochs N] [--margin X] \
        [--no-prune] [--jobs N] [--backend thread|process] \
        [--checkpoint-dir DIR] [--epochs N]
                                      # co-design DSE with Pareto pruning

``table2`` and ``fig3`` train on the CIFAR-10 surrogate and take a few
minutes; the others are instantaneous.  Training runs through the
compiled fast path (:mod:`repro.nn.compiled`) by default —
``--no-compiled`` switches to the eager layer stack (bit-identical
curves, useful to verify exactly that) and ``--profile`` prints a
per-layer forward/backward time breakdown after the surrogate training.  ``serve`` hosts the named
registry models (default ``cifar10_full``; ``alexnet`` also ships) on
the supervised per-model actors of :class:`repro.serve.ServerRuntime`,
pushes interleaved requests through the per-model micro-batch mailboxes,
and prints a per-model metrics summary — served/shed counts, batch fill,
latency percentiles, and the modeled silicon throughput next to the
measured one.  ``--target-p99-ms`` turns on SLO-driven adaptive batching
(``--min-batch`` bounds the shrink), ``--quarantine-after`` sets the
consecutive-failure budget before a crashing model is quarantined, and
``--health`` prints the structured supervision/health surface as JSON
instead of running the demo traffic.

``sweep`` trains a small surrogate network once, then fans one of the
design-space ablation campaigns (``bitwidth``/``clamp``/``rounding``/
``dynamic``) or the weight-memory fault study (``faults``) out across
``--jobs`` workers — a thread pool by default, or real process workers
with ``--backend process`` (bit-identical results either way).
``serve --backend process`` likewise executes micro-batches in a pool
of ``--pool-workers`` processes against shared-memory engine weights.  Every evaluation runs through the shared
batched-evaluation API of :mod:`repro.analysis.campaign`: the fault
study executes corrupted artifacts on compiled engines behind one
content-addressed cache (the summary reports the cache traffic and the
modeled NPU batch-throughput/energy from ``Accelerator.batch_profile``),
while the design-space campaigns evaluate the quantized *simulation* —
numerically identical to the serial sweeps, parallelized.

``explore`` runs the hardware/quantization co-design search of
:mod:`repro.explore`: it trains the same small surrogate as ``sweep``,
then sweeps the declared grid (bit width × exponent clamp × rounding
mode × PU count × technology node) through successive-halving rungs —
cheap low-epoch surrogate evaluations prune Pareto-dominated designs
(accuracy↑ / energy↓ / area↓, with a ``--margin`` of slack) before the
survivors pay for full MF-DFP pipelines — and prints the resulting
frontier with per-design cost metrics from :mod:`repro.hw`.
``--no-prune`` runs every point at full fidelity instead (the frontier
baseline pruning is measured against), and ``--checkpoint-dir`` makes
the search durable: a killed exploration resumes bit-identically.

The persistence verbs ride on :mod:`repro.io`.  ``export`` builds the
zoo's deployable artifacts and publishes them (content-addressed,
versioned) into an :class:`~repro.io.store.ArtifactStore`; ``serve
--store DIR`` then cold-starts the registry from disk without
retraining or requantizing anything.  ``import`` validates any deployed
artifact file (current or legacy ``repro.hw.export`` format) and
publishes it under a chosen name.  ``fig3``/``table2`` accept
``--checkpoint-dir`` to write epoch-boundary checkpoints of the
surrogate training, and ``resume`` continues such a run bit-identically
— same weights and curves as a run that was never interrupted.
"""

from __future__ import annotations

import argparse

import numpy as np


def _cmd_table1(args) -> None:
    from repro.report import format_table, table1_rows

    print(format_table(table1_rows(), title="Table 1: design metrics (measured vs paper)"))


def _cmd_table3(args) -> None:
    from repro.report import format_table, table3_rows
    from repro.zoo import alexnet, cifar10_full

    rows = table3_rows([cifar10_full(), alexnet()])
    print(format_table(rows, title="Table 3: parameter memory in MB (measured vs paper)"))


def _cmd_schedule(args) -> None:
    from repro.hw import Accelerator, AcceleratorConfig
    from repro.zoo import alexnet, cifar10_full

    for precision in ("fp32", "mfdfp"):
        acc = Accelerator(AcceleratorConfig(precision=precision))
        for net in (cifar10_full(), alexnet()):
            print(
                f"{precision:>6} {net.name:<14} {acc.latency_us(net):>12.2f} us  "
                f"{acc.energy_uj(net):>12.2f} uJ"
            )


def _surrogate_trainer(compiled: bool = True, profile: bool = False):
    """The CLI's deterministic surrogate training problem, unfitted.

    Shared by ``table2``/``fig3`` (which fit it) and ``resume`` (which
    restores a checkpoint into it first) — both must construct the
    identical problem for resumed runs to be bit-identical.
    """
    from repro.datasets import cifar10_surrogate
    from repro.nn import SGD, PlateauScheduler, Trainer
    from repro.zoo import cifar10_small

    train, test = cifar10_surrogate(n_train=1500, n_test=400, size=16, noise=0.7, seed=2)
    net = cifar10_small(size=16, rng=np.random.default_rng(0))
    optimizer = SGD(net.params, lr=0.02, momentum=0.9)
    trainer = Trainer(
        net,
        optimizer,
        scheduler=PlateauScheduler(optimizer, patience=2),
        batch_size=32,
        compiled=compiled,
        profile=profile,
    )
    return trainer, train, test


def _train_problem(
    epochs: int,
    compiled: bool = True,
    profile: bool = False,
    checkpoint_dir=None,
    checkpoint_every: int = 1,
):
    trainer, train, test = _surrogate_trainer(compiled=compiled, profile=profile)
    checkpoint = None
    if checkpoint_dir is not None:
        from repro.io import Checkpointer

        checkpoint = Checkpointer(checkpoint_dir, every=checkpoint_every)
    trainer.fit(train, test, epochs=epochs, checkpoint=checkpoint)
    if profile:
        _print_profile(trainer, compiled)
    return trainer.net, train, test


def _print_profile(trainer, compiled: bool) -> None:
    from repro.nn import format_profile

    path = "compiled fast path" if trainer.executor is not None else "eager layers"
    print(f"\nper-layer training time (surrogate training, {path}):")
    print(format_profile(trainer.profile_rows()))
    print()


def _cmd_table2(args) -> None:
    from repro.core import Ensemble, MFDFPConfig, run_algorithm1
    from repro.hw import Accelerator, AcceleratorConfig
    from repro.nn import error_rate
    from repro.report import format_table, table2_row
    from repro.zoo import cifar10_full

    compiled = not args.no_compiled
    net, train, test = _train_problem(
        args.epochs,
        compiled=compiled,
        profile=args.profile,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    config = MFDFPConfig(
        phase1_epochs=args.epochs // 2, phase2_epochs=args.epochs // 2, lr=5e-3,
        compiled=compiled,
    )
    result = run_algorithm1(net.clone(), train, test, train.x[:256], config)
    rng = np.random.default_rng(1)
    second = net.clone()
    for p in second.params:
        p.data = p.data + rng.normal(scale=0.02, size=p.data.shape).astype(p.data.dtype)
    result2 = run_algorithm1(second, train, test, train.x[:256], config, rng=rng)
    ensemble = Ensemble([result.mfdfp, result2.mfdfp])

    hw_net = cifar10_full()
    fp = Accelerator(AcceleratorConfig(precision="fp32"))
    mf = Accelerator(AcceleratorConfig(precision="mfdfp"))
    ens = Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2))
    base = fp.energy_uj(hw_net)
    rows = [
        table2_row("CIFAR-10(sur)", "Floating-Point(32,32)", 1 - error_rate(net, test), fp, hw_net),
        table2_row("CIFAR-10(sur)", "MF-DFP(8,4)", 1 - result.final_val_error, mf, hw_net, base),
        table2_row("CIFAR-10(sur)", "Ensemble MF-DFP", ensemble.accuracy(test), ens, hw_net, base),
    ]
    print(format_table(rows, title="Table 2 (measured on the surrogate)"))


def _cmd_serve(args) -> None:
    import json
    import time

    from repro.hw import Accelerator, AcceleratorConfig
    from repro.serve import ModelRegistry, QueueFullError, ServerRuntime, SupervisorPolicy

    if args.store is not None:
        from repro.io import ArtifactError

        try:
            registry = ModelRegistry.from_store(args.store)
        except ArtifactError as exc:
            raise SystemExit(f"error: {exc}") from None
        default_models = ",".join(registry.names())
        if not default_models:
            raise SystemExit(f"error: store {args.store} has no published models")
    else:
        registry = ModelRegistry.with_defaults()
        default_models = "cifar10_full"
    models = [
        name.strip() for name in (args.models or default_models).split(",") if name.strip()
    ]
    runtime = ServerRuntime(
        registry,
        models,
        workers=args.workers,
        max_batch=args.batch,
        max_queue=args.max_queue,
        accelerator=Accelerator(AcceleratorConfig(precision="mfdfp")),
        target_p99_s=args.target_p99_ms / 1e3 if args.target_p99_ms else None,
        min_batch=args.min_batch,
        policy=SupervisorPolicy(max_failures=args.quarantine_after),
        backend=args.backend,
        pool_workers=args.pool_workers,
    )
    if args.health:
        # Admin surface: one warmup request per model so the health dict
        # carries real latencies/versions, then the structured snapshot.
        warm_rng = np.random.default_rng(0)
        with runtime:
            for name in models:
                shape = registry.engine(name).input_shape
                runtime.submit(
                    name, warm_rng.normal(scale=0.5, size=shape).astype(np.float32)
                ).result()
            print(json.dumps(runtime.health(), indent=2, sort_keys=True))
        return
    rng = np.random.default_rng(0)
    samples = {
        name: rng.normal(scale=0.5, size=(args.requests,) + registry.engine(name).input_shape)
        .astype(np.float32)
        for name in models
    }

    print(
        f"hosting {', '.join(models)}: {args.workers} workers, "
        f"micro-batch {args.batch}, max queue {args.max_queue}"
    )
    t0 = time.perf_counter()
    futures, shed = [], 0
    with runtime:
        for i in range(args.requests):  # interleave models, as live traffic would
            for name in models:
                try:
                    futures.append((name, runtime.submit(name, samples[name][i])))
                except QueueFullError:
                    shed += 1
        logits = {name: [] for name in models}
        for name, future in futures:
            logits[name].append(future.result())
    elapsed = time.perf_counter() - t0

    served = sum(len(rows) for rows in logits.values())
    for name in models:
        stats = runtime.metrics_summary()[name]
        profile = runtime.hw_profile(name)
        print(
            f"  {name:<14} {stats['completed']:>5} served  {stats['rejected']:>3} shed  "
            f"mean fill {stats['mean_fill']:>5.1f}/{args.batch}  "
            f"p50 {1e3 * stats['latency_p50_s']:>6.2f} ms  "
            f"p99 {1e3 * stats['latency_p99_s']:>6.2f} ms  "
            f"modeled NPU {profile['throughput_ips']:>9.1f} samples/s"
        )
    cache = registry.cache_stats()
    print(
        f"  total         {served} served / {shed} shed in {elapsed:.3f}s "
        f"({served / elapsed:.1f} samples/s measured); "
        f"engine cache: {cache['engines']} compiled, {cache['hits']} hits"
    )
    for name in models:
        hist = np.bincount(np.argmax(np.stack(logits[name]), axis=1), minlength=10)
        print(f"  {name} prediction histogram: {hist}")


def _cmd_sweep(args) -> None:
    import time

    from repro.analysis import run_campaign, shared_engine_cache, train_surrogate
    from repro.analysis.campaign import campaign_points
    from repro.core.mfdfp import deploy_calibrated
    from repro.datasets import cifar10_surrogate
    from repro.zoo import cifar10_small

    try:  # reject a bad --points before paying for training
        campaign_points(args.campaign, args.points)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    train, test = cifar10_surrogate(n_train=600, n_test=240, size=16, noise=0.7, seed=2)
    net = cifar10_small(size=16, rng=np.random.default_rng(0))
    print(f"training surrogate network ({args.epochs} epochs, compiled trainer)...")
    t0 = time.perf_counter()
    train_surrogate(
        net, train, test, epochs=args.epochs, rng=np.random.default_rng(1)
    )
    train_s = time.perf_counter() - t0

    calib = train.x[:256]
    deployed = None
    if args.campaign == "faults":
        deployed = deploy_calibrated(net.clone(), calib)
    result = run_campaign(
        args.campaign,
        net=net,
        deployed=deployed,
        calibration_x=calib,
        x=test.x,
        y=test.y,
        points=args.points,
        jobs=args.jobs,
        backend=args.backend,
        rng=np.random.default_rng(0),
    )

    metric = "accuracy" if args.campaign == "faults" else "error rate"
    print(
        f"\n{args.campaign} campaign ({len(result.points)} points, "
        f"--jobs {result.jobs}, {result.backend} backend)"
    )
    print(f"{'point':>16} {metric:>12}")
    for row in result.rows():
        print(f"{row['label']:>16} {row['value']:>12.4f}")
    summary = (
        f"\ntrained in {train_s:.1f}s; campaign in {result.elapsed_s:.2f}s "
        f"({len(result.points) / result.elapsed_s:.1f} points/s)"
    )
    if deployed is not None:  # only the fault study runs compiled engines
        cache = shared_engine_cache()
        summary += (
            f"; engine cache: {result.cache_misses} compiled, "
            f"{result.cache_hits} hits ({len(cache)} resident)"
        )
    print(summary)
    if deployed is not None:
        from repro.hw import Accelerator, AcceleratorConfig

        # Pure schedule accounting — no recompile, no re-evaluation (the
        # campaign's ber=0 row already shows the clean accuracy).
        profile = Accelerator(AcceleratorConfig(precision="mfdfp")).batch_profile(
            deployed, batch_size=min(256, len(test.x))
        )
        print(
            f"modeled NPU (batched, clean weights): "
            f"{profile['throughput_ips']:.0f} samples/s, "
            f"{profile['energy_uj_per_sample']:.2f} uJ/sample "
            f"at batch {profile['batch_size']}"
        )


def _cmd_explore(args) -> None:
    import time

    from repro.analysis import train_surrogate
    from repro.datasets import cifar10_surrogate
    from repro.explore import (
        DesignSpace,
        DesignSpaceError,
        ExploreConfig,
        ExploreConfigError,
        explore,
    )
    from repro.zoo import cifar10_small

    try:
        space = DesignSpace(
            bits=tuple(args.bits),
            min_exps=tuple(args.min_exps),
            weight_modes=tuple(args.weight_modes),
            num_pus=tuple(args.num_pus),
            technologies=tuple(args.technologies),
        )
        config = ExploreConfig(
            seed=args.seed,
            rung_epochs=tuple(args.rung_epochs),
            final_epochs=args.final_epochs,
            margin=args.margin,
            prune=not args.no_prune,
        )
    except (DesignSpaceError, ExploreConfigError) as exc:
        raise SystemExit(f"error: {exc}") from None
    checkpoint = None
    if args.checkpoint_dir is not None:
        from repro.io import ExplorationCheckpointer

        checkpoint = ExplorationCheckpointer(args.checkpoint_dir)

    train, test = cifar10_surrogate(n_train=600, n_test=240, size=16, noise=0.7, seed=2)
    net = cifar10_small(size=16, rng=np.random.default_rng(0))
    print(f"training surrogate network ({args.epochs} epochs, compiled trainer)...")
    train_surrogate(net, train, test, epochs=args.epochs, rng=np.random.default_rng(1))

    mode = "successive halving" if config.prune else "exhaustive"
    print(
        f"exploring {len(space)} designs ({mode}, rungs {list(config.rung_epochs)}"
        f"+final, --jobs {args.jobs or 1}, {args.backend} backend)"
    )
    t0 = time.perf_counter()
    result = explore(
        net, train, test, train.x[:256], space, config,
        jobs=args.jobs or 1, backend=args.backend, checkpoint=checkpoint,
    )
    elapsed = time.perf_counter() - t0

    print(f"\nPareto frontier (accuracy vs energy vs area, {len(result.frontier)} designs):")
    print(
        f"{'design':>24} {'accuracy':>9} {'area mm2':>9} {'power mW':>9} "
        f"{'lat us':>8} {'uJ/batch':>9}"
    )
    for row in result.rows():
        print(
            f"{row['label']:>24} {row['accuracy']:>9.4f} {row['area_mm2']:>9.3f} "
            f"{row['power_mw']:>9.2f} {row['latency_us']:>8.2f} {row['energy_uj']:>9.3f}"
        )
    print(
        f"\n{result.total_evaluations} evaluations "
        f"({result.full_evaluations} full MF-DFP pipelines of {len(space)} designs; "
        f"survivors per rung {result.survivors_per_rung}) in {elapsed:.1f}s"
    )
    if checkpoint is not None:
        print(f"checkpoints under {checkpoint.directory} (re-run to resume)")


def _cmd_export(args) -> None:
    from repro.io import ArtifactStore
    from repro.zoo import publish_deployables

    store = ArtifactStore(args.store)
    names = None
    if args.models:
        names = [name.strip() for name in args.models.split(",") if name.strip()]
    try:
        published = publish_deployables(store, names)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    for name, version in published.items():
        path = store.model_path(name, version)
        print(
            f"  {name:<14} v{version:04d}  {path.stat().st_size:>9,} bytes  "
            f"fingerprint {store.fingerprint(name, version)}"
        )
    print(f"store {store.root}: {len(store.model_names())} model(s) published")


def _cmd_import(args) -> None:
    from repro.core.engine import engine_fingerprint
    from repro.io import ArtifactError, ArtifactStore, load_deployed

    try:
        deployed = load_deployed(args.src)
    except ArtifactError as exc:
        raise SystemExit(f"error: {exc}") from None
    name = args.name or deployed.name
    store = ArtifactStore(args.store)
    try:
        version = store.publish_deployed(name, deployed)
    except ArtifactError as exc:  # e.g. a corrupt existing version in the store
        raise SystemExit(f"error: {exc}") from None
    except ValueError as exc:  # legacy artifacts can carry store-invalid names
        raise SystemExit(f"error: {exc} (use --name to rename on import)") from None
    print(
        f"imported {args.src} as {name!r} v{version:04d} "
        f"({deployed.parameter_count():,} parameters, "
        f"fingerprint {engine_fingerprint(deployed)})"
    )


def _cmd_resume(args) -> None:
    from repro.io import Checkpointer

    compiled = not args.no_compiled
    trainer, train, test = _surrogate_trainer(compiled=compiled, profile=args.profile)
    checkpoint = Checkpointer(args.checkpoint_dir, every=args.checkpoint_every)
    done = checkpoint.resume(trainer)
    if not done:
        raise SystemExit(f"error: no checkpoint found under {args.checkpoint_dir}")
    if done >= args.epochs:
        raise SystemExit(
            f"error: checkpoint already covers {done} epoch(s), nothing to train "
            f"at --epochs {args.epochs} (pass a larger --epochs to continue)"
        )
    print(f"resuming surrogate training at epoch {done + 1}/{args.epochs} (from {checkpoint.latest().name})")
    trainer.fit(train, test, epochs=args.epochs, resume=True, checkpoint=checkpoint)
    if args.profile:
        _print_profile(trainer, compiled)
    print(f"{'epoch':>5}  {'train loss':>12}  {'val error':>10}  {'lr':>9}")
    for e in trainer.history.epochs:
        marker = " (resumed)" if e.epoch == done + 1 else ""
        print(f"{e.epoch:>5}  {e.train_loss:>12.4f}  {e.val_error:>10.4f}  {e.lr:>9.2e}{marker}")


def _cmd_fig3(args) -> None:
    from repro.core import MFDFPConfig, MFDFPNetwork, phase1_finetune, phase2_distill
    from repro.nn import error_rate

    compiled = not args.no_compiled
    net, train, test = _train_problem(
        args.epochs,
        compiled=compiled,
        profile=args.profile,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    float_err = error_rate(net, test)
    config = MFDFPConfig(
        phase1_epochs=args.epochs // 2, phase2_epochs=args.epochs // 2, lr=5e-3,
        compiled=compiled,
    )
    labels_net = MFDFPNetwork.from_float(net.clone(), train.x[:256])
    curve_a = phase1_finetune(labels_net, train, test, config).val_errors
    curve_a += phase1_finetune(labels_net, train, test, config).val_errors
    st_net = MFDFPNetwork.from_float(net.clone(), train.x[:256])
    curve_b = phase1_finetune(st_net, train, test, config).val_errors
    curve_b += phase2_distill(st_net, net, train, test, config).val_errors
    print(f"float baseline error: {float_err:.4f}")
    print(f"{'epoch':>5}  {'labels-only':>12}  {'student-teacher':>16}")
    for i, (a, b) in enumerate(zip(curve_a, curve_b), 1):
        print(f"{i:>5}  {a:>12.4f}  {b:>16.4f}")


def _cmd_lint(args) -> None:
    from repro.lint.cli import run_from_args

    code = run_from_args(args)
    if code:
        raise SystemExit(code)


def _cmd_chaos(args) -> None:
    import json as _json

    # Import the owning layers so the full site catalog is registered
    # before plans validate or --list prints.
    import repro.io.store  # noqa: F401  (registers io.* sites)
    import repro.parallel.arena  # noqa: F401  (registers parallel.* sites)
    import repro.serve.faults  # noqa: F401  (registers serve.* sites)
    from repro.chaos import DRILLS, run_all_drills, run_drill, site_catalog

    if args.list:
        print("drills:")
        for name in DRILLS:
            print(f"  {name}")
        print("injection sites:")
        for site in site_catalog().values():
            print(f"  {site.name}  [{site.layer}]  {site.description}")
        return
    if args.drill is None:
        raise SystemExit("chaos: pass --drill NAME (or --drill all, or --list)")
    if args.drill == "all":
        reports = run_all_drills(seed=args.seed, quick=args.quick, log=print)
    else:
        reports = [run_drill(args.drill, seed=args.seed, quick=args.quick, log=print)]
    for report in reports:
        print(f"\n=== drill {report.name} (seed={report.seed}) ===")
        print(_json.dumps(report.plan, indent=2, sort_keys=True))
        for invariant, verdict in report.invariants.items():
            print(f"  [ok] {invariant}: {verdict}")
    print(f"\n{len(reports)} drill(s) passed")


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {n}")
    return n


def _positive_float(value: str) -> float:
    x = float(value)
    if x <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {x}")
    return x


def _int_list(value: str):
    try:
        items = [int(item) for item in value.split(",") if item.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}"
        ) from None
    if not items:
        raise argparse.ArgumentTypeError(f"expected at least one integer, got {value!r}")
    return items


def _str_list(value: str):
    items = [item.strip() for item in value.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError(f"expected at least one name, got {value!r}")
    return items


def _add_training_flags(parser, checkpointing: bool = True) -> None:
    parser.add_argument(
        "--no-compiled",
        action="store_true",
        help="train on the eager layer stack instead of the compiled fast "
        "path (bit-identical results; escape hatch for debugging)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-layer forward/backward time breakdown of the "
        "surrogate training after it finishes",
    )
    if checkpointing:
        parser.add_argument(
            "--checkpoint-dir",
            default=None,
            metavar="DIR",
            help="write an epoch-boundary checkpoint of the surrogate "
            "training into DIR (resume with `python -m repro resume`)",
        )
    parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=1,
        metavar="K",
        help="checkpoint every K epochs (default: 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of Tann et al., DAC 2017.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="design area/power (Table 1)").set_defaults(fn=_cmd_table1)
    sub.add_parser("table3", help="parameter memory (Table 3)").set_defaults(fn=_cmd_table3)
    sub.add_parser("schedule", help="latency/energy of both networks").set_defaults(
        fn=_cmd_schedule
    )
    p2 = sub.add_parser("table2", help="accuracy/time/energy (Table 2; trains)")
    p2.add_argument("--epochs", type=_positive_int, default=12)
    _add_training_flags(p2)
    p2.set_defaults(fn=_cmd_table2)
    p3 = sub.add_parser("fig3", help="training curves (Figure 3; trains)")
    p3.add_argument("--epochs", type=_positive_int, default=12)
    _add_training_flags(p3)
    p3.set_defaults(fn=_cmd_fig3)
    psw = sub.add_parser("sweep", help="parallel ablation/fault campaigns (trains briefly)")
    psw.add_argument(
        "campaign",
        choices=("bitwidth", "clamp", "rounding", "dynamic", "faults"),
        help="which campaign to run",
    )
    psw.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="campaign fan-out workers (default: every core)",
    )
    psw.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="fan points out on a thread pool (default) or across "
        "process workers for real cores past the GIL",
    )
    psw.add_argument(
        "--points",
        type=_positive_int,
        default=None,
        help="number of campaign points (default: the campaign's full set)",
    )
    psw.add_argument(
        "--epochs", type=_positive_int, default=3, help="surrogate training epochs"
    )
    psw.set_defaults(fn=_cmd_sweep)
    p4 = sub.add_parser("serve", help="concurrent multi-model serving demo")
    p4.add_argument(
        "--models",
        default=None,
        help="comma-separated registered model names (default: cifar10_full, "
        "or every model in --store; alexnet also ships in the zoo)",
    )
    p4.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="cold-start the registry from an artifact store directory "
        "(written by `python -m repro export`) instead of building "
        "models in-process",
    )
    p4.add_argument("--workers", type=_positive_int, default=2, help="worker threads per model")
    p4.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="execute batches in-process (default) or in a shared pool "
        "of process workers over shared-memory engine weights",
    )
    p4.add_argument(
        "--pool-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="process workers for --backend process (default: every core)",
    )
    p4.add_argument("--batch", type=_positive_int, default=64, help="largest micro-batch")
    p4.add_argument(
        "--max-queue",
        type=_positive_int,
        default=1024,
        help="per-model admission bound (requests beyond it are shed)",
    )
    p4.add_argument(
        "--requests", type=_positive_int, default=256, help="requests per model"
    )
    p4.add_argument(
        "--target-p99-ms",
        type=_positive_float,
        default=None,
        metavar="MS",
        help="p99 latency SLO: batches shrink when the recent p99 exceeds "
        "it and grow back under queue pressure (default: latency-blind "
        "greedy fill at --batch)",
    )
    p4.add_argument(
        "--min-batch",
        type=_positive_int,
        default=1,
        help="smallest micro-batch the SLO loop may shrink to",
    )
    p4.add_argument(
        "--quarantine-after",
        type=_positive_int,
        default=3,
        metavar="N",
        help="consecutive actor failures before a model is quarantined "
        "instead of restarted",
    )
    p4.add_argument(
        "--health",
        action="store_true",
        help="print the structured health/admin surface (supervision "
        "state, versions, queue depths, latency percentiles) as JSON "
        "after one warmup request per model, then exit",
    )
    p4.set_defaults(fn=_cmd_serve)
    pex = sub.add_parser("export", help="publish zoo deployables into an artifact store")
    pex.add_argument("--store", required=True, metavar="DIR", help="artifact store directory")
    pex.add_argument(
        "--models",
        default=None,
        help="comma-separated deployable names (default: every zoo deployable)",
    )
    pex.set_defaults(fn=_cmd_export)
    pim = sub.add_parser(
        "import", help="validate a deployed-artifact file and publish it into a store"
    )
    pim.add_argument("src", help="artifact file (current or legacy hw.export format)")
    pim.add_argument("--store", required=True, metavar="DIR", help="artifact store directory")
    pim.add_argument(
        "--name", default=None, help="store name (default: the artifact's own name)"
    )
    pim.set_defaults(fn=_cmd_import)
    pre = sub.add_parser(
        "resume", help="continue a checkpointed surrogate training run bit-identically"
    )
    pre.add_argument(
        "--checkpoint-dir",
        required=True,
        metavar="DIR",
        help="checkpoint directory written by fig3/table2 --checkpoint-dir",
    )
    pre.add_argument(
        "--epochs",
        type=_positive_int,
        default=12,
        help="total epochs (the resumed run trains the remainder)",
    )
    _add_training_flags(pre, checkpointing=False)
    pre.set_defaults(fn=_cmd_resume)
    pli = sub.add_parser(
        "lint", help="AST-based invariant checks over the codebase contracts"
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(pli)
    pli.set_defaults(fn=_cmd_lint)
    pch = sub.add_parser(
        "chaos", help="deterministic fault-injection recovery drills"
    )
    pch.add_argument(
        "--drill",
        default=None,
        metavar="NAME",
        help="drill to run, or 'all' (see --list for the catalog)",
    )
    pch.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-plan seed; a drill replays bit-identically from its "
        "printed plan plus this seed (default: 0)",
    )
    pch.add_argument(
        "--quick",
        action="store_true",
        help="smaller problems and fewer requests (the CI smoke configuration)",
    )
    pch.add_argument(
        "--list",
        action="store_true",
        help="print the drill catalog and every registered injection site",
    )
    pch.set_defaults(fn=_cmd_chaos)
    pxp = sub.add_parser(
        "explore", help="co-design DSE with Pareto pruning (trains briefly)"
    )
    pxp.add_argument(
        "--bits",
        type=_int_list,
        default=[4, 8],
        metavar="A,B,...",
        help="activation bit widths to sweep (default: 4,8)",
    )
    pxp.add_argument(
        "--min-exps",
        type=_int_list,
        default=[-7, -9],
        metavar="A,B,...",
        help="weight exponent clamps to sweep (default: -7,-9)",
    )
    pxp.add_argument(
        "--weight-modes",
        type=_str_list,
        default=["deterministic"],
        metavar="A,B,...",
        help="weight rounding modes: deterministic and/or stochastic "
        "(default: deterministic)",
    )
    pxp.add_argument(
        "--num-pus",
        type=_int_list,
        default=[1, 2],
        metavar="A,B,...",
        help="processing-unit counts to sweep (default: 1,2)",
    )
    pxp.add_argument(
        "--technologies",
        type=_str_list,
        default=["65nm"],
        metavar="A,B,...",
        help="technology nodes: 65nm, 45nm, 28nm (default: 65nm)",
    )
    pxp.add_argument(
        "--seed", type=int, default=0, help="exploration seed (default: 0)"
    )
    pxp.add_argument(
        "--rung-epochs",
        type=_int_list,
        default=[0, 1],
        metavar="A,B,...",
        help="phase-1 epochs per surrogate rung, non-decreasing; 0 means "
        "quantize-only (default: 0,1)",
    )
    pxp.add_argument(
        "--final-epochs",
        type=_positive_int,
        default=2,
        help="epochs per phase of the full MF-DFP pipeline survivors run "
        "(default: 2)",
    )
    pxp.add_argument(
        "--margin",
        type=float,
        default=0.02,
        help="accuracy slack a design may trail the surrogate frontier by "
        "and still survive pruning (default: 0.02)",
    )
    pxp.add_argument(
        "--no-prune",
        action="store_true",
        help="evaluate every design at full fidelity (the exhaustive "
        "baseline pruning is measured against)",
    )
    pxp.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="evaluation fan-out workers (default: 1)",
    )
    pxp.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="fan evaluations out on a thread pool (default) or across "
        "process workers (bit-identical results either way)",
    )
    pxp.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="persist completed evaluations into DIR; a killed exploration "
        "re-run with the same flags resumes bit-identically",
    )
    pxp.add_argument(
        "--epochs", type=_positive_int, default=3, help="surrogate training epochs"
    )
    pxp.set_defaults(fn=_cmd_explore)
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    main()
