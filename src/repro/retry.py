"""Shared retry machinery: capped exponential backoff, injectable time.

One policy object serves every layer that retries transient failures:

* :class:`repro.serve.supervisor.SupervisorPolicy` derives its
  restart-backoff schedule from a :class:`RetryPolicy` (the schedule
  used to live inline in the supervisor; it is extracted here so every
  layer backs off identically), and
* :class:`repro.io.store.ArtifactStore` retries transient version-file
  reads (:class:`~repro.io.store.TransientStoreError`) through
  :meth:`RetryPolicy.call`.

Both the sleep and the clock are injectable, so chaos drills and the
fake-clock serving tests replay retry sequences deterministically with
zero wall-clock waits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff over a bounded number of attempts.

    The backoff before the retry following the ``k``-th consecutive
    failure is ``backoff_initial_s * backoff_factor**(k-1)``, capped at
    ``backoff_cap_s``.  ``attempts`` bounds the total tries (first call
    included): ``attempts=3`` means up to two retries.
    """

    attempts: int = 3
    backoff_initial_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {self.attempts}")
        if self.backoff_initial_s <= 0:
            raise ValueError(
                f"backoff_initial_s must be positive, got {self.backoff_initial_s}"
            )
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_cap_s < self.backoff_initial_s:
            raise ValueError(
                f"backoff_cap_s ({self.backoff_cap_s}) must be >= backoff_initial_s "
                f"({self.backoff_initial_s})"
            )

    def backoff_s(self, consecutive_failures: int) -> float:
        """Backoff before the retry following the k-th consecutive failure."""
        if consecutive_failures < 1:
            raise ValueError("backoff is only defined after at least one failure")
        raw = self.backoff_initial_s * self.backoff_factor ** (consecutive_failures - 1)
        return min(self.backoff_cap_s, raw)

    def call(
        self,
        fn: Callable,
        retry_on: tuple = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ):
        """Run ``fn()`` with up to ``attempts`` tries.

        Only exceptions matching ``retry_on`` are retried; anything else
        propagates immediately, as does the final matching failure.
        ``on_retry(failure_index, error)`` is called before each backoff
        sleep — the hook drills and stores use for typed accounting of
        how many attempts a recovery cost.
        """
        for failure in range(1, self.attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                if failure == self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(failure, exc)
                sleep(self.backoff_s(failure))
        raise AssertionError("unreachable: the loop either returns or raises")
