"""Core contribution of the paper: multiplier-free dynamic fixed-point DNNs.

Contents map one-to-one onto Section 4/5 of the paper:

* :mod:`repro.core.dfp` — dynamic fixed-point format ⟨b, f⟩ (Section 4).
* :mod:`repro.core.pow2` — integer power-of-two weights ⟨s, e⟩ and their
  4-bit encoding (Section 5).
* :mod:`repro.core.quantizer` — Ristretto-style per-layer range profiling
  and hook attachment ("Quantize_8bit" in Algorithm 1).
* :mod:`repro.core.mfdfp` — the MF-DFP network wrapper and the deployable
  integer-only artifact consumed by :mod:`repro.hw`.
* :mod:`repro.core.engine` — batched integer inference: the shared
  layer-op registry, the eager reference executor and the compiled
  :class:`~repro.core.engine.BatchedEngine`.
* :mod:`repro.core.distill` — student-teacher loss (Phase 2, Eq. 1–2).
* :mod:`repro.core.ensemble` — ensembles of MF-DFP networks (Phase 3).
* :mod:`repro.core.pipeline` — Algorithm 1 end to end.
"""

from repro.core.baselines import (
    BinaryWeightQuantizer,
    FixedPointWeightQuantizer,
    TernaryWeightQuantizer,
)
from repro.core.dfp import (
    DFPFormat,
    DFPQuantizer,
    choose_fraction_length,
    dfp_from_codes,
    dfp_quantize,
    dfp_to_codes,
)
from repro.core.distill import DistillationLoss, soften
from repro.core.engine import BatchedEngine, CompiledOp, execute_deployed
from repro.core.ensemble import Ensemble
from repro.core.mfdfp import (
    DeployedLayer,
    DeployedMFDFP,
    MFDFPNetwork,
    deploy,
    deploy_calibrated,
)
from repro.core.pipeline import (
    MFDFPConfig,
    MFDFPResult,
    build_mfdfp_ensemble,
    phase1_finetune,
    phase2_distill,
    run_algorithm1,
)
from repro.core.pow2 import (
    Pow2WeightQuantizer,
    pow2_decode4,
    pow2_encode4,
    pow2_exponents,
    pow2_quantize,
)
from repro.core.quantizer import (
    LayerQuantSpec,
    NetworkQuantizer,
    QuantizationPlan,
    profile_activation_ranges,
    strip_quantization,
)

__all__ = [
    "BatchedEngine",
    "BinaryWeightQuantizer",
    "CompiledOp",
    "DFPFormat",
    "FixedPointWeightQuantizer",
    "TernaryWeightQuantizer",
    "DFPQuantizer",
    "DeployedLayer",
    "DeployedMFDFP",
    "DistillationLoss",
    "Ensemble",
    "LayerQuantSpec",
    "MFDFPConfig",
    "MFDFPNetwork",
    "MFDFPResult",
    "NetworkQuantizer",
    "Pow2WeightQuantizer",
    "QuantizationPlan",
    "build_mfdfp_ensemble",
    "choose_fraction_length",
    "deploy",
    "deploy_calibrated",
    "dfp_from_codes",
    "dfp_quantize",
    "dfp_to_codes",
    "execute_deployed",
    "phase1_finetune",
    "phase2_distill",
    "pow2_decode4",
    "pow2_encode4",
    "pow2_exponents",
    "pow2_quantize",
    "profile_activation_ranges",
    "run_algorithm1",
    "soften",
    "strip_quantization",
]
