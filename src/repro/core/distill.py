"""Student-teacher (knowledge distillation) loss — Phase 2, Eq. 1–2.

The quantized MF-DFP network (student) is trained to match both the true
labels and the floating-point teacher's logits:

    L(W_S) = H(Y, P_S) + beta * H(P_T, P_S)                      (Eq. 1)

where ``P_S`` and ``P_T`` are softmax distributions softened with
temperature ``tau`` (paper: tau = 20, beta = 0.2).  For large ``tau`` and
zero-mean logits the gradient of the soft term approaches
``beta / (N * tau^2) * (z_S - z_T)`` (Eq. 2), which the tests verify.
"""

from __future__ import annotations

import numpy as np

from repro.nn.loss import Loss, log_softmax, softmax


def soften(logits: np.ndarray, tau: float) -> np.ndarray:
    """Temperature-softened class probabilities ``softmax(z / tau)``."""
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    return softmax(logits / tau, axis=1)


class DistillationLoss(Loss):
    """Hard-label cross entropy plus soft teacher-matching term.

    Usage (per batch)::

        loss.set_teacher_logits(teacher.logits(x))
        value = loss.forward(student_logits, labels)
        dlogits = loss.backward()

    Args:
        tau: Softening temperature for both student and teacher.
        beta: Weight of the teacher term.
    """

    def __init__(self, tau: float = 20.0, beta: float = 0.2):
        if tau <= 0:
            raise ValueError("tau must be positive")
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.tau = tau
        self.beta = beta
        self._teacher_logits: np.ndarray | None = None
        self._cache = None

    def set_teacher_logits(self, teacher_logits: np.ndarray) -> None:
        """Provide the teacher's logits for the upcoming batch."""
        self._teacher_logits = np.asarray(teacher_logits)

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        if self._teacher_logits is None:
            raise RuntimeError("call set_teacher_logits before forward")
        if self._teacher_logits.shape != logits.shape:
            raise ValueError(
                f"teacher logits shape {self._teacher_logits.shape} != student {logits.shape}"
            )
        target = np.asarray(target)
        n = logits.shape[0]

        hard_logp = log_softmax(logits, axis=1)
        hard = float(-hard_logp[np.arange(n), target].mean())

        p_teacher = soften(self._teacher_logits, self.tau)
        soft_logp = log_softmax(logits / self.tau, axis=1)
        soft = float(-(p_teacher * soft_logp).sum(axis=1).mean())

        self._cache = (np.exp(hard_logp), target, p_teacher, np.exp(soft_logp), n)
        return hard + self.beta * soft

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        p_hard, target, p_teacher, p_soft, n = self._cache
        grad = p_hard.copy()
        grad[np.arange(n), target] -= 1.0
        grad += (self.beta / self.tau) * (p_soft - p_teacher)
        return grad / n

    def approx_soft_gradient(self, student_logits: np.ndarray, teacher_logits: np.ndarray) -> np.ndarray:
        """Eq. 2's large-``tau`` approximation of the soft-term gradient.

        Returns ``beta / (N * tau^2) * (z_S - z_T)`` for zero-meaned logits,
        where ``N`` is the number of classes.  Exposed for validation.
        """
        z_s = student_logits - student_logits.mean(axis=1, keepdims=True)
        z_t = teacher_logits - teacher_logits.mean(axis=1, keepdims=True)
        n_classes = student_logits.shape[1]
        return self.beta / (n_classes * self.tau**2) * (z_s - z_t)
