"""Ensembles of networks — Phase 3 of Algorithm 1.

The paper deploys M independently fine-tuned MF-DFP networks in parallel
processing units and averages their logit vectors: the predicted class is
``argmax (1/M) * sum_i z_i``.  With M = 2 the ensemble outperforms the
floating-point network while still saving ~80% energy (Table 2).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.mfdfp import MFDFPNetwork
from repro.nn.data import ArrayDataset
from repro.nn.network import Network

Member = Union[Network, MFDFPNetwork]


class Ensemble:
    """Average-logit ensemble over networks of identical output shape."""

    def __init__(self, members: Sequence[Member], name: str = "ensemble"):
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)
        self.name = name

    def __len__(self) -> int:
        return len(self.members)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Mean logit vector ``(1/M) * sum_i z_i``."""
        acc = None
        for member in self.members:
            z = member.logits(x)
            acc = z.astype(np.float64) if acc is None else acc + z
        return acc / len(self.members)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.logits(x).argmax(axis=1)

    def accuracy(self, dataset: ArrayDataset, k: int = 1, batch_size: int = 256) -> float:
        """Top-k accuracy of the ensemble on ``dataset``."""
        correct = 0
        for start in range(0, len(dataset), batch_size):
            x = dataset.x[start : start + batch_size]
            y = dataset.y[start : start + batch_size]
            z = self.logits(x)
            topk = np.argpartition(-z, kth=min(k, z.shape[1] - 1), axis=1)[:, :k]
            correct += int((topk == y[:, None]).any(axis=1).sum())
        return correct / len(dataset)
