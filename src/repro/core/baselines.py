"""Baseline weight-quantization schemes the paper positions against.

Section 1 argues that binary [14] and ternary [12] precisions "often lead
to unacceptable accuracy loss on large datasets", while plain fixed-point
schemes [9, 13] need at least 8 bits for weights *and* a real multiplier
in hardware.  These baselines make that comparison runnable: each class
is a drop-in ``weight_quantizer`` hook (same shadow-weight training
semantics as :class:`~repro.core.pow2.Pow2WeightQuantizer`), and
:class:`~repro.hw.cost.CostModel` prices the corresponding datapaths.

* :class:`BinaryWeightQuantizer` — BinaryConnect-style ±1 (optionally
  scaled by E|w|, as in BWN).
* :class:`TernaryWeightQuantizer` — {-1, 0, +1} with the Δ = 0.7·E|w|
  threshold of Li et al. / Hwang & Sung [12].
* :class:`FixedPointWeightQuantizer` — ⟨b, f⟩ dynamic fixed-point
  weights, the Ristretto/Courbariaux representation [10, 13].
"""

from __future__ import annotations

import numpy as np

from repro.core.dfp import DFPFormat, choose_fraction_length, dfp_quantize


class BinaryWeightQuantizer:
    """Binary weights: ``sign(w)`` (optionally scaled by ``mean|w|``).

    ``scaled=False`` is BinaryConnect's deterministic binarization;
    ``scaled=True`` is the BWN refinement where the per-tensor scale
    ``alpha = E|w|`` minimizes the L2 binarization error.
    """

    def __init__(self, scaled: bool = True):
        self.scaled = scaled

    def __call__(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w)
        sign = np.where(w >= 0, 1.0, -1.0)
        if self.scaled:
            alpha = float(np.mean(np.abs(w))) or 1.0
            sign = sign * alpha
        return sign.astype(w.dtype, copy=False)

    def __repr__(self) -> str:
        return f"BinaryWeightQuantizer(scaled={self.scaled})"


class TernaryWeightQuantizer:
    """Ternary weights {-a, 0, +a} with threshold ``delta_ratio * E|w|``.

    Weights below the threshold become exactly zero; survivors take the
    mean magnitude of the surviving weights (``scaled=True``) or ±1.
    """

    def __init__(self, delta_ratio: float = 0.7, scaled: bool = True):
        if delta_ratio <= 0:
            raise ValueError("delta_ratio must be positive")
        self.delta_ratio = delta_ratio
        self.scaled = scaled

    def __call__(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w)
        delta = self.delta_ratio * float(np.mean(np.abs(w)))
        mask = np.abs(w) > delta
        if self.scaled:
            selected = np.abs(w[mask])
            alpha = float(selected.mean()) if selected.size else 1.0
        else:
            alpha = 1.0
        out = np.where(mask, np.sign(w) * alpha, 0.0)
        return out.astype(w.dtype, copy=False)

    def __repr__(self) -> str:
        return f"TernaryWeightQuantizer(delta={self.delta_ratio}, scaled={self.scaled})"


class FixedPointWeightQuantizer:
    """⟨b, f⟩ dynamic fixed-point weights (per-tensor fraction length).

    The fraction length is chosen per call from the tensor's range —
    consistent with the shadow-weight flow, where the master weights
    drift during fine-tuning.
    """

    def __init__(self, bits: int = 8):
        if bits < 2:
            raise ValueError("need at least 2 bits")
        self.bits = bits

    def __call__(self, w: np.ndarray) -> np.ndarray:
        f = choose_fraction_length(w, bits=self.bits)
        return dfp_quantize(w, DFPFormat(self.bits, f))

    def __repr__(self) -> str:
        return f"FixedPointWeightQuantizer(bits={self.bits})"
