"""Integer power-of-two weight quantization ⟨s, e⟩ and 4-bit encoding.

Section 5 of the paper: each weight ``w`` is replaced by ``s * 2^e`` with
``s = sign(w)`` and ``e = max[round(log2 |w|), -7]``; because trained
weights have magnitude below 1, ``e`` also never exceeds 0, giving 8
possible exponents ``{0, -1, ..., -7}``.  Sign plus a 3-bit exponent
magnitude fit in 4 bits, which is what the accelerator's weight buffer and
Table 3's memory accounting use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

MIN_EXP = -7
MAX_EXP = 0


def pow2_exponents(
    w: np.ndarray,
    min_exp: int = MIN_EXP,
    max_exp: int = MAX_EXP,
    mode: str = "deterministic",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Exponent ``e`` of the power-of-two closest to ``|w|``.

    Args:
        w: Weights (any shape).
        min_exp: Lower clamp for ``e`` (paper: -7, set by the 8-bit input).
        max_exp: Upper clamp for ``e`` (paper: 0, since |w| < 1).
        mode: ``"deterministic"`` rounds ``log2|w|`` to the nearest integer;
            ``"stochastic"`` rounds up with probability equal to the
            fractional part (expected value preserved in the log domain).
        rng: Generator for stochastic mode.

    Zero weights get ``e = min_exp`` (the closest representable magnitude;
    the format has no exact zero, mirroring the hardware datapath).
    """
    if min_exp > max_exp:
        raise ValueError(f"min_exp {min_exp} > max_exp {max_exp}")
    mag = np.abs(np.asarray(w, dtype=np.float64))
    with np.errstate(divide="ignore"):
        log = np.where(mag > 0, np.log2(np.where(mag > 0, mag, 1.0)), -np.inf)
    if mode == "deterministic":
        e = np.rint(log)
    elif mode == "stochastic":
        if rng is None:
            raise ValueError("stochastic mode requires rng")
        floor = np.floor(log)
        frac = log - floor
        finite = np.isfinite(log)
        draw = rng.random(mag.shape)
        e = np.where(finite & (draw < frac), floor + 1, floor)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    e = np.where(np.isfinite(e), e, min_exp)
    return np.clip(e, min_exp, max_exp).astype(np.int64)


def pow2_quantize(
    w: np.ndarray,
    min_exp: int = MIN_EXP,
    max_exp: int = MAX_EXP,
    mode: str = "deterministic",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Quantize weights to ``sign(w) * 2^e`` (see :func:`pow2_exponents`)."""
    w = np.asarray(w)
    e = pow2_exponents(w, min_exp, max_exp, mode, rng)
    sign = np.where(w < 0, -1.0, 1.0)
    return (sign * np.exp2(e.astype(np.float64))).astype(w.dtype, copy=False)


def pow2_encode4(w: np.ndarray, min_exp: int = MIN_EXP, max_exp: int = MAX_EXP) -> np.ndarray:
    """Encode weights into 4-bit codes: bit 3 = sign, bits 2..0 = ``-e``.

    Valid only for the paper's 8-exponent configuration
    (``max_exp - min_exp <= 7``); raises otherwise.
    """
    if max_exp - min_exp > 7:
        raise ValueError("4-bit encoding supports at most 8 exponent values")
    if max_exp > 0:
        raise ValueError("4-bit encoding stores -e; exponents must be <= 0")
    w = np.asarray(w)
    e = pow2_exponents(w, min_exp, max_exp)
    sign_bit = (w < 0).astype(np.uint8)
    return ((sign_bit << 3) | (-e).astype(np.uint8)).astype(np.uint8)


def pow2_decode4(codes: np.ndarray) -> np.ndarray:
    """Decode 4-bit codes back to ``±2^e`` float values."""
    codes = np.asarray(codes)
    if np.any(codes > 0x0F):
        raise ValueError("codes exceed 4 bits")
    sign = np.where((codes >> 3) & 1, -1.0, 1.0)
    e = -(codes & 0x07).astype(np.float64)
    return sign * np.exp2(e)


def pow2_code_fields(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split 4-bit codes into ``(sign, exponent)``: sign ±1 and ``e <= 0``."""
    codes = np.asarray(codes)
    sign = np.where((codes >> 3) & 1, -1, 1).astype(np.int64)
    e = -(codes & 0x07).astype(np.int64)
    return sign, e


class Pow2WeightQuantizer:
    """Callable weight hook implementing the paper's ⟨s, e⟩ quantization.

    Attach as ``layer.weight_quantizer``; the layer's master weights stay
    floating-point (the Courbariaux shadow copy) while every forward pass
    sees quantized values.
    """

    def __init__(
        self,
        min_exp: int = MIN_EXP,
        max_exp: int = MAX_EXP,
        mode: str = "deterministic",
        rng: Optional[np.random.Generator] = None,
    ):
        if mode not in ("deterministic", "stochastic"):
            raise ValueError(f"unknown mode {mode!r}")
        self.min_exp = min_exp
        self.max_exp = max_exp
        self.mode = mode
        self.rng = rng

    def __call__(self, w: np.ndarray) -> np.ndarray:
        return pow2_quantize(w, self.min_exp, self.max_exp, self.mode, self.rng)

    def __repr__(self) -> str:
        return f"Pow2WeightQuantizer(e in [{self.min_exp},{self.max_exp}], {self.mode})"
