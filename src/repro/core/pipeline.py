"""Algorithm 1 end to end: float network → fine-tuned MF-DFP network(s).

Phase 1 quantizes and fine-tunes with hard labels (shadow float weights);
Phase 2 continues with the student-teacher loss of Eq. 1; Phase 3 repeats
the process from different starting float networks and ensembles them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.distill import DistillationLoss
from repro.core.ensemble import Ensemble
from repro.core.mfdfp import MFDFPNetwork
from repro.core.quantizer import QuantizationPlan
from repro.nn.data import ArrayDataset, BatchIterator
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optim import SGD, PlateauScheduler
from repro.nn.trainer import EpochResult, TrainHistory, Trainer, error_rate


@dataclass
class MFDFPConfig:
    """Hyper-parameters of Algorithm 1 (defaults follow the paper).

    ``compiled`` routes both fine-tuning phases through the compiled
    training fast path (:mod:`repro.nn.compiled`) — bit-identical to the
    eager layers, substantially faster.  ``snapshot_phase1`` records the
    quantized weights after every phase-1 epoch (Algorithm 1 keeps the
    per-epoch ``W_q``); with the compiled path the snapshot is served
    from the quantized-weight cache, so only tensors that changed since
    the epoch's validation sweep are requantized — in practice none.
    Snapshots are collected only under deterministic weight rounding:
    requantizing through a stochastic hook would consume RNG state and
    change the training trajectory itself.
    """

    bits: int = 8
    min_exp: int = -7
    max_exp: int = 0
    weight_mode: str = "deterministic"
    dynamic: bool = True
    lr: float = 1e-3
    momentum: float = 0.9
    weight_decay: float = 0.0
    batch_size: int = 64
    phase1_epochs: int = 20
    phase2_epochs: int = 20
    tau: float = 20.0
    beta: float = 0.2
    plateau_patience: int = 2
    lr_factor: float = 0.1
    min_lr: float = 1e-7
    compiled: bool = True
    snapshot_phase1: bool = True


@dataclass
class MFDFPResult:
    """Everything produced by one run of Algorithm 1 on one float net.

    ``phase1_snapshots`` holds one ``{param name: quantized weights}``
    dict per completed phase-1 epoch when the config asked for them
    (Algorithm 1's per-epoch ``W_q``), else None.
    """

    mfdfp: MFDFPNetwork
    plan: QuantizationPlan
    phase1: TrainHistory
    phase2: TrainHistory
    float_val_error: float
    phase1_snapshots: Optional[list[dict]] = None

    @property
    def final_val_error(self) -> float:
        """Validation error after the last completed phase."""
        for history in (self.phase2, self.phase1):
            if history.epochs:
                return history.epochs[-1].val_error
        return float("nan")

    def error_curve(self) -> list[tuple[int, float, str]]:
        """Figure-3-style series: (epoch, val error, phase) triples."""
        curve = [(e.epoch, e.val_error, "phase1") for e in self.phase1.epochs]
        offset = len(self.phase1.epochs)
        curve += [(offset + e.epoch, e.val_error, "phase2") for e in self.phase2.epochs]
        return curve


def phase1_finetune(
    mfdfp: MFDFPNetwork,
    train: ArrayDataset,
    val: ArrayDataset,
    config: MFDFPConfig,
    rng: Optional[np.random.Generator] = None,
    snapshots: Optional[list] = None,
    resume_state: Optional[dict] = None,
    checkpoint=None,
) -> TrainHistory:
    """Phase 1 (Algorithm 1 lines 3–9): fine-tune with hard labels.

    Quantized forward passes and float master updates happen automatically
    through the layer hooks attached by ``MFDFPNetwork.from_float``.
    Pass a list as ``snapshots`` to collect the per-epoch quantized
    weights (Algorithm 1's ``W_q``); with ``config.compiled`` the copies
    come out of the trainer's quantized-weight cache, which the epoch's
    validation sweep already filled — nothing is requantized.

    ``resume_state`` is a ``Trainer.state_dict()`` captured at a phase-1
    epoch boundary: it is restored into the freshly built trainer and
    the fit continues bit-identically from the next epoch.
    ``checkpoint`` is forwarded to ``Trainer.fit`` (called once per
    epoch, after the scheduler step).
    """
    optimizer = SGD(
        mfdfp.params, lr=config.lr, momentum=config.momentum, weight_decay=config.weight_decay
    )
    scheduler = PlateauScheduler(
        optimizer,
        factor=config.lr_factor,
        patience=config.plateau_patience,
        min_lr=config.min_lr,
    )
    epoch_callback = None
    if snapshots is not None:
        def epoch_callback(trainer, result):
            snapshots.append({k: v.copy() for k, v in trainer.quantized_weights().items()})

    trainer = Trainer(
        mfdfp.net,
        optimizer,
        loss=SoftmaxCrossEntropy(),
        scheduler=scheduler,
        batch_size=config.batch_size,
        rng=rng or np.random.default_rng(1),  # repro-lint: disable=rng-discipline (deterministic default when the caller injects no rng; paper-pipeline runs must reproduce)
        epoch_callback=epoch_callback,
        compiled=config.compiled,
    )
    if resume_state is not None:
        trainer.load_state_dict(resume_state)
    return trainer.fit(
        train,
        val,
        epochs=config.phase1_epochs,
        resume=resume_state is not None,
        checkpoint=checkpoint,
    )


def phase2_distill(
    mfdfp: MFDFPNetwork,
    teacher: Network,
    train: ArrayDataset,
    val: ArrayDataset,
    config: MFDFPConfig,
    rng: Optional[np.random.Generator] = None,
    resume_state: Optional[dict] = None,
    checkpoint=None,
) -> TrainHistory:
    """Phase 2 (Algorithm 1 lines 10–20): student-teacher fine-tuning.

    Teacher logits are computed on the fly per batch (equivalent to the
    paper's precomputed ``t_logits``, without storing the full training
    set's logits).  Both the student's quantized steps and the teacher's
    float forwards run through the compiled fast path when
    ``config.compiled`` (bit-identical to eager execution); the reported
    train loss is the exact sample mean, weighted by batch size.

    ``resume_state``/``checkpoint`` mirror :func:`phase1_finetune`: the
    state is a ``Trainer.state_dict()`` captured at a phase-2 epoch
    boundary (the driving trainer owns the scheduler and history, so one
    state dict covers the whole phase), and ``checkpoint`` runs once per
    epoch after the scheduler step.
    """
    rng = rng or np.random.default_rng(2)  # repro-lint: disable=rng-discipline (deterministic default when the caller injects no rng; paper-pipeline runs must reproduce)
    optimizer = SGD(
        mfdfp.params, lr=config.lr, momentum=config.momentum, weight_decay=config.weight_decay
    )
    scheduler = PlateauScheduler(
        optimizer,
        factor=config.lr_factor,
        patience=config.plateau_patience,
        min_lr=config.min_lr,
    )
    loss = DistillationLoss(tau=config.tau, beta=config.beta)
    # A Trainer drives the student so phase 2 shares the compiled
    # executor plumbing; the teacher gets its own executor (separate
    # network, separate plans).  The scheduler and history hang off the
    # trainer (stepped by this loop, not by fit) so that
    # ``Trainer.state_dict`` captures the complete phase state.
    trainer = Trainer(
        mfdfp.net,
        optimizer,
        loss=loss,
        scheduler=scheduler,
        batch_size=config.batch_size,
        rng=rng,
        compiled=config.compiled,
    )
    if resume_state is not None:
        trainer.load_state_dict(resume_state)
    teacher_executor = None
    if config.compiled:
        from repro.nn.compiled import CompiledTrainer

        teacher_executor = CompiledTrainer(teacher)
    history = trainer.history
    start = len(history.epochs) + 1
    for epoch in range(start, config.phase2_epochs + 1):
        if scheduler.finished:
            break
        batches = BatchIterator(train, config.batch_size, shuffle=True, rng=rng)
        total, count = 0.0, 0
        for x, y in batches:
            if teacher_executor is not None:
                loss.set_teacher_logits(teacher_executor.logits(x))
            else:
                loss.set_teacher_logits(teacher.logits(x))
            logits = trainer.forward_batch(x, training=True)
            total += loss.forward(logits, y) * len(x)
            count += len(x)
            mfdfp.net.zero_grad()
            trainer.backward_batch(loss.backward())
            optimizer.step()
        val_error = trainer.evaluate_error(val)
        train_loss = total / count if count else float("nan")
        history.append(EpochResult(epoch, train_loss, val_error, optimizer.lr))
        scheduler.step(val_error)
        if checkpoint is not None:
            checkpoint(trainer)
        if scheduler.finished:
            break
    return history


def run_algorithm1(
    float_net: Network,
    train: ArrayDataset,
    val: ArrayDataset,
    calibration_x: np.ndarray,
    config: Optional[MFDFPConfig] = None,
    rng: Optional[np.random.Generator] = None,
    checkpoint=None,
) -> MFDFPResult:
    """Full Algorithm 1 on one float network (Phases 1 and 2).

    ``float_net`` is cloned to serve as the (frozen) teacher; the original
    instance is converted in place into the MF-DFP student.

    ``checkpoint`` is an optional pipeline checkpointer (duck-typed so
    this module needs no ``repro.io`` import — see
    :class:`repro.io.checkpoint.PipelineCheckpointer`): ``begin`` is
    called once with the run context, ``phase1``/``phase2`` once per
    epoch at the exact-resume boundary, and ``phase1_complete`` when
    phase 1 finishes.  A killed run restarts through
    :func:`repro.io.checkpoint.resume_algorithm1`.
    """
    config = config or MFDFPConfig()
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (deterministic default when the caller injects no rng; paper-pipeline runs must reproduce)
    float_val_error = error_rate(float_net, val)
    teacher = float_net.clone()
    mfdfp = MFDFPNetwork.from_float(
        float_net,
        calibration_x,
        bits=config.bits,
        min_exp=config.min_exp,
        max_exp=config.max_exp,
        weight_mode=config.weight_mode,
        dynamic=config.dynamic,
        rng=rng,
    )
    # Snapshots only under deterministic rounding: a stochastic hook
    # consumes RNG state on every call, so snapshotting would both shift
    # the draws of subsequent training steps (breaking pre-snapshot
    # reproducibility) and record a fresh draw the forward pass never
    # used.
    collect = config.snapshot_phase1 and config.weight_mode == "deterministic"
    snapshots: Optional[list] = [] if collect else None
    hook1 = hook2 = None
    if checkpoint is not None:
        checkpoint.begin(
            plan=mfdfp.plan,
            config=config,
            teacher=teacher,
            float_val_error=float_val_error,
            snapshots=snapshots,
        )
        hook1, hook2 = checkpoint.phase1, checkpoint.phase2
    history1 = phase1_finetune(
        mfdfp, train, val, config, rng=rng, snapshots=snapshots, checkpoint=hook1
    )
    if checkpoint is not None:
        checkpoint.phase1_complete(history1)
    history2 = phase2_distill(mfdfp, teacher, train, val, config, rng=rng, checkpoint=hook2)
    return MFDFPResult(
        mfdfp=mfdfp,
        plan=mfdfp.plan,
        phase1=history1,
        phase2=history2,
        float_val_error=float_val_error,
        phase1_snapshots=snapshots,
    )


def build_mfdfp_ensemble(
    float_nets: Sequence[Network],
    train: ArrayDataset,
    val: ArrayDataset,
    calibration_x: np.ndarray,
    config: Optional[MFDFPConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> tuple[Ensemble, list[MFDFPResult]]:
    """Phase 3: run Algorithm 1 per starting network and ensemble them."""
    if len(float_nets) < 2:
        raise ValueError("an ensemble needs at least two starting networks")
    rng = rng or np.random.default_rng(0)  # repro-lint: disable=rng-discipline (deterministic default when the caller injects no rng; paper-pipeline runs must reproduce)
    results = [
        run_algorithm1(net, train, val, calibration_x, config, rng=rng) for net in float_nets
    ]
    ensemble = Ensemble([r.mfdfp for r in results], name="mfdfp_ensemble")
    return ensemble, results
