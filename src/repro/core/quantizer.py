"""Ristretto-style network quantization planning and hook attachment.

This module implements line 2 of Algorithm 1 (``Quantize_8bit``): given a
trained floating-point network and a calibration batch, it

1. profiles the dynamic range of every layer output (and of the input),
2. chooses a per-layer fractional length ``f`` — the *dynamic* in dynamic
   fixed point — so that the observed range just fits in ``b`` bits, and
3. attaches quantization hooks: power-of-two weight quantizers on
   conv/dense layers and ⟨b, f⟩ activation quantizers at layer boundaries.

A *boundary* sits after each layer, except that a conv/dense layer
immediately followed by an element-wise activation shares the activation's
boundary — mirroring the hardware, where the wide accumulator feeds the
non-linearity before the single 8-bit rounding in "Accumulator & Routing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.dfp import DFPFormat, DFPQuantizer, choose_fraction_length
from repro.core.pow2 import MAX_EXP, MIN_EXP, Pow2WeightQuantizer
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.network import Network

_ACTIVATION_TYPES = (ReLU, Sigmoid, Tanh)


def profile_activation_ranges(net: Network, x: np.ndarray) -> tuple[float, dict[str, float]]:
    """Max absolute value of the input and of every layer output.

    Must be called on the *clean* float network (before hooks are
    attached); raises if quantizers are already present.
    """
    if net.input_quantizer is not None or any(
        layer.output_quantizer is not None or layer.weight_quantizer is not None
        for layer in net.layers
    ):
        raise ValueError("profile ranges on the float network before attaching quantizers")
    input_max = float(np.max(np.abs(x))) if x.size else 0.0
    ranges: dict[str, float] = {}
    out = x
    for layer in net.layers:
        layer.training = False
        out = layer.forward(out)
        ranges[layer.name] = float(np.max(np.abs(out))) if out.size else 0.0
    return input_max, ranges


@dataclass(frozen=True)
class LayerQuantSpec:
    """Quantization decisions for one layer.

    Attributes:
        layer_name: Name of the layer in the network.
        in_fmt: DFP format of the layer's input boundary.
        out_fmt: DFP format of the layer's output boundary.
        quantize_output: Whether this layer owns an output quantizer (False
            for compute layers that share the following activation's
            boundary).
        quantize_weights: Whether the layer's weights are quantized to
            powers of two (True for conv/dense).
    """

    layer_name: str
    in_fmt: DFPFormat
    out_fmt: DFPFormat
    quantize_output: bool
    quantize_weights: bool


@dataclass
class QuantizationPlan:
    """Complete quantization recipe for a network."""

    bits: int
    input_fmt: DFPFormat
    layers: list[LayerQuantSpec] = field(default_factory=list)
    min_exp: int = MIN_EXP
    max_exp: int = MAX_EXP
    dynamic: bool = True

    def spec(self, layer_name: str) -> LayerQuantSpec:
        """Look up the spec for a layer by name."""
        for s in self.layers:
            if s.layer_name == layer_name:
                return s
        raise KeyError(f"no quantization spec for layer {layer_name!r}")

    def fraction_lengths(self) -> dict[str, int]:
        """Map of layer name to output fractional length (for reports)."""
        return {s.layer_name: s.out_fmt.frac for s in self.layers}

    def summary(self) -> str:
        """Human-readable table of the per-layer quantization decisions."""
        lines = [
            f"QuantizationPlan: {self.bits}-bit "
            f"{'dynamic' if self.dynamic else 'static'} fixed point, "
            f"weight exponents in [{self.min_exp}, {self.max_exp}], "
            f"input {self.input_fmt}"
        ]
        header = f"{'layer':<14}{'in':>8}{'out':>8}{'quant out':>11}{'pow2 w':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.layers:
            lines.append(
                f"{s.layer_name:<14}{str(s.in_fmt):>8}{str(s.out_fmt):>8}"
                f"{'yes' if s.quantize_output else '-':>11}"
                f"{'yes' if s.quantize_weights else '-':>8}"
            )
        return "\n".join(lines)


class NetworkQuantizer:
    """Builds and applies :class:`QuantizationPlan` objects.

    Args:
        bits: Activation/signal bit width (paper: 8).
        min_exp: Smallest weight exponent (paper: -7, tied to 8-bit input).
        max_exp: Largest weight exponent (paper: 0).
        weight_mode: ``"deterministic"`` or ``"stochastic"`` rounding of
            weight exponents (the paper found deterministic works better).
        dynamic: If False, use one global fractional length for every
            boundary (the *static* fixed-point ablation).
        margin: Extra integer bits of saturation headroom per boundary.
        rng: Generator for stochastic weight rounding.
        skip_weight_layers: Layer names whose weights stay floating-point
            (a common Ristretto-style ablation: exempt the first/last
            layer).  Such networks are software-only — the multiplier-free
            accelerator cannot execute float layers, and ``deploy`` will
            reject them.
        weight_quantizer_factory: Zero-argument callable returning the
            per-layer weight hook; defaults to the paper's power-of-two
            quantizer.  Pass a factory of
            :class:`~repro.core.baselines.BinaryWeightQuantizer` /
            ``TernaryWeightQuantizer`` / ``FixedPointWeightQuantizer`` to
            run the comparison baselines (software-only; ``deploy``
            requires power-of-two weights).
    """

    def __init__(
        self,
        bits: int = 8,
        min_exp: int = MIN_EXP,
        max_exp: int = MAX_EXP,
        weight_mode: str = "deterministic",
        dynamic: bool = True,
        margin: int = 0,
        rng: Optional[np.random.Generator] = None,
        skip_weight_layers: tuple = (),
        weight_quantizer_factory=None,
    ):
        self.bits = bits
        self.min_exp = min_exp
        self.max_exp = max_exp
        self.weight_mode = weight_mode
        self.dynamic = dynamic
        self.margin = margin
        self.rng = rng
        self.skip_weight_layers = tuple(skip_weight_layers)
        self.weight_quantizer_factory = weight_quantizer_factory

    # -- planning ----------------------------------------------------------
    def plan(self, net: Network, calibration_x: np.ndarray) -> QuantizationPlan:
        """Derive per-boundary formats from a calibration batch."""
        input_max, ranges = profile_activation_ranges(net, calibration_x)
        if self.dynamic:
            fracs = {
                name: choose_fraction_length(
                    np.array([m], dtype=np.float64), self.bits, self.margin
                )
                for name, m in ranges.items()
            }
            input_frac = choose_fraction_length(
                np.array([input_max], dtype=np.float64), self.bits, self.margin
            )
        else:
            global_max = max([input_max] + list(ranges.values()))
            f = choose_fraction_length(
                np.array([global_max], dtype=np.float64), self.bits, self.margin
            )
            fracs = {name: f for name in ranges}
            input_frac = f

        plan = QuantizationPlan(
            bits=self.bits,
            input_fmt=DFPFormat(self.bits, input_frac),
            min_exp=self.min_exp,
            max_exp=self.max_exp,
            dynamic=self.dynamic,
        )
        layers = net.layers
        # Boundary ownership: conv/dense followed by an activation defers
        # its output quantization to that activation.
        owns_boundary = []
        for i, layer in enumerate(layers):
            next_is_act = i + 1 < len(layers) and isinstance(layers[i + 1], _ACTIVATION_TYPES)
            owns_boundary.append(not (layer.params and next_is_act))

        in_fmt = plan.input_fmt
        for i, layer in enumerate(layers):
            out_fmt = DFPFormat(self.bits, fracs[layer.name])
            if not owns_boundary[i]:
                # Share the following activation's boundary format.
                out_fmt = DFPFormat(self.bits, fracs[layers[i + 1].name])
            plan.layers.append(
                LayerQuantSpec(
                    layer_name=layer.name,
                    in_fmt=in_fmt,
                    out_fmt=out_fmt,
                    quantize_output=owns_boundary[i],
                    quantize_weights=bool(layer.params)
                    and layer.name not in self.skip_weight_layers,
                )
            )
            in_fmt = out_fmt
        return plan

    # -- application -------------------------------------------------------
    def apply(self, net: Network, plan: QuantizationPlan) -> Network:
        """Attach quantization hooks per ``plan``; returns ``net``."""
        net.input_quantizer = DFPQuantizer(plan.input_fmt)
        for layer in net.layers:
            spec = plan.spec(layer.name)
            if spec.quantize_weights:
                if self.weight_quantizer_factory is not None:
                    layer.weight_quantizer = self.weight_quantizer_factory()
                else:
                    layer.weight_quantizer = Pow2WeightQuantizer(
                        plan.min_exp, plan.max_exp, self.weight_mode, self.rng
                    )
            layer.output_quantizer = DFPQuantizer(spec.out_fmt) if spec.quantize_output else None
        return net

    def quantize(self, net: Network, calibration_x: np.ndarray) -> QuantizationPlan:
        """Plan and apply in one step (Algorithm 1's ``Quantize_8bit``)."""
        plan = self.plan(net, calibration_x)
        self.apply(net, plan)
        return plan


def hook_is_pure(hook) -> bool:
    """True when a quantization hook is a pure function of its input.

    Pure hooks are safe to memoize (the compiled training fast path
    caches the quantized weights of an unchanged master tensor) and to
    fuse into in-place kernels.  Deterministic power-of-two weight
    quantizers and DFP activation quantizers qualify; stochastic
    rounding consumes RNG state on every call, so it must never be
    cached — skipping a call would shift every later draw.
    Unknown hook types are conservatively treated as impure.
    """
    if isinstance(hook, DFPQuantizer):
        return True
    if isinstance(hook, Pow2WeightQuantizer):
        return hook.mode == "deterministic"
    return False


def strip_quantization(net: Network) -> Network:
    """Remove every quantization hook, restoring float behaviour."""
    net.input_quantizer = None
    for layer in net.layers:
        layer.weight_quantizer = None
        layer.output_quantizer = None
    return net
