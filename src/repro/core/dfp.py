"""Dynamic fixed-point (DFP) number format ⟨b, f⟩.

The paper (following Courbariaux et al. [13]) represents each signal as

    value = (-1)^s * 2^(-f) * sum_{i=0}^{b-2} 2^i x_i

i.e. *sign-magnitude* with ``b-1`` magnitude bits and fractional length
``f``.  The representable grid is the symmetric set
``{ -M..M } * 2^-f`` with ``M = 2^(b-1) - 1``.  "Dynamic" means each layer
may use a different ``f``; the paper fixes ``b = 8`` everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DFPFormat:
    """A dynamic fixed-point format ⟨b, f⟩.

    Attributes:
        bits: Total bit width ``b`` (one sign bit + ``b-1`` magnitude bits).
        frac: Fractional length ``f`` (may be negative or exceed ``b``).
    """

    bits: int = 8
    frac: int = 0

    def __post_init__(self):
        if self.bits < 2:
            raise ValueError(f"DFP needs at least 2 bits, got {self.bits}")

    @property
    def max_code(self) -> int:
        """Largest magnitude code: ``2^(b-1) - 1``."""
        return (1 << (self.bits - 1)) - 1

    @property
    def resolution(self) -> float:
        """Grid step ``2^-f``."""
        return 2.0 ** (-self.frac)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return self.max_code * self.resolution

    @property
    def min_value(self) -> float:
        """Most negative representable value (symmetric range)."""
        return -self.max_value

    def __str__(self) -> str:
        return f"<{self.bits},{self.frac}>"


def dfp_to_codes(x: np.ndarray, fmt: DFPFormat) -> np.ndarray:
    """Quantize ``x`` to signed integer codes on the ⟨b, f⟩ grid.

    Round-to-nearest (ties to even, numpy semantics) with saturation at
    ``±(2^(b-1)-1)``.  The returned dtype is int64.
    """
    scaled = np.asarray(x, dtype=np.float64) * (2.0**fmt.frac)
    codes = np.rint(scaled).astype(np.int64)
    return np.clip(codes, -fmt.max_code, fmt.max_code)


def dfp_from_codes(codes: np.ndarray, fmt: DFPFormat) -> np.ndarray:
    """Reconstruct real values from integer codes."""
    codes = np.asarray(codes)
    if np.any(np.abs(codes) > fmt.max_code):
        raise ValueError(f"code out of range for {fmt}")
    return codes.astype(np.float64) * fmt.resolution


def dfp_quantize(x: np.ndarray, fmt: DFPFormat) -> np.ndarray:
    """Round ``x`` to the nearest representable DFP value (with saturation)."""
    out = dfp_from_codes(dfp_to_codes(x, fmt), fmt)
    return out.astype(np.asarray(x).dtype, copy=False)


def choose_fraction_length(x: np.ndarray, bits: int = 8, margin: int = 0) -> int:
    """Pick the largest ``f`` such that ``max|x|`` does not saturate.

    This is the Ristretto-style rule: give the integer part just enough
    bits for the observed range and spend the rest on fraction.  ``margin``
    reserves extra integer bits as saturation headroom.

    Args:
        x: Calibration data (any shape).
        bits: Total DFP bit width.
        margin: Extra integer bits to reserve.

    Returns:
        The fractional length ``f`` (clamped to ``[-64, 64]``).
    """
    max_abs = float(np.max(np.abs(x))) if np.asarray(x).size else 0.0
    max_code = (1 << (bits - 1)) - 1
    if max_abs == 0.0:
        return bits - 1
    # Largest f with max_code * 2^-f >= max_abs.  Computed as a log
    # difference: the quotient max_code / max_abs overflows to inf for
    # subnormal max_abs (~1e-311), while log2 handles subnormals fine.
    f = math.floor(math.log2(max_code) - math.log2(max_abs))
    f -= margin
    # Guard against log2 edge cases: back off while saturating.
    while max_code * 2.0**-f < max_abs:
        f -= 1
    return int(np.clip(f, -64, 64))


class DFPQuantizer:
    """Callable quantization hook: snap arrays to a fixed ⟨b, f⟩ grid.

    Instances are attached to layers as ``output_quantizer`` (activations)
    or used as the network ``input_quantizer``.  The backward pass treats
    them as the identity (straight-through estimator).
    """

    def __init__(self, fmt: DFPFormat):
        self.fmt = fmt

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return dfp_quantize(x, self.fmt)

    def __repr__(self) -> str:
        return f"DFPQuantizer({self.fmt})"
