"""Batched integer inference engine for deployed MF-DFP networks.

A :class:`repro.core.mfdfp.DeployedMFDFP` can be executed two ways, both
bit-identical (every activation an integer code, every multiply a shift,
round-half-to-even exactly as in the RTL datapath):

* the **reference path** (:func:`execute_deployed`) re-derives everything
  on every call — it decodes the 4-bit weight codes, lowers convolutions
  through :func:`repro.nn.layers.conv.im2col`, and rebuilds pooling
  windows each time.  It is the executable specification the hardware
  tests verify against.
* the **compiled path** (:class:`BatchedEngine`) front-loads all of that
  work once per network: weight codes become integer shift multipliers
  through a 16-entry LUT (:data:`SHIFT_LUT`), im2col and pooling windows
  become precomputed gather-index tables, and each layer becomes a
  closure that maps an ``(N, ...)`` batch of codes to the next batch of
  codes.  Serving-style workloads run through :mod:`repro.serve`, which
  adds request micro-batching on top.

Both paths dispatch through one layer-op registry (:data:`OP_REGISTRY`),
so adding an op kind means adding exactly one :class:`LayerOpHandler`.
The registry is also what :mod:`repro.hw.accelerator` executes — the
scalar/back-compat entry point ``repro.hw.accelerator.execute_deployed``
forwards here.
"""

from __future__ import annotations

import functools
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.dfp import DFPFormat, dfp_to_codes
from repro.core.mfdfp import DeployedLayer, DeployedMFDFP
from repro.hw.datapath import (
    accumulator_route,
    check_width,
    div_round_half_even,
    requantize_codes,
    saturate,
)
from repro.nn.layers.conv import im2col, patch_index_table
from repro.nn.layers.pool import pool_output_size

#: Accumulator wire width checked when ``check_widths`` is on.
ACCUMULATOR_BITS = 32

#: LUT over the 16 possible 4-bit weight codes (bit 3 = sign, bits 2..0 =
#: ``-e``): entry ``c`` is the signed shift multiplier ``s << (7 + e)``,
#: so the multiplier-free product ``(s * x) << (7 + e)`` becomes the
#: single integer multiply ``SHIFT_LUT[c] * x`` on the ``2^-(m+7)`` grid.
SHIFT_LUT = np.array(
    [(-1 if (c >> 3) & 1 else 1) << (7 - (c & 0x07)) for c in range(16)],
    dtype=np.int64,
)


def shift_weight_ints(codes: np.ndarray) -> np.ndarray:
    """Decode 4-bit weight codes to integer shift multipliers.

    ``shift_weight_ints(codes)[i] == s_i << (7 + e_i)`` — a single LUT
    gather replacing the decode-then-shift of the eager path.
    """
    codes = np.asarray(codes)
    if np.any((codes < 0) | (codes > 0x0F)):
        raise ValueError("codes exceed 4 bits")
    return SHIFT_LUT[codes]


# -- decoded weight planes -------------------------------------------------------
#
# The compiled kernels consume weights in one canonical decoded form per
# op kind (the *weight plane*).  Factoring the decode out lets a host
# publish planes into ``multiprocessing.shared_memory`` once and have
# every worker process compile engines against zero-copy views
# (:mod:`repro.parallel`), instead of each process re-decoding — and
# re-materializing — its own 8-bytes-per-weight copy.  The decode
# counter makes that invariant testable: a worker serving from shared
# planes performs zero decodes.
_plane_decode_lock = threading.Lock()
_plane_decodes = 0


def plane_decode_count() -> int:
    """Process-wide count of :func:`decode_weight_plane` calls.

    Shared-memory accounting: a worker process whose engines attach
    every weight plane from a :class:`repro.parallel.SharedWeightArena`
    never decodes, so this counter staying flat *is* the
    decoded-planes-mapped-once-per-host invariant.
    """
    return _plane_decodes


def decode_weight_plane(op: DeployedLayer) -> Optional[np.ndarray]:
    """The canonical LUT-decoded float64 weight plane of one compute op.

    ``conv`` ops decode to ``(groups, out_channels/groups, syn)`` with
    ``syn = (in_channels/groups) * k * k`` — the grouped-GEMM operand of
    the compiled kernel.  ``dense`` ops decode to the transposed
    contiguous ``(in_features, out_features)`` operand.  Ops without
    weights return ``None``.  The returned array is frozen
    (non-writeable): planes are shared between kernels, caches, and —
    via the shared-memory arena — whole processes.
    """
    if op.weight_codes is None or op.kind not in ("conv", "dense"):
        return None
    global _plane_decodes
    with _plane_decode_lock:
        _plane_decodes += 1
    if op.kind == "conv":
        g = op.groups or 1
        syn = (op.in_channels // g) * op.kernel_size * op.kernel_size
        plane = (
            shift_weight_ints(op.weight_codes)
            .reshape(g, op.out_channels // g, syn)
            .astype(np.float64)
        )
    else:
        plane = np.ascontiguousarray(
            shift_weight_ints(op.weight_codes)
            .reshape(op.out_features, op.in_features)
            .T,
            dtype=np.float64,
        )
    plane.setflags(write=False)
    return plane


def _check_plane(op: DeployedLayer, plane: np.ndarray, shape: tuple) -> np.ndarray:
    """Validate an externally supplied (e.g. shared-memory) weight plane."""
    if plane.shape != shape or plane.dtype != np.float64:
        raise ValueError(
            f"{op.name}: weight plane has shape {plane.shape} ({plane.dtype}), "
            f"expected {shape} (float64)"
        )
    return plane


# -- gather-index precomputation -------------------------------------------------
#
# The gather tables depend only on layer *geometry*, not on weights, so
# they are memoized process-wide: workloads that compile many engines of
# identical topology but different weight content — the fault-injection
# campaigns recompile per corrupted network — pay the index construction
# once.  The cached arrays are frozen (non-writeable) because every
# engine shares them.
def _im2col_indices(c: int, h: int, w: int, k: int, stride: int, pad: int):
    """Gather table lowering im2col to one fancy-index per batch.

    Returns ``(index, oh, ow)`` where ``index`` has shape
    ``(c*k*k, oh*ow)`` and indexes a flattened ``(c*h*w + 1,)`` input
    whose last slot holds the padding value (the *sentinel*).  The table
    is the sentinel variant of
    :func:`repro.nn.layers.conv.patch_index_table` — one geometry-keyed
    LRU shared with the training path's ``col2im`` scatter; the returned
    index is read-only and shared.
    """
    return patch_index_table(c, h, w, k, k, stride, pad, sentinel=True)


@functools.lru_cache(maxsize=256)
def _pool_indices(h: int, w: int, k: int, stride: int, pad: int, ceil_mode: bool):
    """Gather table for pooling windows (per channel, spatial only).

    Returns ``(index, oh, ow)`` where ``index`` has shape
    ``(oh*ow, k*k)`` and indexes a flattened ``(h*w + 1,)`` feature map
    whose last slot holds the window fill value.  Ceil mode may demand
    rows/columns beyond the symmetric padding; they also map to the fill
    slot, mirroring the asymmetric pad of the eager path.  Memoized by
    geometry; the returned index is read-only and shared.
    """
    sentinel = h * w
    oh = pool_output_size(h, k, stride, pad, ceil_mode)
    ow = pool_output_size(w, k, stride, pad, ceil_mode)
    need_h = (oh - 1) * stride + k
    need_w = (ow - 1) * stride + k
    pad_b = max(0, need_h - (h + pad))
    pad_r = max(0, need_w - (w + pad))
    grid = np.full((h + pad + pad_b, w + pad + pad_r), sentinel, dtype=np.int64)
    grid[pad : pad + h, pad : pad + w] = np.arange(sentinel).reshape(h, w)
    win = np.lib.stride_tricks.sliding_window_view(grid, (k, k))
    win = win[::stride, ::stride][:oh, :ow]
    index = win.reshape(oh * ow, k * k).astype(np.intp)
    index.setflags(write=False)
    return index, oh, ow


def _with_sentinel(codes2d: np.ndarray, fill: int, dtype=np.int64) -> np.ndarray:
    """Append the sentinel slot (one ``fill`` per row) to flattened codes."""
    rows = codes2d.shape[0]
    out = np.empty((rows, codes2d.shape[1] + 1), dtype=dtype)
    out[:, :-1] = codes2d
    out[:, -1] = fill
    return out


# -- reference (eager) ops -------------------------------------------------------
def _conv_reference(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    n = codes.shape[0]
    k = op.kernel_size
    g = op.groups or 1
    cols, oh, ow = im2col(codes, k, k, op.stride, op.pad)
    syn = (op.in_channels // g) * k * k
    w_int = shift_weight_ints(op.weight_codes).reshape(g, op.out_channels // g, syn)
    cols_g = cols.astype(np.int64).reshape(n, g, syn, -1)
    acc = np.einsum("gfk,ngkp->ngfp", w_int, cols_g, optimize=True)
    acc = acc.reshape(n, op.out_channels, -1)
    if op.bias_int is not None:
        acc += op.bias_int[None, :, None]
    if check_widths:
        check_width(acc, ACCUMULATOR_BITS, f"{op.name} accumulator")
    out = accumulator_route(acc, op.in_frac + 7, op.out_frac, op.activation)
    return out.reshape(n, op.out_channels, oh, ow)


def _dense_reference(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    w_int = shift_weight_ints(op.weight_codes).reshape(op.out_features, op.in_features)
    acc = codes.astype(np.int64) @ w_int.T
    if op.bias_int is not None:
        acc += op.bias_int[None, :]
    if check_widths:
        check_width(acc, ACCUMULATOR_BITS, f"{op.name} accumulator")
    return accumulator_route(acc, op.in_frac + 7, op.out_frac, op.activation)


def _pool_windows(codes: np.ndarray, op: DeployedLayer, fill: int):
    n, c, h, w = codes.shape
    k, s, p = op.kernel_size, op.stride, op.pad
    oh = pool_output_size(h, k, s, p, op.ceil_mode)
    ow = pool_output_size(w, k, s, p, op.ceil_mode)
    need_h = (oh - 1) * s + k
    need_w = (ow - 1) * s + k
    pad_b = max(0, need_h - (h + p))
    pad_r = max(0, need_w - (w + p))
    padded = np.pad(codes, ((0, 0), (0, 0), (p, pad_b), (p, pad_r)), constant_values=fill)
    win = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(2, 3))
    return win[:, :, ::s, ::s][:, :, :oh, :ow], oh, ow


def _maxpool_reference(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    win, _, _ = _pool_windows(codes, op, fill=np.iinfo(np.int64).min)
    out = win.max(axis=(-1, -2))
    return requantize_codes(out, op.in_frac, op.out_frac)


def _avgpool_reference(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    win, oh, ow = _pool_windows(codes, op, fill=0)
    sums = win.sum(axis=(-1, -2), dtype=np.int64)
    ones = np.ones((1, 1) + codes.shape[2:], dtype=np.int64)
    counts = _pool_windows(ones, op, fill=0)[0].sum(axis=(-1, -2))[0, 0]  # (oh, ow)
    shift = op.out_frac - op.in_frac
    if shift >= 0:
        out = div_round_half_even(sums << shift, counts[None, None])
    else:
        out = div_round_half_even(sums, counts[None, None] << (-shift))
    return saturate(out)


def _flatten_reference(op: DeployedLayer, codes: np.ndarray, check_widths: bool) -> np.ndarray:
    return codes.reshape(codes.shape[0], -1)


# -- compiled kernels ------------------------------------------------------------
#
# The compute kernels run their GEMM in float64 to reach BLAS: every shift
# product fits 16 bits and every accumulator 32 bits, far below the 2^53
# integers IEEE doubles represent exactly, so each partial sum is an exact
# integer and the result is bit-identical to int64 arithmetic regardless
# of summation order.  ``astype(np.int64)`` afterwards is lossless.
def _conv_compile(op: DeployedLayer, in_shape: tuple, plane: Optional[np.ndarray] = None):
    c, h, w = in_shape
    k, g = op.kernel_size, op.groups or 1
    syn = (c // g) * k * k
    chw = c * h * w
    shape = (g, op.out_channels // g, syn)
    w_f = decode_weight_plane(op) if plane is None else _check_plane(op, plane, shape)
    index, oh, ow = _im2col_indices(c, h, w, k, op.stride, op.pad)
    positions = oh * ow
    bias = None if op.bias_int is None else op.bias_int[None, :, None].astype(np.float64)
    acc_frac = op.in_frac + 7

    # Batch-transposed layout: gathering from (chw+1, N) yields columns as
    # (c*k*k, positions, N), which reshapes — without copies — into the
    # (g, syn, positions*N) operand of one large GEMM per group instead of
    # N small ones.
    def kernel(codes: np.ndarray, check_widths: bool = False) -> np.ndarray:
        n = codes.shape[0]
        flat_t = np.empty((chw + 1, n), dtype=np.float64)
        flat_t[:-1] = codes.reshape(n, chw).T
        flat_t[-1] = 0.0
        cols_t = flat_t[index].reshape(g, syn, positions * n)
        acc_t = np.matmul(w_f, cols_t)  # (g, out_channels/g, positions*n)
        acc_f = acc_t.reshape(op.out_channels, positions, n).transpose(2, 0, 1)
        if bias is not None:
            acc_f = acc_f + bias
        acc = acc_f.astype(np.int64)
        if check_widths:
            check_width(acc, ACCUMULATOR_BITS, f"{op.name} accumulator")
        out = accumulator_route(acc, acc_frac, op.out_frac, op.activation)
        return out.reshape(n, op.out_channels, oh, ow)

    return kernel, (op.out_channels, oh, ow)


def _dense_compile(op: DeployedLayer, in_shape: tuple, plane: Optional[np.ndarray] = None):
    shape = (op.in_features, op.out_features)
    w_t = decode_weight_plane(op) if plane is None else _check_plane(op, plane, shape)
    bias = None if op.bias_int is None else op.bias_int[None, :].astype(np.float64)
    acc_frac = op.in_frac + 7

    def kernel(codes: np.ndarray, check_widths: bool = False) -> np.ndarray:
        acc_f = codes.astype(np.float64, copy=False) @ w_t
        if bias is not None:
            acc_f = acc_f + bias
        acc = acc_f.astype(np.int64)
        if check_widths:
            check_width(acc, ACCUMULATOR_BITS, f"{op.name} accumulator")
        return accumulator_route(acc, acc_frac, op.out_frac, op.activation)

    return kernel, (op.out_features,)


def _maxpool_compile(op: DeployedLayer, in_shape: tuple):
    c, h, w = in_shape
    index, oh, ow = _pool_indices(h, w, op.kernel_size, op.stride, op.pad, op.ceil_mode)
    fill = int(np.iinfo(np.int64).min)

    def kernel(codes: np.ndarray, check_widths: bool = False) -> np.ndarray:
        n = codes.shape[0]
        flat = _with_sentinel(codes.reshape(n * c, h * w), fill=fill)
        out = flat[:, index].max(axis=-1)
        return requantize_codes(out, op.in_frac, op.out_frac).reshape(n, c, oh, ow)

    return kernel, (c, oh, ow)


def _avgpool_compile(op: DeployedLayer, in_shape: tuple):
    c, h, w = in_shape
    index, oh, ow = _pool_indices(h, w, op.kernel_size, op.stride, op.pad, op.ceil_mode)
    counts = (index != h * w).sum(axis=-1).astype(np.int64)  # in-bounds taps per window
    shift = op.out_frac - op.in_frac
    if shift >= 0:
        num_shift, den = shift, counts[None]
    else:
        num_shift, den = 0, counts[None] << (-shift)

    def kernel(codes: np.ndarray, check_widths: bool = False) -> np.ndarray:
        n = codes.shape[0]
        flat = _with_sentinel(codes.reshape(n * c, h * w), fill=0)
        sums = flat[:, index].sum(axis=-1)
        out = div_round_half_even(sums << num_shift, den)
        return saturate(out).reshape(n, c, oh, ow)

    return kernel, (c, oh, ow)


def _flatten_compile(op: DeployedLayer, in_shape: tuple):
    features = int(np.prod(in_shape))

    def kernel(codes: np.ndarray, check_widths: bool = False) -> np.ndarray:
        return codes.reshape(codes.shape[0], features)

    return kernel, (features,)


# -- the registry ----------------------------------------------------------------
@dataclass(frozen=True)
class LayerOpHandler:
    """One op kind: an eager reference and a kernel compiler.

    ``reference(op, codes, check_widths)`` maps a batch of input codes to
    output codes directly from the :class:`DeployedLayer`.
    ``compile(op, in_shape)`` returns ``(kernel, out_shape)`` where
    ``kernel(codes, check_widths)`` is the precomputed batched closure.
    Weighted kinds (conv/dense) additionally accept
    ``compile(op, in_shape, plane)`` — a pre-decoded weight plane
    (see :func:`decode_weight_plane`), typically a zero-copy
    shared-memory view, used instead of decoding the op's codes.
    """

    kind: str
    reference: Callable[[DeployedLayer, np.ndarray, bool], np.ndarray]
    compile: Callable[[DeployedLayer, tuple], tuple]


#: The single source of truth for executable op kinds; both the eager
#: reference path and :class:`BatchedEngine` dispatch through it.
OP_REGISTRY: dict[str, LayerOpHandler] = {}


def register_op(handler: LayerOpHandler) -> None:
    """Register (or replace) the handler for one op kind."""
    OP_REGISTRY[handler.kind] = handler


register_op(LayerOpHandler("conv", _conv_reference, _conv_compile))
register_op(LayerOpHandler("dense", _dense_reference, _dense_compile))
register_op(LayerOpHandler("maxpool", _maxpool_reference, _maxpool_compile))
register_op(LayerOpHandler("avgpool", _avgpool_reference, _avgpool_compile))
register_op(LayerOpHandler("flatten", _flatten_reference, _flatten_compile))


def _handler(kind: str) -> LayerOpHandler:
    try:
        return OP_REGISTRY[kind]
    except KeyError:
        raise ValueError(f"cannot execute op kind {kind!r}") from None


# -- reference entry point -------------------------------------------------------
def execute_deployed(
    deployed: DeployedMFDFP, x: np.ndarray, check_widths: bool = False
) -> np.ndarray:
    """Run a deployed network on a batch, all-integer; returns out codes.

    This is the eager reference path: weights are decoded and windows
    rebuilt on every call.  :class:`BatchedEngine` produces bit-identical
    codes while amortizing that work across calls.
    """
    codes = dfp_to_codes(x, DFPFormat(deployed.bits, deployed.input_frac))
    for op in deployed.ops:
        codes = _handler(op.kind).reference(op, codes, check_widths)
    return codes


# -- engine identity -------------------------------------------------------------
def engine_fingerprint(deployed: DeployedMFDFP) -> str:
    """Cheap content fingerprint of a deployed network.

    Hashes the execution-relevant content — op kinds, geometry, radix
    indices, fused activations, weight codes and integer biases — so two
    artifacts that would compile to identical engines share a
    fingerprint even when they are distinct Python objects (e.g. the
    same network deployed twice).  One pass over the integer tensors,
    orders of magnitude cheaper than a compile, which is what lets
    :class:`EngineCache` promise compile-once semantics per content.

    The digest is memoized on the artifact so hot paths (e.g.
    ``Accelerator.run_batched`` hitting the cache per call) hash the
    tensors once, not per lookup.  The memo is paired with ``id(self)``,
    so copies (``inject_weight_faults`` builds a fresh artifact around
    shared-or-replaced tensors) never inherit a stale digest — and a
    corrupted copy whose content happens to be unchanged (zero flips)
    legitimately re-derives the *same* digest and shares the compiled
    engine.  A deployed network is a *frozen* artifact — mutate one in
    place and, like any cache key, its fingerprint must be treated as
    invalidated (copy first, as the fault injector does).
    """
    memo = deployed.__dict__.get("_fingerprint_memo")
    if memo is not None and memo[0] == id(deployed):
        return memo[1]
    h = hashlib.blake2b(digest_size=16)
    h.update(
        repr((tuple(deployed.input_shape), deployed.input_frac, deployed.bits)).encode()
    )
    for op in deployed.ops:
        h.update(
            repr(
                (
                    op.kind,
                    op.in_frac,
                    op.out_frac,
                    op.activation,
                    op.in_channels,
                    op.out_channels,
                    op.kernel_size,
                    op.stride,
                    op.pad,
                    op.groups,
                    op.ceil_mode,
                    op.in_features,
                    op.out_features,
                )
            ).encode()
        )
        if op.weight_codes is not None:
            h.update(np.ascontiguousarray(op.weight_codes, dtype=np.uint8).tobytes())
        if op.bias_int is not None:
            h.update(np.ascontiguousarray(op.bias_int, dtype=np.int64).tobytes())
    digest = h.hexdigest()
    deployed.__dict__["_fingerprint_memo"] = (id(deployed), digest)
    return digest


class CacheStats:
    """Per-consumer hit/miss accounting for :class:`EngineCache` lookups.

    An :class:`EngineCache` keeps process-global ``hits``/``misses``
    totals, but a *shared* cache serves many consumers at once — two
    concurrent campaigns sweeping through the shared campaign cache used
    to measure each other's traffic when they read before/after deltas
    off the global counters.  A ``CacheStats`` instance is the fix: pass
    one to :meth:`EngineCache.get` and exactly the lookups made with it
    are counted here, no matter what other traffic the cache sees.

    Thread-safe: one consumer may fan its lookups out across a pool.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def record(self, hit: bool) -> None:
        """Count one lookup attributed to this consumer."""
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def counters(self) -> tuple[int, int]:
        """One consistent ``(hits, misses)`` pair."""
        with self._lock:
            return self._hits, self._misses


class EngineCache:
    """Thread-safe bounded cache of compiled engines, keyed by content.

    ``get`` compiles a :class:`BatchedEngine` on first sight of a
    network's :func:`engine_fingerprint` and returns the *same* engine
    object on every later call with equal content — compile once, serve
    forever.  Eviction is least-recently-used and bounded at
    ``capacity`` entries so sweeping many networks through one cache
    cannot grow memory without bound.

    Concurrency: lookups take a short mutex; compilation happens under a
    separate compile lock with a double-check, so concurrent requests
    for the same network trigger exactly one compile (the losers block
    and receive the winner's engine).  Compiles of *different* networks
    serialize too — compilation is milliseconds for the models served
    here, and the simple locking is easy to prove correct.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._compile_lock = threading.Lock()
        self._engines: OrderedDict[tuple, BatchedEngine] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def _lookup_locked(self, key: tuple) -> Optional[BatchedEngine]:
        """Return and LRU-touch the cached engine for ``key``; caller holds ``_lock``."""
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            self.hits += 1
        return engine

    def counters(self) -> tuple[int, int]:
        """One consistent ``(hits, misses)`` snapshot of the global totals.

        Reading ``cache.hits`` and ``cache.misses`` as two attribute
        accesses can tear (a lookup may land between them); this reads
        both under the cache mutex.  For *per-consumer* accounting on a
        shared cache, pass a :class:`CacheStats` to :meth:`get` instead
        — global deltas attribute concurrent consumers' traffic to
        whoever happens to be measuring.
        """
        with self._lock:
            return self.hits, self.misses

    def get(
        self,
        deployed: DeployedMFDFP,
        check_widths: bool = False,
        stats: Optional[CacheStats] = None,
    ) -> BatchedEngine:
        """The cached engine for ``deployed``, compiling on first use.

        ``stats`` attributes this lookup (hit, or miss-then-compile) to
        one consumer's :class:`CacheStats` in addition to the cache's
        global counters.  A lookup that blocks on another thread's
        in-flight compile of the same network counts as a hit: this
        consumer paid no compile.
        """
        key = (engine_fingerprint(deployed), bool(check_widths))
        with self._lock:
            engine = self._lookup_locked(key)
        if engine is not None:
            if stats is not None:
                stats.record(hit=True)
            return engine
        with self._compile_lock:
            with self._lock:
                engine = self._lookup_locked(key)
            if engine is not None:
                if stats is not None:
                    stats.record(hit=True)
                return engine
            engine = BatchedEngine(deployed, check_widths=check_widths)
            with self._lock:
                self.misses += 1
                self._engines[key] = engine
                while len(self._engines) > self.capacity:
                    self._engines.popitem(last=False)
            if stats is not None:
                stats.record(hit=False)
            return engine

    def install(self, engine: "BatchedEngine") -> None:
        """Seed the cache with an already compiled engine.

        Worker processes that compile against shared-memory weight
        planes install the result here, so every later content-equal
        lookup (``get``) hits without decoding a private plane copy.
        """
        key = (engine.fingerprint, bool(engine.check_widths))
        with self._lock:
            self._engines[key] = engine
            self._engines.move_to_end(key)
            while len(self._engines) > self.capacity:
                self._engines.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._engines.clear()


# -- compiled engine -------------------------------------------------------------
@dataclass(frozen=True)
class CompiledOp:
    """One compiled layer: its kernel closure plus shape bookkeeping."""

    name: str
    kind: str
    kernel: Callable[[np.ndarray, bool], np.ndarray]
    out_shape: tuple


class BatchedEngine:
    """Compiled batched executor for one deployed MF-DFP network.

    Compilation walks the op list once, decoding weights through
    :data:`SHIFT_LUT` and building gather-index tables; :meth:`run_codes`
    then streams ``(N, ...)`` batches through the kernel closures.
    Outputs are bit-identical to :func:`execute_deployed` for every batch
    size (integer arithmetic is exact, so batching cannot change values).

    Args:
        deployed: The frozen network to compile.
        check_widths: Verify accumulator wire widths on every run
            (slower; used by the verification tests).
        weight_planes: Optional ``{op_index: decoded plane}`` mapping
            (see :func:`decode_weight_plane`).  Ops present in the map
            compile against the given plane — typically a read-only
            view into a :class:`repro.parallel.SharedWeightArena`
            segment — instead of decoding their own copy; absent ops
            decode as usual.
    """

    def __init__(
        self,
        deployed: DeployedMFDFP,
        check_widths: bool = False,
        weight_planes: Optional[dict] = None,
    ):
        if not deployed.ops:
            raise ValueError("cannot compile an empty deployed network")
        self.deployed = deployed
        self.check_widths = check_widths
        self.shared_planes = bool(weight_planes)
        self.input_shape = tuple(deployed.input_shape)
        self.input_fmt = DFPFormat(deployed.bits, deployed.input_frac)
        self.program: list[CompiledOp] = []
        shape = self.input_shape
        for i, op in enumerate(deployed.ops):
            plane = weight_planes.get(i) if weight_planes else None
            if plane is not None:
                kernel, shape = _handler(op.kind).compile(op, shape, plane)
            else:
                kernel, shape = _handler(op.kind).compile(op, shape)
            self.program.append(CompiledOp(op.name, op.kind, kernel, shape))
        self.output_shape = shape
        self._out_scale = 2.0 ** (-deployed.ops[-1].out_frac)
        self._fingerprint: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the compiled network (lazy, cached).

        Equal fingerprints mean the engines were compiled from
        bit-identical artifacts and therefore compute the same function;
        :class:`EngineCache` uses it as the cache key.
        """
        if self._fingerprint is None:
            self._fingerprint = engine_fingerprint(self.deployed)
        return self._fingerprint

    # -- execution ---------------------------------------------------------
    def run_codes(self, x: np.ndarray) -> np.ndarray:
        """Quantize a float batch and return integer output codes."""
        x = np.asarray(x)
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected batch of shape (N, {', '.join(map(str, self.input_shape))}), "
                f"got {x.shape}"
            )
        codes = dfp_to_codes(x, self.input_fmt)
        for op in self.program:
            codes = op.kernel(codes, self.check_widths)
        return codes

    def run(self, x: np.ndarray) -> np.ndarray:
        """Batched inference; returns float logits (codes × output grid)."""
        return self.run_codes(x).astype(np.float64) * self._out_scale

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over the last compute op's outputs)."""
        return np.argmax(self.run_codes(x), axis=1)

    # -- introspection -----------------------------------------------------
    def layer_summary(self) -> list[dict]:
        """Per-layer ``{name, kind, out_shape}`` rows of the compiled plan."""
        return [
            {"name": op.name, "kind": op.kind, "out_shape": op.out_shape}
            for op in self.program
        ]

    def __repr__(self) -> str:
        return (
            f"BatchedEngine({self.deployed.name}, {len(self.program)} ops, "
            f"in={self.input_shape}, out={self.output_shape})"
        )
