"""MF-DFP network wrapper and the deployable integer-only artifact.

:class:`MFDFPNetwork` pairs a float network with an attached quantization
plan: forward passes see power-of-two weights and 8-bit DFP activations
while the optimizer updates the floating-point master copy (the shadow
weights of Courbariaux et al. used by Algorithm 1).

:func:`deploy` freezes an MF-DFP network into a :class:`DeployedMFDFP` —
pure integer tensors (4-bit weight codes, accumulator-grid biases, per
layer radix indices ``m``/``n``) that :mod:`repro.core.engine` executes
bit accurately (scalar reference or compiled batched engine), that
:mod:`repro.hw` prices in silicon, and that Table 3's memory accounting
is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.dfp import DFPFormat
from repro.core.pow2 import Pow2WeightQuantizer, pow2_code_fields, pow2_encode4
from repro.core.quantizer import NetworkQuantizer, QuantizationPlan, strip_quantization
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.norm import LocalResponseNorm
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from repro.nn.network import Network


class MFDFPNetwork:
    """A float network running under MF-DFP quantization hooks.

    Build with :meth:`from_float`; train it exactly like a float network
    (the hooks make every forward pass quantized), then :meth:`deploy` it
    for the hardware model.
    """

    def __init__(self, net: Network, plan: QuantizationPlan):
        self.net = net
        self.plan = plan

    @classmethod
    def from_float(
        cls,
        net: Network,
        calibration_x: np.ndarray,
        bits: int = 8,
        min_exp: int = -7,
        max_exp: int = 0,
        weight_mode: str = "deterministic",
        dynamic: bool = True,
        margin: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> "MFDFPNetwork":
        """Algorithm 1 line 2: quantize a trained float network in place."""
        quantizer = NetworkQuantizer(
            bits=bits,
            min_exp=min_exp,
            max_exp=max_exp,
            weight_mode=weight_mode,
            dynamic=dynamic,
            margin=margin,
            rng=rng,
        )
        plan = quantizer.quantize(net, calibration_x)
        return cls(net, plan)

    # -- delegation --------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.net.forward(x, training=training)

    def logits(self, x: np.ndarray) -> np.ndarray:
        return self.net.logits(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.net.predict(x)

    @property
    def params(self):
        return self.net.params

    # -- quantized views ---------------------------------------------------
    def quantized_weights(self) -> dict[str, np.ndarray]:
        """Power-of-two weights as the forward pass sees them."""
        out = {}
        for layer in self.net.layers:
            w = layer.effective_weight()
            if w is not None:
                out[layer.name] = w
        return out

    def calibrate_bias_to_accumulator_grid(self) -> None:
        """Snap master biases onto the hardware accumulator grid.

        The accelerator adds biases as integers at scale ``2^-(m+7)``
        (input fraction ``m`` plus the 7 product bits).  Snapping the
        master biases to that grid makes the float simulation and the
        integer datapath agree exactly.
        """
        for layer in self.net.layers:
            if isinstance(layer, (Conv2D, Dense)) and layer.bias is not None:
                spec = self.plan.spec(layer.name)
                scale = 2.0 ** (spec.in_fmt.frac + 7)
                layer.bias.data = (np.rint(layer.bias.data * scale) / scale).astype(
                    layer.bias.data.dtype
                )

    def to_float(self) -> Network:
        """Strip hooks and return the underlying float network."""
        return strip_quantization(self.net)

    def deploy(self) -> "DeployedMFDFP":
        """Freeze into the integer-only artifact (see :func:`deploy`)."""
        return deploy(self.net, self.plan)


def deploy_calibrated(
    net: Network, calibration_x: np.ndarray, **from_float_kwargs
) -> "DeployedMFDFP":
    """Quantize a float network and freeze it, ready to serve.

    The standard deployment recipe in one call: attach MF-DFP hooks
    (:meth:`MFDFPNetwork.from_float`, forwarding ``from_float_kwargs``),
    snap biases onto the hardware accumulator grid, and
    :meth:`~MFDFPNetwork.deploy` to the integer artifact.  Used by the
    zoo's serving entry points; fine-tuning flows keep the explicit
    step-by-step form.
    """
    mfdfp = MFDFPNetwork.from_float(net, calibration_x, **from_float_kwargs)
    mfdfp.calibrate_bias_to_accumulator_grid()
    return mfdfp.deploy()


@dataclass
class DeployedLayer:
    """One operation of a deployed MF-DFP network.

    ``kind`` is one of ``conv``, ``dense``, ``maxpool``, ``avgpool``,
    ``flatten``.  Compute layers carry 4-bit weight codes, integer biases
    on the accumulator grid ``2^-(m+7)``, the radix indices ``m`` (input
    fraction length) and ``n`` (output fraction length), and the fused
    activation (``relu`` or ``none``).
    """

    kind: str
    name: str
    in_frac: int
    out_frac: int
    weight_codes: Optional[np.ndarray] = None
    bias_int: Optional[np.ndarray] = None
    activation: str = "none"
    # conv geometry
    in_channels: int = 0
    out_channels: int = 0
    kernel_size: int = 0
    stride: int = 1
    pad: int = 0
    groups: int = 1
    ceil_mode: bool = True
    # dense geometry
    in_features: int = 0
    out_features: int = 0

    @property
    def m(self) -> int:
        """Input radix index (paper's ``m`` control signal)."""
        return self.in_frac

    @property
    def n(self) -> int:
        """Output radix index (paper's ``n`` control signal)."""
        return self.out_frac

    def weight_fields(self) -> tuple[np.ndarray, np.ndarray]:
        """Signs (±1) and exponents (≤0) decoded from the 4-bit codes."""
        if self.weight_codes is None:
            raise ValueError(f"{self.name} has no weights")
        return pow2_code_fields(self.weight_codes)

    def weight_count(self) -> int:
        return 0 if self.weight_codes is None else int(self.weight_codes.size)

    def bias_count(self) -> int:
        return 0 if self.bias_int is None else int(self.bias_int.size)


@dataclass
class DeployedMFDFP:
    """A frozen MF-DFP network: integer tensors plus radix bookkeeping."""

    name: str
    input_shape: tuple
    input_frac: int
    bits: int
    ops: list[DeployedLayer] = field(default_factory=list)

    def compute_ops(self) -> list[DeployedLayer]:
        """Only the conv/dense operations (the NPU workload)."""
        return [op for op in self.ops if op.kind in ("conv", "dense")]

    def parameter_count(self) -> int:
        """Total weights + biases, matching the float network's count."""
        return sum(op.weight_count() + op.bias_count() for op in self.ops)

    def weight_memory_bytes(self, bits_per_weight: int = 4) -> float:
        """Parameter storage in bytes at ``bits_per_weight`` per parameter.

        Table 3 of the paper counts every parameter at 4 bits for MF-DFP
        and 32 bits for the float baseline.
        """
        return self.parameter_count() * bits_per_weight / 8.0

    def weight_memory_mb(self, bits_per_weight: int = 4) -> float:
        """Parameter storage in MB (2^20 bytes), as reported in Table 3."""
        return self.weight_memory_bytes(bits_per_weight) / float(1 << 20)


def _fold_activation(layers, i) -> tuple[str, int]:
    """Fuse a following ReLU into the compute op; returns (act, skip)."""
    if i + 1 < len(layers) and isinstance(layers[i + 1], ReLU):
        return "relu", 1
    return "none", 0


def deploy(net: Network, plan: QuantizationPlan) -> DeployedMFDFP:
    """Freeze a quantized network into integer-only form.

    Dropout layers vanish (identity at inference); ReLU layers fuse into
    the preceding compute op.  Tanh/Sigmoid/LRN are rejected: the
    multiplier-free accelerator does not implement them (the paper removes
    LRN layers for exactly this reason).
    """
    if net.input_shape is None:
        raise ValueError("deploy requires a network built with input_shape")
    deployed = DeployedMFDFP(
        name=net.name,
        input_shape=tuple(net.input_shape),
        input_frac=plan.input_fmt.frac,
        bits=plan.bits,
    )
    layers = net.layers
    i = 0
    while i < len(layers):
        layer = layers[i]
        spec = plan.spec(layer.name)
        if isinstance(layer, (Conv2D, Dense)):
            if not spec.quantize_weights:
                raise ValueError(
                    f"layer {layer.name!r} keeps float weights (skip_weight_layers); "
                    "the multiplier-free accelerator cannot execute it"
                )
            if layer.weight_quantizer is not None and not isinstance(
                layer.weight_quantizer, Pow2WeightQuantizer
            ):
                raise ValueError(
                    f"layer {layer.name!r} uses {type(layer.weight_quantizer).__name__}; "
                    "only power-of-two weights deploy to the multiplier-free accelerator"
                )
            act, skip = _fold_activation(layers, i)
            out_spec = plan.spec(layers[i + skip].name)
            acc_scale = 2.0 ** (spec.in_fmt.frac + 7)
            bias_int = None
            if layer.bias is not None:
                bias_int = np.rint(np.asarray(layer.bias.data, dtype=np.float64) * acc_scale).astype(
                    np.int64
                )
            op = DeployedLayer(
                kind="conv" if isinstance(layer, Conv2D) else "dense",
                name=layer.name,
                in_frac=spec.in_fmt.frac,
                out_frac=out_spec.out_fmt.frac,
                weight_codes=pow2_encode4(layer.weight.data, plan.min_exp, plan.max_exp),
                bias_int=bias_int,
                activation=act,
            )
            if isinstance(layer, Conv2D):
                op.in_channels = layer.in_channels
                op.out_channels = layer.out_channels
                op.kernel_size = layer.kernel_size
                op.stride = layer.stride
                op.pad = layer.pad
                op.groups = layer.groups
            else:
                op.in_features = layer.in_features
                op.out_features = layer.out_features
            deployed.ops.append(op)
            i += 1 + skip
            continue
        if isinstance(layer, (MaxPool2D, AvgPool2D)):
            op = DeployedLayer(
                kind="maxpool" if isinstance(layer, MaxPool2D) else "avgpool",
                name=layer.name,
                in_frac=spec.in_fmt.frac,
                out_frac=spec.out_fmt.frac,
                kernel_size=layer.kernel_size,
                stride=layer.stride,
                pad=layer.pad,
                ceil_mode=layer.ceil_mode,
            )
            deployed.ops.append(op)
        elif isinstance(layer, Flatten):
            deployed.ops.append(
                DeployedLayer(
                    kind="flatten",
                    name=layer.name,
                    in_frac=spec.in_fmt.frac,
                    out_frac=spec.in_fmt.frac,
                )
            )
        elif isinstance(layer, Dropout):
            pass  # identity at inference
        elif isinstance(layer, (Tanh, Sigmoid, LocalResponseNorm)):
            raise ValueError(
                f"layer {layer.name!r} ({type(layer).__name__}) is not supported by the "
                "multiplier-free accelerator; remove it before deployment"
            )
        elif isinstance(layer, ReLU):
            raise ValueError(
                f"unfused ReLU {layer.name!r}: ReLU must directly follow a conv/dense layer"
            )
        else:
            raise ValueError(f"cannot deploy layer type {type(layer).__name__}")
        i += 1
    return deployed
