"""Experiment-campaign throughput: parallel batched runner vs serial eager.

The ablation sweeps and fault studies used to evaluate every point
through the eager paths — ``error_rate`` over the quantized simulation
for sweeps, per-point ``copy.deepcopy`` plus eager ``execute_deployed``
for fault curves.  ``repro.analysis.campaign`` routes every evaluation
through the shared batched API instead (compiled
:class:`~repro.core.engine.BatchedEngine` behind one content-addressed
cache, structure-sharing fault copies) and fans points out over a thread
pool.

Two properties are gated here, matching the PR's acceptance criteria:

* **speedup** — the parallel batched fault campaign must deliver at
  least 4x the samples/sec of the serial eager baseline (deepcopy +
  whole-batch ``execute_deployed`` per point, the pre-refactor
  implementation; the per-sample variant a naive study would run is
  also printed for context),
* **bit identity** — ``bitwidth_sweep`` results must equal the
  old-style serial ``error_rate`` evaluation exactly, and
  ``accuracy_under_faults`` must equal eager execution of the very same
  corrupted networks exactly, for any ``jobs``.
"""

import copy
import time

import numpy as np
import pytest

from repro.analysis.campaign import DEFAULT_POINTS, EngineCache, run_campaign
from repro.analysis.faults import _point_rng, accuracy_under_faults, inject_weight_faults
from repro.analysis.sweeps import bitwidth_sweep
from repro.core.engine import execute_deployed
from repro.core.mfdfp import MFDFPNetwork, deploy_calibrated
from repro.datasets import cifar10_surrogate
from repro.nn import SGD, Trainer, error_rate
from repro.zoo import cifar10_small

BERS = (0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1)
JOBS = 4
GATE = 4.0


@pytest.fixture(scope="module")
def problem(quick):
    """A lightly trained surrogate net, its deployed artifact, and data."""
    n_train, n_test, epochs = (128, 48, 1) if quick else (512, 128, 4)
    train, test = cifar10_surrogate(n_train=n_train, n_test=n_test, size=16, seed=5)
    net = cifar10_small(size=16, rng=np.random.default_rng(17))
    Trainer(
        net,
        SGD(net.params, lr=0.02, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(11),
    ).fit(train, test, epochs=epochs)
    deployed = deploy_calibrated(net.clone(), train.x[:128])
    return {"net": net, "train": train, "test": test, "deployed": deployed}


def _serial_eager_faults(deployed, x, y, seed=0, per_sample=False):
    """The pre-refactor fault curve: deepcopy + eager execution per point.

    Shares the campaign's per-point child-generator derivation so both
    paths corrupt identical bits — the comparison isolates the
    evaluation machinery.
    """
    rng = np.random.default_rng(seed)
    entropy = int(rng.integers(0, 2**63))
    points = []
    for ber in BERS:
        target = copy.deepcopy(deployed)  # the old implementation's copy cost
        result = inject_weight_faults(target, ber, _point_rng(entropy, ber))
        if per_sample:
            codes = np.concatenate(
                [execute_deployed(result.faulty, x[i : i + 1]) for i in range(len(x))]
            )
        else:
            codes = execute_deployed(result.faulty, x)
        points.append((float(ber), float((codes.argmax(axis=1) == y).mean())))
    return points


def _parallel_batched_faults(deployed, x, y, seed=0, jobs=JOBS):
    """The campaign path, cold engine cache per run (compiles included)."""
    return accuracy_under_faults(
        deployed,
        x,
        y,
        BERS,
        rng=np.random.default_rng(seed),
        jobs=jobs,
        cache=EngineCache(capacity=len(BERS) + 1),
    )


def _best_time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_serial_eager_baseline(problem, benchmark):
    test = problem["test"]
    points = benchmark(_serial_eager_faults, problem["deployed"], test.x, test.y)
    assert len(points) == len(BERS)


def test_bench_parallel_batched_campaign(problem, benchmark):
    test = problem["test"]
    points = benchmark(_parallel_batched_faults, problem["deployed"], test.x, test.y)
    assert len(points) == len(BERS)


def test_bitwidth_sweep_identical_to_eager_serial(problem):
    """The refactored (batched, parallel) sweep returns the exact floats
    the old serial ``error_rate`` evaluation produced."""
    net, train, test = problem["net"], problem["train"], problem["test"]
    calib = train.x[:128]
    widths = (4, 8, 16)
    swept = bitwidth_sweep(net, calib, test, bit_widths=widths, jobs=JOBS)
    for point, bits in zip(swept, widths):
        mf = MFDFPNetwork.from_float(net.clone(), calib, bits=bits, min_exp=-(bits - 1))
        assert point.error_rate == error_rate(mf.net, test), f"{bits}-bit point drifted"


def test_fault_campaign_identical_for_any_jobs(problem):
    """Serial eager, serial batched, and parallel batched all agree bitwise."""
    test = problem["test"]
    eager = _serial_eager_faults(problem["deployed"], test.x, test.y)
    serial = _parallel_batched_faults(problem["deployed"], test.x, test.y, jobs=1)
    parallel = _parallel_batched_faults(problem["deployed"], test.x, test.y, jobs=JOBS)
    assert eager == serial == parallel


def test_campaign_runner_matches_direct_call(problem):
    """`run_campaign` is a thin veneer: same points, honest accounting."""
    test = problem["test"]
    cache = EngineCache(capacity=len(BERS) + 1)
    result = run_campaign(
        "faults",
        deployed=problem["deployed"],
        x=test.x,
        y=test.y,
        jobs=2,
        rng=np.random.default_rng(0),
        cache=cache,
    )
    direct = accuracy_under_faults(
        problem["deployed"],
        test.x,
        test.y,
        DEFAULT_POINTS["faults"],
        rng=np.random.default_rng(0),
    )
    assert result.points == direct
    assert result.cache_hits + result.cache_misses >= len(result.points)


def test_campaign_4x_serial_eager_baseline(problem, full_only, bench_metrics):
    """Acceptance gate: >= 4x the serial eager baseline, identical points."""
    test = problem["test"]
    deployed = problem["deployed"]
    n_points = len(BERS)

    campaign_points = _parallel_batched_faults(deployed, test.x, test.y)
    eager_points = _serial_eager_faults(deployed, test.x, test.y)
    assert campaign_points == eager_points  # the gate compares equal work

    _parallel_batched_faults(deployed, test.x, test.y)  # warm BLAS/allocator
    eager_s = _best_time(lambda: _serial_eager_faults(deployed, test.x, test.y))
    scalar_s = _best_time(
        lambda: _serial_eager_faults(deployed, test.x, test.y, per_sample=True), repeats=2
    )
    campaign_s = _best_time(lambda: _parallel_batched_faults(deployed, test.x, test.y))
    speedup = eager_s / campaign_s
    bench_metrics.update(
        {
            "points": n_points,
            "samples": len(test.x),
            "eager_batch_points_per_s": round(n_points / eager_s, 2),
            "parallel_batched_points_per_s": round(n_points / campaign_s, 2),
            "speedup": round(speedup, 2),
            "gate": GATE,
        }
    )
    print(
        f"\n{n_points}-point fault campaign on {len(test.x)} samples: "
        f"eager/sample {n_points / scalar_s:.1f} pts/s, "
        f"eager/batch {n_points / eager_s:.1f} pts/s, "
        f"parallel batched {n_points / campaign_s:.1f} pts/s "
        f"({speedup:.1f}x vs eager/batch, {scalar_s / campaign_s:.1f}x vs eager/sample)"
    )
    assert speedup >= GATE, f"campaign only {speedup:.2f}x over the serial eager baseline"
