"""Table 1: design area and power of the accelerator configurations.

Regenerates the paper's Table 1 (65 nm synthesis, 250 MHz):

    Floating-point(32,32)  16.52 mm2  1361.61 mW       0%      0%
    Proposed MF-DFP(8,4)    1.99 mm2   138.96 mW   87.97%  89.79%
    Ens. MF-DFP(8,4)        3.96 mm2   270.27 mW   76.00%  80.15%

The FP32 row anchors the model's calibration; the MF-DFP rows are model
predictions (see repro/hw/cost.py).  The benchmark times a full cost-model
evaluation.
"""

import pytest

from repro.hw.cost import CostModel
from repro.report import format_table, table1_rows


@pytest.fixture(scope="module")
def rows():
    return table1_rows()


def test_print_table1(rows, capsys, benchmark):
    benchmark(table1_rows)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Table 1: design metrics (measured vs paper)"))


def test_table1_savings_bands(rows):
    fp, mf, ens = rows
    assert fp.area_saving_pct == pytest.approx(0.0)
    assert 85.0 < mf.area_saving_pct < 91.0   # paper: 87.97
    assert 87.0 < mf.power_saving_pct < 92.0  # paper: 89.79
    assert 72.0 < ens.area_saving_pct < 80.0  # paper: 76.00
    assert 77.0 < ens.power_saving_pct < 83.0  # paper: 80.15


def test_bench_cost_model_evaluation(benchmark):
    """Time one full cost evaluation of all three designs."""
    model = CostModel()

    def evaluate_all():
        return [
            model.evaluate("fp32", 1),
            model.evaluate("mfdfp", 1),
            model.evaluate("mfdfp", 2),
        ]

    results = benchmark(evaluate_all)
    assert len(results) == 3


def test_bench_cost_model_construction(benchmark):
    """Time model construction including baseline calibration."""
    model = benchmark(CostModel)
    assert model.area_calibration > 0
