"""Serving SLO gates: sustained-load p99, zero-drop rollover, crash isolation.

``bench_serve_concurrency`` gates raw throughput; this file gates the
*supervised* runtime's behavioural contracts under load:

* **Sustained-load p99** — a paced open-loop stream (bounded in-flight
  window, ~half the machine's measured capacity) against the adaptive
  batcher must keep the served p99 under the configured SLO target.
  The latency gate itself is ``full_only`` (wall-clock numbers mean
  nothing on a loaded smoke machine); the pacing loop and its
  exactly-once accounting run in ``--quick`` too.
* **Rollover under load** — ``rollover()`` fired mid-stream between two
  store-published versions must drop nothing: every future resolves,
  each is bit-identical to the engine of whichever version served it
  (the future's ``serving_version`` says which), and both versions
  actually serve traffic.
* **Crash isolation** — scheduled crashes injected into one model's
  engine must leave the other model's stream untouched (every response
  bit-identical, zero failures) while the crashed model restarts and
  keeps serving.

Measured numbers land in ``benchmarks/BENCH_serve_slo.json`` on full
runs via the shared ``bench_metrics`` fixture.
"""

import time

import numpy as np
import pytest

from repro.io.store import ArtifactStore
from repro.serve import (
    CrashError,
    CrashingEngine,
    ModelRegistry,
    ServerRuntime,
    SupervisorPolicy,
)
from repro.zoo import alexnet_deployable, cifar10_full_deployable

#: Served-latency SLO for the sustained-load gate: generous (~50x) over
#: the size-8 artifact's per-batch cost, tight against real regressions
#: (an engine recompile per batch or a lost-wakeup stall blows through it).
TARGET_P99_S = 0.05
WINDOW = 32  # in-flight requests per pacing wave


@pytest.fixture(scope="module")
def model_versions():
    """Two distinct deployable builds of cifar10_full (seed 0 vs seed 1)."""
    return {
        "v1": cifar10_full_deployable(size=8, seed=0),
        "v2": cifar10_full_deployable(size=8, seed=1),
    }


def _paced_stream(runtime, name, requests):
    """Open-loop in waves: at most WINDOW requests in flight at once."""
    futures = []
    start = time.perf_counter()
    for lo in range(0, len(requests), WINDOW):
        wave = [runtime.submit(name, s) for s in requests[lo : lo + WINDOW]]
        futures.extend(wave)
        for future in wave:
            future.result(timeout=120)
    return time.perf_counter() - start, futures


class TestSustainedLoadP99:
    @pytest.fixture(scope="class")
    def stream_registry(self):
        registry = ModelRegistry()
        registry.register("cifar10_full", lambda: cifar10_full_deployable(size=8))
        registry.engine("cifar10_full")  # compile outside any timed region
        return registry

    def _runtime(self, registry):
        return ServerRuntime(
            registry,
            ["cifar10_full"],
            workers=2,
            max_batch=WINDOW,
            max_queue=10_000,
            target_p99_s=TARGET_P99_S,
        )

    def test_paced_stream_accounting_is_exact(self, stream_registry, quick):
        """Quick-safe: the pacing loop loses and double-serves nothing."""
        n = 64 if quick else 512
        rng = np.random.default_rng(5)
        shape = stream_registry.engine("cifar10_full").input_shape
        requests = rng.normal(scale=0.5, size=(n,) + shape).astype(np.float32)
        runtime = self._runtime(stream_registry)
        with runtime:
            _, futures = _paced_stream(runtime, "cifar10_full", requests)
        assert len(futures) == n and all(f.exception(timeout=0) is None for f in futures)
        metrics = runtime.metrics("cifar10_full")
        assert metrics.submitted == metrics.completed == n
        assert metrics.rejected == 0 and metrics.crashed == 0
        assert metrics.queue_depth == 0

    def test_sustained_p99_meets_target(self, stream_registry, full_only, bench_metrics):
        """Acceptance gate: served p99 under the SLO target, sustained."""
        n = 2048
        rng = np.random.default_rng(6)
        shape = stream_registry.engine("cifar10_full").input_shape
        requests = rng.normal(scale=0.5, size=(n,) + shape).astype(np.float32)
        runtime = self._runtime(stream_registry)
        with runtime:
            _paced_stream(runtime, "cifar10_full", requests[:WINDOW])  # warm
            elapsed, futures = _paced_stream(runtime, "cifar10_full", requests)
        snap = runtime.metrics("cifar10_full").snapshot()
        p99_ms = 1e3 * snap["latency_p99_s"]
        rps = n / elapsed
        slo = runtime.health()["models"]["cifar10_full"]["slo"]
        print(
            f"\nsustained {rps:.0f} req/s over {n} requests: "
            f"p50 {1e3 * snap['latency_p50_s']:.2f} ms, p99 {p99_ms:.2f} ms "
            f"(target {1e3 * TARGET_P99_S:.0f} ms, recent window met={slo['met']})"
        )
        bench_metrics["sustained_rps"] = round(rps, 1)
        bench_metrics["sustained_p99_ms"] = round(p99_ms, 3)
        bench_metrics["target_p99_ms"] = 1e3 * TARGET_P99_S
        assert len(futures) == n
        assert snap["latency_p99_s"] <= TARGET_P99_S, (
            f"sustained p99 {p99_ms:.2f} ms blew the {1e3 * TARGET_P99_S:.0f} ms SLO"
        )


class TestRolloverUnderLoad:
    def test_zero_drops_and_per_version_bit_identity(
        self, model_versions, tmp_path, quick, bench_metrics
    ):
        from repro.core.engine import BatchedEngine

        per_phase = 32 if quick else 512
        store = ArtifactStore(tmp_path / "store")
        assert store.publish_deployed("cifar10_full", model_versions["v1"]) == 1
        registry = ModelRegistry.from_store(store)
        references = {
            "v0001": BatchedEngine(model_versions["v1"]),
            "v0002": BatchedEngine(model_versions["v2"]),
        }
        shape = references["v0001"].input_shape
        rng = np.random.default_rng(7)
        requests = rng.normal(scale=0.5, size=(2 * per_phase,) + shape).astype(np.float32)

        runtime = ServerRuntime(
            registry, ["cifar10_full"], workers=2, max_batch=16, max_queue=10_000
        ).start()
        plan = []
        anchored = per_phase // 2
        start = time.perf_counter()
        for i in range(per_phase):  # old version serving, backlog live
            plan.append((i, runtime.submit("cifar10_full", requests[i])))
        for _, future in plan[:anchored]:
            future.result(timeout=120)  # guaranteed served by the old version
        # The new version is published and swapped in mid-stream.
        assert store.publish_deployed("cifar10_full", model_versions["v2"]) == 2
        label = runtime.rollover("cifar10_full")  # hot swap, backlog in flight
        for i in range(per_phase, 2 * per_phase):
            plan.append((i, runtime.submit("cifar10_full", requests[i])))
        runtime.stop(drain=True)
        elapsed = time.perf_counter() - start

        assert label == "v0002"
        served_by = {"v0001": 0, "v0002": 0}
        for i, future in plan:
            assert future.done(), f"request {i} dropped"
            assert future.exception(timeout=0) is None, f"request {i} failed"
            version = future.serving_version
            expected = references[version].run(requests[i][None])[0]
            assert np.array_equal(future.result(timeout=0), expected), (i, version)
            served_by[version] += 1
        # The swap happened mid-stream: the anchored prefix ran on the old
        # version, everything submitted after the swap on the new one.
        assert served_by["v0001"] >= anchored and served_by["v0002"] >= per_phase
        metrics = runtime.metrics("cifar10_full")
        assert metrics.completed == 2 * per_phase and metrics.queue_depth == 0
        assert runtime.health()["models"]["cifar10_full"]["active_version"] == "v0002"
        bench_metrics["rollover_requests"] = 2 * per_phase
        bench_metrics["rollover_dropped"] = 0
        bench_metrics["rollover_rps"] = round(2 * per_phase / elapsed, 1)


class TestCrashIsolation:
    def test_injected_crashes_never_touch_the_healthy_model(self, quick, bench_metrics):
        from repro.core.engine import BatchedEngine

        per_model = 48 if quick else 384
        registry = ModelRegistry()
        registry.register("cifar10_full", lambda: cifar10_full_deployable(size=8))
        registry.register("alexnet", lambda: alexnet_deployable(size=8))
        real = {name: registry.engine(name) for name in ("cifar10_full", "alexnet")}
        # Crash calls 2 and 5: with max_batch=8 even the --quick stream
        # (48 requests => >= 6 claims) is guaranteed to hit both.
        flaky = CrashingEngine(real["cifar10_full"], crash_on={2, 5})

        def provider(name, version):
            if name == "cifar10_full":
                return flaky, "flaky-v1"
            return real[name], "solid-v1"

        runtime = ServerRuntime(
            registry,
            ["cifar10_full", "alexnet"],
            workers=2,
            max_batch=8,
            max_queue=10_000,
            engine_provider=provider,
            policy=SupervisorPolicy(
                max_failures=20, backoff_initial_s=0.001, backoff_cap_s=0.01
            ),
        ).start()
        rng = np.random.default_rng(8)
        samples = {
            name: rng.normal(
                scale=0.5, size=(per_model,) + real[name].input_shape
            ).astype(np.float32)
            for name in real
        }
        futures = {
            name: [runtime.submit(name, s) for s in samples[name]] for name in real
        }
        runtime.stop(drain=True)

        # Healthy model: untouched — every response exact, zero failures.
        expected_b = real["alexnet"].run(samples["alexnet"])
        for i, future in enumerate(futures["alexnet"]):
            assert np.array_equal(future.result(timeout=0), expected_b[i]), i
        # Crashing model: failures are only the injected ones, survivors
        # exact, and the actor restarted rather than staying dead.
        ok = crashed = 0
        expected_a = real["cifar10_full"].run(samples["cifar10_full"])
        for i, future in enumerate(futures["cifar10_full"]):
            error = future.exception(timeout=0)
            if error is None:
                assert np.array_equal(future.result(timeout=0), expected_a[i]), i
                ok += 1
            else:
                assert isinstance(error, CrashError)
                crashed += 1
        assert crashed >= 1 and ok >= 1 and ok + crashed == per_model
        health = runtime.health()["models"]
        assert health["alexnet"]["crashes"] == 0
        assert health["cifar10_full"]["crashes"] >= 1
        assert health["cifar10_full"]["restarts"] >= 1
        assert health["cifar10_full"]["state"] == "running"
        bench_metrics["isolation_crashed_requests"] = crashed
        bench_metrics["isolation_served_requests"] = ok
        bench_metrics["isolation_healthy_failures"] = 0
