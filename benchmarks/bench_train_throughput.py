"""Training throughput: compiled fast path vs the seed eager trainer.

Training is the paper's dominant cost (Algorithm 1 is fine-tuning), and
until this PR it ran entirely on the eager layer stack: fresh
im2col/col2im allocations per conv per step, einsum dispatch per GEMM, a
``kh*kw`` Python scatter loop in ``col2im``, re-derived pooling counts,
and full weight requantization on every validation batch.  The compiled
training fast path (:mod:`repro.nn.compiled`) plans workspaces once per
(geometry, batch size) and replays the identical op sequence through
``out=`` kernels.

Two properties are gated here, matching the PR's acceptance criteria:

* **speedup** — steady-state MF-DFP fine-tuning through
  ``Trainer(compiled=True)`` must deliver at least 2x the samples/sec
  of the *seed* eager trainer.  The seed baseline is reconstructed
  inline below (the pre-PR ``col2im`` tap loop, per-forward pooling
  count rebuilds, tuple-indexed maxpool scatter, allocating dense bias
  add) the same way ``bench_campaign_throughput.py`` reconstructs its
  pre-refactor baseline; the current (post-satellite) eager stack is
  also timed for context.
* **bit identity** — the loss/val-error curve and the final master
  weights of a fixed-seed fine-tune must be *exactly* equal across the
  seed layers, the current eager stack, and the compiled fast path.
  The training set size is divisible by the batch size so the seed
  trainer's unweighted batch-loss mean coincides with the exact sample
  mean the fixed trainer reports.
"""

import time

import numpy as np
import pytest

from repro.core.mfdfp import MFDFPNetwork
from repro.datasets import cifar10_surrogate
from repro.nn import SGD, Trainer
from repro.nn.layers.conv import Conv2D, conv_output_size
from repro.nn.layers.dense import Dense
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from repro.zoo import cifar10_small

BATCH = 32
GATE = 2.0
FINETUNE_LR = 5e-3


# -- the seed eager implementations, reconstructed for the baseline --------------
def _seed_col2im(cols, x_shape, kh, kw, stride, pad):
    """The pre-PR col2im: a kh*kw Python loop of strided adds."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    dx = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols[
                :, :, i, j
            ]
    if pad:
        dx = dx[:, :, pad : hp - pad, pad : wp - pad]
    return dx


class _SeedConv2D(Conv2D):
    def backward(self, grad):
        x_shape, cols_g, w_mat = self._cache
        n = grad.shape[0]
        k, s, p = self.kernel_size, self.stride, self.pad
        g = self.groups
        gr = grad.reshape(n, g, self.out_channels // g, -1)
        dw = np.einsum("ngfp,ngkp->gfk", gr, cols_g, optimize=True)
        self.weight.grad = dw.reshape(self.weight.data.shape).astype(self.weight.data.dtype)
        if self.bias is not None:
            self.bias.grad = gr.sum(axis=(0, 3)).reshape(-1).astype(self.bias.data.dtype)
        dcols = np.einsum("gfk,ngfp->ngkp", w_mat, gr, optimize=True)
        dcols = dcols.reshape(n, -1, dcols.shape[-1])
        return _seed_col2im(dcols, x_shape, k, k, s, p)


class _SeedMaxPool2D(MaxPool2D):
    def backward(self, grad):
        x_shape, xp_shape, arg, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.pad
        ki, kj = arg // k, arg % k
        rows = np.arange(oh)[None, None, :, None] * s + ki
        cols = np.arange(ow)[None, None, None, :] * s + kj
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        dxp = np.zeros(xp_shape, dtype=grad.dtype)
        np.add.at(dxp, (nn, cc, rows, cols), grad)
        return dxp[:, :, p : p + h, p : p + w]


class _SeedAvgPool2D(AvgPool2D):
    def _valid_counts(self, x_shape, oh, ow):
        _, _, h, w = x_shape
        ones = np.ones((1, 1, h, w), dtype=np.float64)
        win, _, _, _ = self._windows(ones, fill=0.0)
        return win.sum(axis=(-1, -2))[0, 0]


class _SeedDense(Dense):
    def forward(self, x):
        w = self.effective_weight()
        y = x @ w.T
        if self.bias is not None:
            y = y + self.bias.data[None, :]
        self._cache = (x, w)
        return self._quantize_output(y)

    def backward(self, grad):
        x, w = self._cache
        self.weight.grad = (grad.T @ x).astype(self.weight.data.dtype)
        if self.bias is not None:
            self.bias.grad = grad.sum(axis=0).astype(self.bias.data.dtype)
        return grad @ w


_SEED_CLASSES = {
    Conv2D: _SeedConv2D,
    MaxPool2D: _SeedMaxPool2D,
    AvgPool2D: _SeedAvgPool2D,
    Dense: _SeedDense,
}


def _seedify(net):
    """Swap layer classes for their seed implementations, in place."""
    for layer in net.layers:
        seed_cls = _SEED_CLASSES.get(type(layer))
        if seed_cls is not None:
            layer.__class__ = seed_cls
    return net


# -- workload --------------------------------------------------------------------
@pytest.fixture(scope="module")
def problem(quick):
    """A pre-trained float surrogate net plus train/test data."""
    n_train, n_test, epochs = (128, 64, 1) if quick else (512, 512, 2)
    train, test = cifar10_surrogate(n_train=n_train, n_test=n_test, size=16, noise=0.7, seed=2)
    net = cifar10_small(size=16, rng=np.random.default_rng(0))
    Trainer(
        net,
        SGD(net.params, lr=0.02, momentum=0.9),
        batch_size=BATCH,
        rng=np.random.default_rng(1),
        compiled=False,
    ).fit(train, test, epochs=epochs)
    return {"net": net, "train": train, "test": test}


def _make_trainer(problem, *, compiled, seed_layers=False):
    """A fresh MF-DFP fine-tuning trainer (the paper's phase-1 workload)."""
    net = problem["net"].clone()
    if seed_layers:
        _seedify(net)
    mfdfp = MFDFPNetwork.from_float(net, problem["train"].x[:256])
    return Trainer(
        mfdfp.net,
        SGD(mfdfp.params, lr=FINETUNE_LR, momentum=0.9),
        batch_size=BATCH,
        rng=np.random.default_rng(3),
        compiled=compiled,
    )


def _finetune(problem, *, compiled, seed_layers=False, epochs=3):
    trainer = _make_trainer(problem, compiled=compiled, seed_layers=seed_layers)
    history = trainer.fit(problem["train"], problem["test"], epochs=epochs)
    return history, trainer.net.get_weights(), trainer


def _steady_epoch_s(problem, variants, epochs=2, repeats=3):
    """Best steady-state epoch seconds per variant, interleaved.

    Each repeat times every variant back to back (warm trainers, trace
    batches excluded), so clock-frequency or load drift hits all
    variants alike instead of biasing whichever was measured last.
    """
    trainers = {}
    for name, kwargs in variants.items():
        trainer = _make_trainer(problem, **kwargs)
        trainer.fit(problem["train"], problem["test"], epochs=1)  # warm / trace
        trainers[name] = trainer
    best = {name: float("inf") for name in variants}
    for _ in range(repeats):
        for name, trainer in trainers.items():
            t0 = time.perf_counter()
            trainer.fit(problem["train"], problem["test"], epochs=epochs)
            best[name] = min(best[name], (time.perf_counter() - t0) / epochs)
    return best


# -- benchmarks ------------------------------------------------------------------
def test_bench_seed_eager_finetune(problem, benchmark):
    history, _, _ = benchmark(_finetune, problem, compiled=False, seed_layers=True, epochs=1)
    assert history.epochs


def test_bench_compiled_finetune(problem, benchmark):
    history, _, _ = benchmark(_finetune, problem, compiled=True, epochs=1)
    assert history.epochs


# -- bit identity ----------------------------------------------------------------
def test_finetune_bit_identical_across_paths(problem):
    """Seed layers, current eager stack, and compiled path: one curve."""
    h_seed, w_seed, _ = _finetune(problem, compiled=False, seed_layers=True)
    h_eager, w_eager, _ = _finetune(problem, compiled=False)
    h_fast, w_fast, tr = _finetune(problem, compiled=True)
    assert tr.executor is not None and tr.executor.plan_count() >= 1

    assert h_seed.train_losses == h_eager.train_losses == h_fast.train_losses
    assert h_seed.val_errors == h_eager.val_errors == h_fast.val_errors
    for name in w_seed:
        assert np.array_equal(w_seed[name], w_fast[name]), f"{name} drifted (compiled)"
        assert np.array_equal(w_seed[name], w_eager[name]), f"{name} drifted (eager)"


def test_quantized_snapshot_served_from_cache(problem):
    """After fit, a quantized snapshot is cache hits, not requantization.

    Two epochs so the evaluation plan is past its eager trace batch: the
    final epoch's validation sweep then runs compiled and leaves the
    cache holding the current masters' quantizations.
    """
    _, _, trainer = _finetune(problem, compiled=True, epochs=2)
    cache = trainer.executor.quant_cache
    misses_before = cache.misses
    snapshot = trainer.quantized_weights()
    assert cache.misses == misses_before  # pure hits
    eager = {
        layer.name: layer.effective_weight()
        for layer in trainer.net.layers
        if layer.effective_weight() is not None
    }
    assert set(snapshot) == set(eager)
    for name in eager:
        assert np.array_equal(snapshot[name], eager[name])


# -- the acceptance gate ---------------------------------------------------------
def test_train_throughput_2x_seed_eager(problem, full_only, bench_metrics):
    """Gate: >= 2x steady-state samples/sec over the seed eager trainer."""
    n_train = len(problem["train"])
    timings = _steady_epoch_s(
        problem,
        {
            "seed": {"compiled": False, "seed_layers": True},
            "eager": {"compiled": False},
            "compiled": {"compiled": True},
        },
    )
    seed_s, eager_s, fast_s = timings["seed"], timings["eager"], timings["compiled"]

    speedup_seed = seed_s / fast_s
    speedup_eager = eager_s / fast_s
    bench_metrics.update(
        {
            "batch_size": BATCH,
            "train_samples": n_train,
            "seed_eager_samples_per_s": round(n_train / seed_s, 1),
            "eager_samples_per_s": round(n_train / eager_s, 1),
            "compiled_samples_per_s": round(n_train / fast_s, 1),
            "speedup_vs_seed_eager": round(speedup_seed, 2),
            "speedup_vs_current_eager": round(speedup_eager, 2),
            "gate": GATE,
        }
    )
    print(
        f"\nMF-DFP fine-tune, batch {BATCH}, {n_train} samples/epoch: "
        f"seed eager {n_train / seed_s:.0f} samples/s, "
        f"current eager {n_train / eager_s:.0f} samples/s, "
        f"compiled {n_train / fast_s:.0f} samples/s "
        f"({speedup_seed:.2f}x vs seed, {speedup_eager:.2f}x vs current)"
    )
    assert speedup_seed >= GATE, (
        f"compiled trainer only {speedup_seed:.2f}x over the seed eager trainer"
    )
