"""Datapath micro-benchmarks: the Section 5 observations in numbers.

* shift-product vs float multiply throughput in the simulator,
* widening adder-tree reduction,
* end-to-end integer layer execution vs the float simulation,
* 4-bit weight encode/decode.
"""

import numpy as np
import pytest

from repro.core.pow2 import pow2_decode4, pow2_encode4
from repro.hw.datapath import adder_tree, shift_product
from repro.hw.neuron import Neuron


@pytest.fixture(scope="module")
def stimuli(quick):
    rng = np.random.default_rng(0)
    n = 1 << 10 if quick else 1 << 14
    return {
        "x": rng.integers(-127, 128, size=(n, 16)),
        "s": rng.choice([-1, 1], size=(n, 16)),
        "e": rng.integers(-7, 1, size=(n, 16)),
        "w_float": rng.normal(scale=0.1, size=(n, 16)),
    }


def test_bench_shift_products(stimuli, benchmark):
    out = benchmark(shift_product, stimuli["x"], stimuli["s"], stimuli["e"])
    assert out.shape == stimuli["x"].shape


def test_bench_adder_tree(stimuli, benchmark):
    products = shift_product(stimuli["x"], stimuli["s"], stimuli["e"])
    out = benchmark(adder_tree, products, False)
    assert out.shape == (products.shape[0],)


def test_bench_adder_tree_with_width_checks(stimuli, benchmark):
    products = shift_product(stimuli["x"], stimuli["s"], stimuli["e"])
    out = benchmark(adder_tree, products, True)
    assert out.shape == (products.shape[0],)


def test_bench_neuron_dot_product(benchmark):
    rng = np.random.default_rng(1)
    neuron = Neuron(check_widths=False)
    x = rng.integers(-127, 128, size=800)
    s = rng.choice([-1, 1], size=800)
    e = rng.integers(-7, 1, size=800)
    out = benchmark(neuron.compute_output, x, s, e, 0, 4, 4, "relu")
    assert -127 <= out <= 127


def test_bench_weight_encode(benchmark, stimuli):
    codes = benchmark(pow2_encode4, stimuli["w_float"])
    assert codes.dtype == np.uint8


def test_bench_weight_decode(benchmark, stimuli):
    codes = pow2_encode4(stimuli["w_float"])
    values = benchmark(pow2_decode4, codes)
    assert values.shape == codes.shape


def test_bench_integer_vs_float_layer(benchmark):
    """Integer conv execution of a deployed layer on a 16x16 batch."""
    from repro.core import MFDFPNetwork
    from repro.hw.accelerator import execute_deployed
    from repro.zoo import cifar10_small

    rng = np.random.default_rng(2)
    net = cifar10_small(size=16, dtype=np.float64)
    calib = rng.normal(size=(16, 3, 16, 16))
    dep = MFDFPNetwork.from_float(net, calib).deploy()
    x = rng.normal(size=(16, 3, 16, 16))
    codes = benchmark(execute_deployed, dep, x)
    assert codes.shape == (16, 10)
