"""Ablations over the design choices Section 4/5 calls out.

* deterministic vs stochastic weight-exponent rounding (the paper found
  deterministic quantization "gives better performance"),
* dynamic vs static fixed point (the paper's motivation for per-layer
  radix points),
* activation bit-width sweep (the paper argues >= 8 bits are needed;
  accuracy should degrade sharply below 8),
* the e >= -7 exponent clamp (vs a wider exponent range).
"""

import numpy as np
import pytest

from repro.core import MFDFPNetwork
from repro.core.quantizer import NetworkQuantizer
from repro.nn import error_rate


@pytest.fixture(scope="module")
def setting(cifar_problem):
    net = cifar_problem["net"]
    test = cifar_problem["test"]
    calib = cifar_problem["train"].x[:256]
    return net, test, calib


def quantized_error(net, calib, test, **kwargs):
    mf = MFDFPNetwork.from_float(net.clone(), calib, **kwargs)
    return error_rate(mf.net, test)


@pytest.fixture(scope="module")
def ablation_results(setting):
    net, test, calib = setting
    float_err = error_rate(net, test)
    results = {"float": float_err}
    results["deterministic"] = quantized_error(net, calib, test, weight_mode="deterministic")
    results["stochastic"] = quantized_error(
        net, calib, test, weight_mode="stochastic", rng=np.random.default_rng(0)
    )
    results["dynamic"] = quantized_error(net, calib, test, dynamic=True)
    results["static"] = quantized_error(net, calib, test, dynamic=False)
    for bits in (4, 6, 8, 12, 16):
        results[f"bits{bits}"] = quantized_error(
            net, calib, test, bits=bits, min_exp=-(bits - 1)
        )
    results["clamp7"] = quantized_error(net, calib, test, min_exp=-7)
    results["clamp15"] = quantized_error(net, calib, test, min_exp=-15)
    return results


def test_print_ablations(ablation_results, capsys, benchmark):
    benchmark(lambda: sorted(ablation_results.values()))
    with capsys.disabled():
        print()
        print("Quantization ablations (CIFAR-surrogate error rate, no fine-tuning)")
        for key, value in ablation_results.items():
            print(f"  {key:>14}: {value:.4f}")


def test_deterministic_not_worse_than_stochastic(ablation_results, full_only):
    """Paper: 'we found that deterministic quantization gives better
    performance'."""
    assert ablation_results["deterministic"] <= ablation_results["stochastic"] + 0.03


def test_dynamic_not_worse_than_static(ablation_results, full_only):
    """Per-layer radix points are the point of dynamic fixed point."""
    assert ablation_results["dynamic"] <= ablation_results["static"] + 0.02


def test_bitwidth_sweep_monotone_trend(ablation_results, full_only):
    """More activation bits cannot hurt much; 4 bits must be clearly worse
    than 8 (the paper's claim that ultra-low precision breaks accuracy)."""
    assert ablation_results["bits8"] <= ablation_results["bits4"]
    assert ablation_results["bits16"] <= ablation_results["bits8"] + 0.03
    assert ablation_results["bits4"] >= ablation_results["bits16"]


def test_8bit_close_to_16bit(ablation_results, full_only):
    """8 bits captures nearly all of the achievable accuracy."""
    assert ablation_results["bits8"] - ablation_results["bits16"] < 0.08


def test_exponent_clamp_costs_little(ablation_results, full_only):
    """e >= -7 (4-bit codes) performs close to a wider exponent range —
    the observation that justifies the paper's 4-bit weight encoding."""
    assert ablation_results["clamp7"] - ablation_results["clamp15"] < 0.05


def test_bench_quantize_network(setting, benchmark):
    """Time one full Quantize_8bit pass (profile + plan + hooks)."""
    net, test, calib = setting

    def quantize():
        clone = net.clone()
        return NetworkQuantizer().quantize(clone, calib)

    plan = benchmark(quantize)
    assert plan.bits == 8
