"""Process scale-out: open-loop Poisson load against shared-memory workers.

The process backend's claim is linear-ish samples/sec scaling with
worker count at **zero** numeric cost: every placement — any number of
workers, fork or spawn — produces byte-identical outputs, because the
workers all execute the same canonical float64 weight planes out of one
shared-memory segment (see ``repro.parallel.arena``).

The load model is a million-request open-loop Poisson stream: arrival
times are exponential inter-arrivals on a *virtual* clock (no sleeping
— the generator is not the bottleneck under test), and the server
drains in micro-batches exactly as the runtime's batcher does: a batch
closes when it holds ``MAX_BATCH`` samples or the next arrival falls
outside the service window.  Batches are submitted open-loop (all in
flight at once) and results gathered at the end.

Gates:

* **always** (and in ``--quick`` smoke mode): bit-identical outputs
  across 1-worker and multi-worker placements, and against the
  in-process reference engine; the publisher decoded each weight plane
  exactly once per host and workers decoded none (segment accounting).
* **full runs only, ≥ 4 cores**: 4 process workers deliver ≥ 2.5x the
  1-worker samples/sec on the million-request stream.
"""

import functools
import os
import time

import numpy as np
import pytest

from repro.core import engine as engine_mod
from repro.core.engine import BatchedEngine, engine_fingerprint
from repro.parallel import ProcessPoolRunner, SharedWeightArena
from repro.parallel import worker as worker_mod
from repro.zoo import cifar10_full_deployable

N_REQUESTS_FULL = 1_000_000
N_REQUESTS_QUICK = 2_000
RATE_HZ = 50_000.0  # open-loop arrival rate of the Poisson stream
WINDOW_S = 0.002  # batcher service window on the virtual clock
MAX_BATCH = 64
SAMPLE_BANK = 512  # distinct request payloads, cycled by arrival index
SCALE_WORKERS = 4
SCALE_GATE = 2.5


@pytest.fixture(scope="module")
def served(quick):
    """One serving-scale artifact + the Poisson-batched request stream."""
    deployed = cifar10_full_deployable(size=8)
    reference = BatchedEngine(deployed)
    rng = np.random.default_rng(23)
    bank = rng.normal(scale=0.5, size=(SAMPLE_BANK,) + reference.input_shape).astype(
        np.float32
    )
    n = N_REQUESTS_QUICK if quick else N_REQUESTS_FULL
    batches = _poisson_batches(n, rng)
    return {
        "deployed": deployed,
        "reference": reference,
        "bank": bank,
        "expected": reference.run(bank),
        "batches": batches,
        "n": n,
    }


def _poisson_batches(n, rng):
    """Open-loop Poisson arrivals, drained into micro-batches.

    Returns a list of ``(start, stop)`` index ranges into the arrival
    order; request ``i`` carries payload ``bank[i % SAMPLE_BANK]``.
    Batch boundaries are a pure function of the arrival times, so every
    placement serves the exact same batches.
    """
    gaps = rng.exponential(1.0 / RATE_HZ, size=n)
    arrivals = np.cumsum(gaps)
    batches = []
    start = 0
    for i in range(1, n + 1):
        full = i - start >= MAX_BATCH
        window_over = i < n and arrivals[i] - arrivals[start] > WINDOW_S
        if full or window_over or i == n:
            batches.append((start, i))
            start = i
    return batches


def _run_placement(served, workers, mp_context=None):
    """Serve the whole stream on ``workers`` processes; returns results + stats."""
    deployed, bank = served["deployed"], served["bank"]
    decodes_before = engine_mod.plane_decode_count()
    fingerprint = engine_fingerprint(deployed)
    with SharedWeightArena() as arena:
        spec = arena.publish(deployed)
        # init_serving pre-installs the model in every worker, so the
        # steady state ships only (fingerprint, batch) per request.
        with ProcessPoolRunner(
            workers,
            mp_context=mp_context,
            initializer=worker_mod.init_serving,
            initargs=(deployed, spec),
        ) as runner:
            start = time.perf_counter()
            futures = []
            for lo, hi in served["batches"]:
                idx = np.arange(lo, hi) % SAMPLE_BANK
                futures.append(
                    runner.submit(
                        functools.partial(worker_mod.run_batch, fingerprint, bank[idx])
                    )
                )
            outputs = [f.result(timeout=600) for f in futures]
            elapsed = time.perf_counter() - start
            stats = runner.call(worker_mod.worker_stats)
        accounting = {
            "segments_created": arena.created,
            "segments_adopted": arena.adopted,
            "host_plane_decodes": engine_mod.plane_decode_count() - decodes_before,
            "worker_plane_decodes": stats["plane_decodes"],
            "worker_attached_segments": stats["attached_segments"],
        }
    return {
        "outputs": np.concatenate(outputs, axis=0),
        "samples_per_sec": served["n"] / elapsed,
        "elapsed_s": elapsed,
        "accounting": accounting,
    }


def test_placements_are_bit_identical(served, quick, bench_metrics):
    """1 worker vs many, fork or not — the numbers never move."""
    one = _run_placement(served, workers=1)
    many = _run_placement(served, workers=2 if quick else SCALE_WORKERS)

    expected = served["expected"]
    idx = np.arange(served["n"]) % SAMPLE_BANK
    assert np.array_equal(one["outputs"], expected[idx])
    assert one["outputs"].tobytes() == many["outputs"].tobytes()

    # Single-mapping invariant: the host (publisher) decoded each plane
    # exactly once; serving workers decoded nothing and mapped the one
    # segment at most once.
    for run in (one, many):
        acc = run["accounting"]
        assert acc["segments_created"] + acc["segments_adopted"] == 1
        assert acc["worker_plane_decodes"] == 0
        assert acc["worker_attached_segments"] == 1
    # (Counting planes below decodes them again, but each placement's
    # accounting was already captured inside _run_placement.)
    weighted_planes = len(
        [op for op in served["deployed"].ops if engine_mod.decode_weight_plane(op) is not None]
    )
    assert one["accounting"]["host_plane_decodes"] == weighted_planes

    bench_metrics["n_requests"] = served["n"]
    bench_metrics["batches"] = len(served["batches"])
    bench_metrics["samples_per_sec_1w"] = round(one["samples_per_sec"], 1)
    bench_metrics["samples_per_sec_multi"] = round(many["samples_per_sec"], 1)


def test_spawn_placement_matches_fork(served, quick):
    """Start method is also not allowed to leak into the numbers."""
    if not quick:
        pytest.skip("placement-identity already covered at full scale above")
    fork = _run_placement(served, workers=2, mp_context="fork")
    spawn = _run_placement(served, workers=2, mp_context="spawn")
    assert fork["outputs"].tobytes() == spawn["outputs"].tobytes()


def test_scaling_gate(served, full_only, bench_metrics):
    """Million-request stream: 4 workers ≥ 2.5x 1 worker samples/sec."""
    if (os.cpu_count() or 1) < SCALE_WORKERS:
        pytest.skip(f"scaling gate needs >= {SCALE_WORKERS} cores")
    one = _run_placement(served, workers=1)
    four = _run_placement(served, workers=SCALE_WORKERS)
    assert four["outputs"].tobytes() == one["outputs"].tobytes()
    speedup = four["samples_per_sec"] / one["samples_per_sec"]
    bench_metrics["scaleout_speedup_4w"] = round(speedup, 2)
    bench_metrics["samples_per_sec_4w"] = round(four["samples_per_sec"], 1)
    print(
        f"\nscale-out: 1w {one['samples_per_sec']:.0f} -> "
        f"4w {four['samples_per_sec']:.0f} samples/s ({speedup:.2f}x)"
    )
    assert speedup >= SCALE_GATE, (
        f"4-worker placement delivered only {speedup:.2f}x the 1-worker "
        f"throughput (gate: {SCALE_GATE}x)"
    )
