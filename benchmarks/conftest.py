"""Shared benchmark fixtures.

The accuracy-bearing benchmarks train on the CIFAR-10 surrogate at
reduced scale (see DESIGN.md, "Substitutions"); training happens once per
session in fixtures, and the ``benchmark`` fixture then times the
measurement step of each experiment.

Every benchmark file also supports a ``--quick`` smoke mode::

    python -m pytest benchmarks/bench_X.py --quick --benchmark-disable -q

Quick mode shrinks the trained fixtures to smoke scale (tiny datasets,
1-2 epochs) and skips the tests marked with the ``full_only`` fixture —
the statistical accuracy bands and wall-clock speedup gates, which are
meaningless on an untrained network or an unwarmed machine.  Everything
else (plumbing, printing, bit-identity assertions) still runs, which is
what ``tests/integration/test_bench_smoke.py`` pins in tier-1 so the
benchmark suite cannot silently rot.

Gate numbers are persisted: any test may write into its file's
``bench_metrics`` dict (a plain ``{key: number-or-string}``), and a full
(non ``--quick``) run dumps each file's dict to
``benchmarks/BENCH_<name>.json`` at session end — the machine-readable
perf trajectory tracked PR-over-PR.  Quick runs never write, so the
tier-1 smoke gate cannot clobber real measurements with smoke numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

#: Per-bench-file metric dicts accumulated over the session.
_BENCH_METRICS: dict[str, dict] = {}


@pytest.fixture
def bench_metrics(request) -> dict:
    """The requesting bench file's persisted-metrics dict.

    Keys written here (measured speedups, samples/sec, accuracy deltas)
    land in ``benchmarks/BENCH_<name>.json`` after a full run.
    """
    name = Path(str(request.node.fspath)).stem.removeprefix("bench_")
    return _BENCH_METRICS.setdefault(name, {})


def pytest_sessionfinish(session, exitstatus):
    if session.config.getoption("--quick", default=False):
        return  # smoke numbers are meaningless; keep the real trajectory
    for name, metrics in _BENCH_METRICS.items():
        if not metrics:
            continue
        payload = {
            "bench": name,
            "recorded_unix": int(time.time()),
            "metrics": metrics,
        }
        out = Path(__file__).parent / f"BENCH_{name}.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

from repro.core import MFDFPConfig, run_algorithm1
from repro.datasets import cifar10_surrogate, imagenet_surrogate
from repro.nn import SGD, PlateauScheduler, Trainer
from repro.zoo import alexnet_small, cifar10_small


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: tiny data and epochs; skip statistical/timing gates",
    )


def pytest_collect_file(file_path, parent):
    """Collect ``bench_*.py`` when this directory was asked for explicitly.

    The benchmark files do not match pytest's default ``test_*.py``
    pattern, so ``pytest benchmarks/`` used to collect nothing at all —
    the documented command silently ran zero benchmarks.  This hook
    collects them, but only when the benchmarks directory itself appears
    in the command-line arguments: a plain ``pytest`` from the repo root
    (the tier-1 suite) must not start training benchmark fixtures.
    """
    if not (file_path.suffix == ".py" and file_path.name.startswith("bench_")):
        return None
    config = parent.config
    bench_dir = Path(file_path).resolve().parent
    invocation_dir = Path(str(config.invocation_params.dir))
    for raw in config.invocation_params.args:
        arg = str(raw).split("::")[0]
        if arg.startswith("-"):
            continue
        try:
            target = (invocation_dir / arg).resolve()
        except OSError:  # unresolvable option values, e.g. `-k expr`
            continue
        if target == bench_dir:
            return pytest.Module.from_parent(parent, path=file_path)
    return None


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the benchmarks run in ``--quick`` smoke mode."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture
def full_only(request):
    """Skip the requesting test in ``--quick`` mode.

    For statistical accuracy bands and wall-clock speedup gates: smoke
    fixtures are too small for either to be meaningful.
    """
    if request.config.getoption("--quick"):
        pytest.skip("statistical/timing gate skipped in --quick smoke mode")


def train_float(net, train, test, epochs=20, lr=0.02, seed=0):
    """Train the float network to convergence (plateau LR schedule)."""
    optimizer = SGD(net.params, lr=lr, momentum=0.9)
    scheduler = PlateauScheduler(optimizer, patience=2)
    trainer = Trainer(
        net, optimizer, scheduler=scheduler, batch_size=32, rng=np.random.default_rng(seed)
    )
    trainer.fit(train, test, epochs=epochs)
    return trainer.history


@pytest.fixture(scope="session")
def cifar_problem(quick):
    """Trained float cifar10_small + surrogate data (accuracy benchmarks).

    noise=0.75 puts the surrogate in the paper's operating regime: the
    float network converges well below ceiling and raw quantization costs
    several accuracy points that fine-tuning must then recover.
    """
    n_train, n_test, epochs = (160, 80, 2) if quick else (1200, 300, 20)
    train, test = cifar10_surrogate(n_train=n_train, n_test=n_test, size=16, seed=3, noise=0.75)
    net = cifar10_small(size=16, rng=np.random.default_rng(7))
    history = train_float(net, train, test, epochs=epochs)
    return {"net": net, "train": train, "test": test, "history": history}


@pytest.fixture(scope="session")
def imagenet_problem(quick):
    """Trained float alexnet_small + downscaled ImageNet surrogate."""
    n_train, n_test, epochs = (160, 80, 2) if quick else (1200, 300, 20)
    train, test = imagenet_surrogate(
        n_train=n_train, n_test=n_test, num_classes=20, size=16, noise=0.8, seed=9
    )
    net = alexnet_small(num_classes=20, size=16, rng=np.random.default_rng(17))
    history = train_float(net, train, test, epochs=epochs)
    return {"net": net, "train": train, "test": test, "history": history}


@pytest.fixture(scope="session")
def cifar_mfdfp(cifar_problem, quick):
    """Algorithm 1 result on the CIFAR surrogate (phases 1+2)."""
    epochs = 1 if quick else 6
    config = MFDFPConfig(phase1_epochs=epochs, phase2_epochs=epochs, lr=5e-3, batch_size=32)
    return run_algorithm1(
        cifar_problem["net"].clone(),
        cifar_problem["train"],
        cifar_problem["test"],
        cifar_problem["train"].x[:256],
        config,
        rng=np.random.default_rng(1),
    )


@pytest.fixture(scope="session")
def imagenet_mfdfp(imagenet_problem, quick):
    epochs = 1 if quick else 6
    config = MFDFPConfig(phase1_epochs=epochs, phase2_epochs=epochs, lr=5e-3, batch_size=32)
    return run_algorithm1(
        imagenet_problem["net"].clone(),
        imagenet_problem["train"],
        imagenet_problem["test"],
        imagenet_problem["train"].x[:256],
        config,
        rng=np.random.default_rng(2),
    )
