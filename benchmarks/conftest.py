"""Shared benchmark fixtures.

The accuracy-bearing benchmarks train on the CIFAR-10 surrogate at
reduced scale (see DESIGN.md, "Substitutions"); training happens once per
session in fixtures, and the ``benchmark`` fixture then times the
measurement step of each experiment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MFDFPConfig, run_algorithm1
from repro.datasets import cifar10_surrogate, imagenet_surrogate
from repro.nn import SGD, PlateauScheduler, Trainer
from repro.zoo import alexnet_small, cifar10_small


def train_float(net, train, test, epochs=20, lr=0.02, seed=0):
    """Train the float network to convergence (plateau LR schedule)."""
    optimizer = SGD(net.params, lr=lr, momentum=0.9)
    scheduler = PlateauScheduler(optimizer, patience=2)
    trainer = Trainer(
        net, optimizer, scheduler=scheduler, batch_size=32, rng=np.random.default_rng(seed)
    )
    trainer.fit(train, test, epochs=epochs)
    return trainer.history


@pytest.fixture(scope="session")
def cifar_problem():
    """Trained float cifar10_small + surrogate data (accuracy benchmarks).

    noise=0.75 puts the surrogate in the paper's operating regime: the
    float network converges well below ceiling and raw quantization costs
    several accuracy points that fine-tuning must then recover.
    """
    train, test = cifar10_surrogate(n_train=1200, n_test=300, size=16, seed=3, noise=0.75)
    net = cifar10_small(size=16, rng=np.random.default_rng(7))
    history = train_float(net, train, test, epochs=20)
    return {"net": net, "train": train, "test": test, "history": history}


@pytest.fixture(scope="session")
def imagenet_problem():
    """Trained float alexnet_small + downscaled ImageNet surrogate."""
    train, test = imagenet_surrogate(
        n_train=1200, n_test=300, num_classes=20, size=16, noise=0.8, seed=9
    )
    net = alexnet_small(num_classes=20, size=16, rng=np.random.default_rng(17))
    history = train_float(net, train, test, epochs=20)
    return {"net": net, "train": train, "test": test, "history": history}


@pytest.fixture(scope="session")
def cifar_mfdfp(cifar_problem):
    """Algorithm 1 result on the CIFAR surrogate (phases 1+2)."""
    config = MFDFPConfig(phase1_epochs=6, phase2_epochs=6, lr=5e-3, batch_size=32)
    return run_algorithm1(
        cifar_problem["net"].clone(),
        cifar_problem["train"],
        cifar_problem["test"],
        cifar_problem["train"].x[:256],
        config,
        rng=np.random.default_rng(1),
    )


@pytest.fixture(scope="session")
def imagenet_mfdfp(imagenet_problem):
    config = MFDFPConfig(phase1_epochs=6, phase2_epochs=6, lr=5e-3, batch_size=32)
    return run_algorithm1(
        imagenet_problem["net"].clone(),
        imagenet_problem["train"],
        imagenet_problem["test"],
        imagenet_problem["train"].x[:256],
        config,
        rng=np.random.default_rng(2),
    )
