"""Table 3: parameter-memory requirements.

Paper values (MB):

    network        float    MF-DFP   ensemble
    CIFAR-10       0.3417   0.0428   0.0855
    ImageNet     237.95    29.75    59.50

Our architectures reproduce the float and MF-DFP columns exactly (they
are pure functions of the parameter count); the benchmark times the
memory accounting and a full deployment.
"""

import numpy as np
import pytest

from repro.core import MFDFPNetwork
from repro.report import format_table, memory_report, table3_rows
from repro.zoo import alexnet, cifar10_full


@pytest.fixture(scope="module")
def rows():
    return table3_rows([cifar10_full(), alexnet()])


def test_print_table3(rows, capsys, benchmark):
    benchmark(lambda: table3_rows([cifar10_full()]))
    with capsys.disabled():
        print()
        print(format_table(rows, title="Table 3: parameter memory (MB, measured vs paper)"))


def test_cifar_values_match_paper(rows):
    row = rows[0]
    assert row.float_mb == pytest.approx(0.3417, abs=5e-5)
    assert row.mfdfp_mb == pytest.approx(0.0428, abs=5e-4)
    assert row.ensemble_mb == pytest.approx(0.0855, abs=1e-3)


def test_alexnet_values_match_paper(rows):
    row = rows[1]
    assert row.float_mb == pytest.approx(237.95, abs=0.01)
    assert row.mfdfp_mb == pytest.approx(29.75, abs=0.02)
    assert row.ensemble_mb == pytest.approx(59.50, abs=0.04)


def test_compression_is_exactly_8x(rows):
    for row in rows:
        assert row.float_mb / row.mfdfp_mb == pytest.approx(8.0)


def test_bench_memory_accounting(benchmark):
    nets = [cifar10_full(), alexnet()]
    result = benchmark(lambda: [memory_report(n) for n in nets])
    assert len(result) == 2


def test_bench_deploy_cifar10_full(benchmark):
    """Time the full deployment (weight encoding) of cifar10_full."""
    rng = np.random.default_rng(0)
    net = cifar10_full(dtype=np.float64)
    calib = rng.normal(size=(8, 3, 32, 32))
    mf = MFDFPNetwork.from_float(net, calib)
    dep = benchmark(mf.deploy)
    assert dep.weight_memory_mb() == pytest.approx(0.0428, abs=5e-4)
