"""Ablation: off-chip bandwidth sensitivity of the two designs.

The paper evaluates compute-bound latency (main memory excluded), where
FP32 and MF-DFP take essentially the same time.  This ablation turns on
the double-buffered DMA model and sweeps the off-chip bandwidth: because
MF-DFP moves 4x smaller activations and 8x smaller weights, it stays
compute-bound at bandwidths where the FP32 design stalls — a latency
benefit on top of the paper's power/energy numbers, bounded by the 8x
byte ratio.
"""

import pytest

from repro.hw import Accelerator, AcceleratorConfig
from repro.zoo import alexnet, cifar10_full

BANDWIDTHS = (1024.0, 256.0, 64.0, 16.0, 4.0, 1.0)  # bytes per cycle


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for net in (cifar10_full(), alexnet()):
        for bw in BANDWIDTHS:
            fp = Accelerator(AcceleratorConfig(precision="fp32", dma_bandwidth=bw))
            mf = Accelerator(AcceleratorConfig(precision="mfdfp", dma_bandwidth=bw))
            t_fp = fp.latency_us(net)
            t_mf = mf.latency_us(net)
            rows.append(
                {
                    "network": net.name,
                    "bandwidth": bw,
                    "fp32_us": t_fp,
                    "mfdfp_us": t_mf,
                    "speedup": t_fp / t_mf,
                    "fp32_membound": len(fp.schedule(net).memory_bound_layers()),
                    "mfdfp_membound": len(mf.schedule(net).memory_bound_layers()),
                }
            )
    return rows


def test_print_bandwidth_sweep(sweep, capsys, benchmark):
    benchmark(lambda: max(r["speedup"] for r in sweep))
    with capsys.disabled():
        print()
        print("DMA bandwidth ablation (latency, us; memory-bound layer counts)")
        header = f"{'network':<14} {'B/cyc':>7} {'fp32':>12} {'mfdfp':>12} {'speedup':>8} {'fp32 MB':>8} {'mf MB':>6}"
        print(header)
        for r in sweep:
            print(
                f"{r['network']:<14} {r['bandwidth']:>7.0f} {r['fp32_us']:>12.1f} "
                f"{r['mfdfp_us']:>12.1f} {r['speedup']:>8.2f} "
                f"{r['fp32_membound']:>8} {r['mfdfp_membound']:>6}"
            )


def test_speedup_monotone_in_scarcity(sweep):
    for name in ("cifar10_full", "alexnet"):
        series = [r["speedup"] for r in sweep if r["network"] == name]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))


def test_speedup_bounded_by_byte_ratio(sweep):
    assert all(r["speedup"] <= 8.0 + 1e-9 for r in sweep)


def test_fp32_goes_memory_bound_first(sweep):
    for r in sweep:
        assert r["fp32_membound"] >= r["mfdfp_membound"]


def test_high_bandwidth_recovers_paper_setting(sweep):
    """At ample bandwidth both designs are compute bound and the latency
    gap collapses to the pipeline-depth difference."""
    top = [r for r in sweep if r["bandwidth"] == BANDWIDTHS[0]]
    for r in top:
        assert r["speedup"] < 1.05


def test_bench_schedule_with_dma(benchmark):
    acc = Accelerator(AcceleratorConfig(precision="mfdfp", dma_bandwidth=16.0))
    schedule = benchmark(acc.schedule, alexnet())
    assert schedule.total_cycles > 0
