"""Artifact-store cold start vs rebuild-from-scratch, plus persistence integrity.

The point of the artifact store is restart latency: a serving process
that dies must come back without re-running dataset synthesis,
quantization calibration, and deployment for every hosted model.  This
benchmark publishes the zoo's serving entry points into a store once,
then measures two ways of bringing a :class:`repro.serve.ModelRegistry`
to fully-compiled readiness:

* **rebuild** — the pre-store path: every model's builder runs from
  scratch (surrogate data, calibration forward passes, pow2 encoding),
  then the engine compiles;
* **cold start** — ``ModelRegistry.from_store``: validated container
  load from disk, then the same engine compile.

The acceptance gate is the PR's: cold start must be ≥ 5x faster than
rebuild, while serving bit-identical engines — same content
fingerprints, same output codes (asserted in ``--quick`` mode too; only
the wall-clock gate needs the full run).
"""

import time

import numpy as np
import pytest

from repro.core.engine import engine_fingerprint
from repro.io import ArtifactStore
from repro.serve import ModelRegistry
from repro.zoo import alexnet_deployable, cifar10_full_deployable

GATE = 5.0
REPEATS = 3

#: Serving-scale builders (size-8 surrogate artifacts, as the serving
#: benchmarks use) — the store must beat *these*, not strawmen.
BUILDERS = {
    "cifar10_full": lambda: cifar10_full_deployable(size=8),
    "alexnet": lambda: alexnet_deployable(size=8),
}


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A store holding every zoo serving artifact, published once."""
    root = tmp_path_factory.mktemp("artifact_store")
    store = ArtifactStore(root)
    for name, builder in BUILDERS.items():
        store.publish_deployed(name, builder())
    return store


def _registry_rebuild() -> ModelRegistry:
    registry = ModelRegistry()
    for name, builder in BUILDERS.items():
        registry.register(name, builder)
    for name in BUILDERS:
        registry.engine(name)
    return registry


def _registry_cold_start(store) -> ModelRegistry:
    registry = ModelRegistry.from_store(store)
    for name in BUILDERS:
        registry.engine(name)
    return registry


def test_store_serves_bit_identical_engines(store):
    """Disk round trip changes nothing the engine can observe."""
    cold = ModelRegistry.from_store(store)
    rng = np.random.default_rng(23)
    for name, builder in BUILDERS.items():
        built = builder()
        loaded = cold.deployed(name)
        assert engine_fingerprint(loaded) == engine_fingerprint(built)
        x = rng.normal(scale=0.5, size=(8,) + tuple(built.input_shape)).astype(np.float32)
        warm = ModelRegistry()
        warm.register(name, lambda b=built: b)
        assert np.array_equal(cold.engine(name).run(x), warm.engine(name).run(x))


def test_republish_is_idempotent(store):
    """A second export of unchanged content writes no new versions."""
    before = {name: store.versions(name) for name in BUILDERS}
    for name, builder in BUILDERS.items():
        store.publish_deployed(name, builder())
    assert {name: store.versions(name) for name in BUILDERS} == before


def test_cold_start_speedup(store, full_only, bench_metrics):
    """Gate: registry cold start from the store ≥ 5x rebuild-from-scratch."""
    rebuild_s, cold_s = [], []
    for _ in range(REPEATS):  # interleaved best-of-N, like the other benches
        t0 = time.perf_counter()
        _registry_rebuild()
        rebuild_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _registry_cold_start(store)
        cold_s.append(time.perf_counter() - t0)
    rebuild, cold = min(rebuild_s), min(cold_s)
    speedup = rebuild / cold
    total_bytes = sum(
        store.model_path(name).stat().st_size for name in store.model_names()
    )
    bench_metrics["rebuild_s"] = round(rebuild, 4)
    bench_metrics["cold_start_s"] = round(cold, 4)
    bench_metrics["cold_start_speedup"] = round(speedup, 2)
    bench_metrics["store_bytes"] = total_bytes
    bench_metrics["models"] = len(store.model_names())
    print(
        f"\nregistry readiness: rebuild {rebuild * 1e3:.1f} ms, "
        f"cold start {cold * 1e3:.1f} ms ({speedup:.1f}x) "
        f"over {len(store.model_names())} models, {total_bytes:,} bytes on disk"
    )
    assert speedup >= GATE, (
        f"store cold start is only {speedup:.1f}x faster than rebuild "
        f"(gate: {GATE}x; rebuild {rebuild:.3f}s, cold {cold:.3f}s)"
    )
