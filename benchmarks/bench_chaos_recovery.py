"""Chaos recovery drills as an acceptance gate: no hangs, no data loss.

Runs the full ``repro.chaos`` drill suite — the same four end-to-end
recovery scenarios ``python -m repro chaos --drill all`` exercises —
under the benchmark harness, so every PR records how long recovery
takes and whether the three drill invariants still hold:

* **no hangs** — each drill finishes inside its watchdog budget;
* **typed errors only** — every failure surfaced during recovery is
  from a typed hierarchy (``ArtifactError``/``PoolError``/``CrashError``);
* **bit-identical recovery** — weights, loss curves and served outputs
  after recovery equal the undisturbed run's exactly.

``--quick`` runs every drill at smoke scale (the tier-1 gate via
``tests/integration/test_bench_smoke.py``); the full run additionally
enforces wall-clock recovery budgets and persists per-drill timings to
``BENCH_chaos_recovery.json``.
"""

import pytest

from repro.chaos import DRILLS, run_drill

SEED = 2017

#: Full-run wall-clock budget per drill, seconds.  These are acceptance
#: ceilings (CI-machine safe), not targets; the recorded metrics track
#: the actual trajectory.
RECOVERY_BUDGET_S = {
    "torn-checkpoint-resume": 60.0,
    "corrupted-store-cold-start": 30.0,
    "worker-death-campaign": 90.0,
    "kill-and-resume-under-load": 180.0,
}


@pytest.fixture(scope="module")
def reports(quick):
    """Every drill, run once per session at the harness-selected scale."""
    out = {}
    for name in DRILLS:
        out[name] = run_drill(name, seed=SEED, quick=quick, log=lambda msg: None)
    return out


@pytest.mark.parametrize("name", list(DRILLS))
def test_drill_passes_with_all_invariants(name, reports, bench_metrics):
    report = reports[name]
    assert report.passed, f"drill {name} failed"
    assert report.invariants and all(report.invariants.values())
    if name != "kill-and-resume-under-load":
        # That drill's fault (sigkill-self) fires inside the killed
        # subprocess; the parent plan's log is empty by design — the
        # drill asserts the -SIGKILL returncode instead.
        assert report.fired, f"drill {name}: the fault plan never fired"
    bench_metrics[f"{name}_s"] = round(report.duration_s, 3)
    bench_metrics[f"{name}_faults_fired"] = len(report.fired)


def test_zero_silent_data_loss(reports):
    """The bit-identity invariant is present (and true) in every drill —
    recovery that drops or alters results must fail here, not ship."""
    for name, report in reports.items():
        identity = [k for k in report.invariants if "identical" in k or "equal" in k]
        assert identity, f"drill {name} asserts no bit-identity invariant"
        assert all(report.invariants[k] for k in identity)


@pytest.mark.parametrize("name", list(DRILLS))
def test_recovery_within_budget(name, reports, full_only, bench_metrics):
    duration = reports[name].duration_s
    assert duration <= RECOVERY_BUDGET_S[name], (
        f"drill {name} recovered in {duration:.1f}s, over the "
        f"{RECOVERY_BUDGET_S[name]:.0f}s acceptance budget"
    )


def test_drills_replay_deterministically(quick, bench_metrics):
    """Same seed, same plan, same firing log, same observed details —
    a drill failure anywhere reproduces from its printed seed."""
    name = "torn-checkpoint-resume"
    first = run_drill(name, seed=SEED + 1, quick=quick, log=lambda msg: None)
    second = run_drill(name, seed=SEED + 1, quick=quick, log=lambda msg: None)
    assert first.plan == second.plan
    assert first.fired == second.fired
    assert first.details == second.details
    bench_metrics["replay_checked"] = name
