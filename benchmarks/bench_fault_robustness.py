"""Robustness of the 4-bit weight encoding to memory bit flips.

A study in the spirit of the paper's "inherent resiliency of DNNs"
premise: flip bits in the deployed 4-bit ⟨s, e⟩ weight codes at
increasing bit-error rates and measure accuracy with bit-accurate
execution.  Accuracy should degrade gracefully at small error rates and
collapse toward chance at heavy corruption.
"""

import numpy as np
import pytest

from repro.analysis.faults import accuracy_under_faults, inject_weight_faults
from repro.core.mfdfp import MFDFPNetwork

BERS = (0.0, 1e-4, 1e-3, 1e-2, 0.1)


@pytest.fixture(scope="module")
def fault_curve(cifar_problem, cifar_mfdfp):
    test = cifar_problem["test"]
    deployed = cifar_mfdfp.mfdfp.deploy()
    points = accuracy_under_faults(
        deployed,
        test.x[:200],
        test.y[:200],
        bit_error_rates=BERS,
        rng=np.random.default_rng(0),
        jobs=2,  # curves are bit-identical for any fan-out
    )
    return dict(points), deployed


def test_print_fault_curve(fault_curve, capsys, benchmark):
    curve, _ = fault_curve
    benchmark(lambda: min(curve.values()))
    with capsys.disabled():
        print()
        print("Weight-memory fault injection (CIFAR surrogate, bit-accurate execution)")
        print(f"{'bit error rate':>15} {'accuracy':>10}")
        for ber, acc in curve.items():
            print(f"{ber:>15.0e} {acc:>10.4f}")


def test_small_ber_is_tolerated(fault_curve, full_only):
    curve, _ = fault_curve
    assert curve[1e-4] >= curve[0.0] - 0.05


def test_heavy_corruption_degrades(fault_curve, full_only):
    curve, _ = fault_curve
    assert curve[0.1] <= curve[0.0]


def test_degradation_roughly_monotone(fault_curve, full_only):
    curve, _ = fault_curve
    bers = sorted(curve)
    accs = [curve[b] for b in bers]
    # allow small non-monotonic noise, but the overall trend must hold
    assert accs[0] >= accs[-1]
    assert max(accs) - accs[-1] >= 0.0


def test_bench_fault_injection(fault_curve, benchmark):
    _, deployed = fault_curve
    result = benchmark(
        inject_weight_faults, deployed, 0.01, np.random.default_rng(1)
    )
    assert result.flipped_bits > 0
