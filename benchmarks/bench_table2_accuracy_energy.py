"""Table 2: accuracy, inference time, and energy per benchmark.

Regenerates the structure of the paper's Table 2 on the surrogate
datasets (absolute accuracies differ from the paper — our substrate is a
synthetic dataset and a scaled network — but the orderings and the
energy-saving factors are the reproduction targets):

* float accuracy >= MF-DFP accuracy within a small gap,
* ensemble accuracy >= float accuracy (the paper's headline),
* time(MF-DFP) marginally below time(FP32),
* energy saving ~90% single / ~80% ensemble.

Hardware time/energy is measured on the full-size ``cifar10_full`` and
``alexnet`` topologies, exactly as the paper reports them.
"""

import numpy as np
import pytest

from repro.core import Ensemble, MFDFPConfig, run_algorithm1
from repro.hw import Accelerator, AcceleratorConfig
from repro.report import format_table, table2_row
from repro.zoo import alexnet, cifar10_full


@pytest.fixture(scope="module")
def accelerators():
    return {
        "fp32": Accelerator(AcceleratorConfig(precision="fp32")),
        "mfdfp": Accelerator(AcceleratorConfig(precision="mfdfp")),
        "ens": Accelerator(AcceleratorConfig(precision="mfdfp", num_pus=2)),
    }


@pytest.fixture(scope="module")
def cifar_rows(cifar_problem, cifar_mfdfp, accelerators, quick):
    return _rows_for(
        "CIFAR-10(surrogate)", cifar_problem, cifar_mfdfp, cifar10_full(), accelerators,
        seed=21, quick=quick,
    )


@pytest.fixture(scope="module")
def imagenet_rows(imagenet_problem, imagenet_mfdfp, accelerators, quick):
    return _rows_for(
        "ImageNet(surrogate)", imagenet_problem, imagenet_mfdfp, alexnet(), accelerators,
        seed=22, quick=quick,
    )


def _rows_for(name, problem, result, hw_net, accelerators, seed, quick=False):
    from repro.nn import error_rate

    test = problem["test"]
    float_acc = 1.0 - result.float_val_error
    mfdfp_acc = 1.0 - result.final_val_error

    # second ensemble member: rerun Algorithm 1 from a perturbed start
    rng = np.random.default_rng(seed)
    second = problem["net"].clone()
    for p in second.params:
        p.data = p.data + rng.normal(scale=0.02, size=p.data.shape).astype(p.data.dtype)
    epochs = 1 if quick else 4
    config = MFDFPConfig(phase1_epochs=epochs, phase2_epochs=epochs, lr=5e-3, batch_size=32)
    result2 = run_algorithm1(
        second, problem["train"], test, problem["train"].x[:256], config, rng=rng
    )
    ensemble = Ensemble([result.mfdfp, result2.mfdfp])
    ens_acc = ensemble.accuracy(test)

    base_energy = accelerators["fp32"].energy_uj(hw_net)
    return [
        table2_row(name, "Floating-Point(32,32)", float_acc, accelerators["fp32"], hw_net),
        table2_row(name, "MF-DFP(8,4)", mfdfp_acc, accelerators["mfdfp"], hw_net, base_energy),
        table2_row(name, "Ensemble MF-DFP", ens_acc, accelerators["ens"], hw_net, base_energy),
    ]


def test_print_table2(cifar_rows, imagenet_rows, capsys, benchmark, accelerators):
    benchmark(accelerators["mfdfp"].energy_uj, cifar10_full())
    with capsys.disabled():
        print()
        print(format_table(cifar_rows + imagenet_rows, title="Table 2 (measured)"))
        print(
            "paper reference: CIFAR-10 81.53/80.77/82.61 %, 246.52/246.27 us, "
            "335.68/34.22/66.56 uJ; ImageNet top-1 56.95/56.16/57.57 %, "
            "15666 us, 21332/2177/4234 uJ"
        )


@pytest.mark.parametrize("which", ["cifar", "imagenet"])
def test_accuracy_ordering(which, request, full_only):
    rows = request.getfixturevalue(f"{which}_rows")
    float_row, mf_row, ens_row = rows
    # MF-DFP within a moderate gap of float (paper: < 1 point at full scale)
    assert mf_row.accuracy_pct >= float_row.accuracy_pct - 12.0
    # ensemble at least competitive with the single MF-DFP network
    assert ens_row.accuracy_pct >= mf_row.accuracy_pct - 2.0


@pytest.mark.parametrize("which", ["cifar", "imagenet"])
def test_time_nearly_constant(which, request):
    rows = request.getfixturevalue(f"{which}_rows")
    float_row, mf_row, ens_row = rows
    assert mf_row.time_us < float_row.time_us
    assert (float_row.time_us - mf_row.time_us) / float_row.time_us < 0.01
    assert ens_row.time_us == mf_row.time_us  # parallel PUs


@pytest.mark.parametrize("which", ["cifar", "imagenet"])
def test_energy_saving_bands(which, request):
    rows = request.getfixturevalue(f"{which}_rows")
    _, mf_row, ens_row = rows
    assert 87.0 < mf_row.energy_saving_pct < 92.0   # paper: ~89.8
    assert 76.0 < ens_row.energy_saving_pct < 83.0  # paper: ~80.2


def test_bench_hw_inference_cifar(cifar_mfdfp, benchmark):
    """Time bit-accurate accelerator inference on a 32-image batch."""
    dep = cifar_mfdfp.mfdfp.deploy()
    acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 3, 16, 16))
    logits = benchmark(acc.run, dep, x)
    assert logits.shape == (32, 10)


def test_bench_latency_model(benchmark, accelerators):
    """Time the cycle-accurate schedule of cifar10_full."""
    net = cifar10_full()
    t = benchmark(accelerators["mfdfp"].latency_us, net)
    assert 150.0 < t < 350.0
