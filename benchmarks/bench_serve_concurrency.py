"""Multi-model serving throughput: concurrent runtime vs serialized baseline.

The serving runtime earns its keep two ways on top of the compiled
engine: micro-batching (vectorized execution amortizes the per-call
dispatch that dominates solo runs) and a worker pool (the BLAS kernels
release the GIL, so batches of different models overlap).  This
benchmark hosts the two zoo serving entry points at serving scale
(size-8 surrogate artifacts — high request rates against small models
is exactly the regime micro-batching exists for) and measures
end-to-end request throughput in two configurations:

* **serialized baseline** — one worker, micro-batch 1, closed loop:
  request N+1 is not submitted until request N's result is back.  This
  is the naive synchronous one-thread server.
* **concurrent runtime** — 4 workers × micro-batch 64, open loop: all
  clients' requests are in flight at once, interleaved across models.

The acceptance gate is the PR's: the concurrent runtime must deliver
≥ 3x the serialized baseline's requests/sec while every future resolves
bit-identically to a solo engine run (no cross-model bleed, no loss).
"""

import time

import numpy as np
import pytest

from repro.serve import ModelRegistry, ServerRuntime
from repro.zoo import alexnet_deployable, cifar10_full_deployable

MODELS = ("cifar10_full", "alexnet")
REQUESTS_PER_MODEL = 256
WORKERS = 4
MAX_BATCH = 64
GATE = 3.0


@pytest.fixture(scope="module")
def served(quick):
    """Serving-scale registry (engines pre-compiled) + per-model requests."""
    registry = ModelRegistry()
    registry.register("cifar10_full", lambda: cifar10_full_deployable(size=8))
    registry.register("alexnet", lambda: alexnet_deployable(size=8))
    per_model = 32 if quick else REQUESTS_PER_MODEL
    rng = np.random.default_rng(11)
    requests = {
        name: rng.normal(
            scale=0.5, size=(per_model,) + registry.engine(name).input_shape
        ).astype(np.float32)
        for name in MODELS
    }
    return {"registry": registry, "requests": requests, "per_model": per_model}


def _run_serialized(served):
    """Closed loop, one worker, batch 1: strictly one request at a time."""
    runtime = ServerRuntime(
        served["registry"], MODELS, workers=1, max_batch=1, max_queue=4
    )
    requests = served["requests"]
    start = time.perf_counter()
    with runtime:
        for i in range(served["per_model"]):
            for name in MODELS:
                runtime.submit(name, requests[name][i]).result(timeout=120)
    return time.perf_counter() - start


def _run_concurrent(served):
    """Open loop, worker pool, micro-batches: everything in flight at once."""
    runtime = ServerRuntime(
        served["registry"], MODELS, workers=WORKERS, max_batch=MAX_BATCH, max_queue=10_000
    )
    requests = served["requests"]
    start = time.perf_counter()
    with runtime:
        futures = [
            (name, i, runtime.submit(name, requests[name][i]))
            for i in range(served["per_model"])
            for name in MODELS  # interleaved, as concurrent client traffic
        ]
        for _, _, future in futures:
            future.result(timeout=120)
    return time.perf_counter() - start, futures


def test_bench_serialized_baseline(served, benchmark):
    benchmark(_run_serialized, served)


def test_bench_concurrent_runtime(served, benchmark):
    benchmark(_run_concurrent, served)


def test_concurrent_bit_identical(served):
    """Every future resolves exactly as a solo engine run (quick mode too)."""
    registry, requests = served["registry"], served["requests"]
    _, futures = _run_concurrent(served)
    references = {name: registry.engine(name).run(requests[name]) for name in MODELS}
    for name, i, future in futures:
        assert np.array_equal(future.result(0), references[name][i]), (name, i)


def test_concurrent_3x_serialized_and_bit_identical(served, full_only):
    """Acceptance gate: ≥ 3x the 1-worker serialized baseline, exact outputs."""
    registry, requests = served["registry"], served["requests"]
    total = len(MODELS) * served["per_model"]

    _run_concurrent(served)  # warm the pool/allocator paths outside the timers
    serial_s = min(_run_serialized(served) for _ in range(3))
    concurrent_s, futures = min(
        (_run_concurrent(served) for _ in range(3)), key=lambda pair: pair[0]
    )

    references = {name: registry.engine(name).run(requests[name]) for name in MODELS}
    for name, i, future in futures:
        assert np.array_equal(future.result(0), references[name][i]), (name, i)

    serial_rps = total / serial_s
    concurrent_rps = total / concurrent_s
    speedup = concurrent_rps / serial_rps
    print(
        f"\n{total} requests over {len(MODELS)} models: "
        f"serialized {serial_rps:.0f} req/s, concurrent {concurrent_rps:.0f} req/s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= GATE, f"concurrent runtime only {speedup:.2f}x over serialized baseline"
