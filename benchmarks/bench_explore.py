"""Co-design explorer acceptance gates: pruning efficiency and durability.

Runs the successive-halving explorer of :mod:`repro.explore` against the
exhaustive baseline on the same co-design grid (bit width × exponent
clamp × technology node) and gates the two ISSUE acceptance criteria:

* **pruning efficiency** — the halving schedule must reach *exactly* the
  exhaustive run's Pareto frontier while running at least **3× fewer
  full MF-DFP pipelines** (cheap quantize-only surrogate rungs prune
  dominated designs before anyone pays for Algorithm 1);
* **durable exploration** — an exploration interrupted mid-rung resumes
  from its :class:`~repro.io.exploration.ExplorationCheckpointer` files
  to bit-identical evaluations and frontier (the SIGKILL variant of this
  is pinned in tier-1 by ``tests/explore/test_kill_resume.py``).

``--quick`` shrinks the grid to 4 points and the surrogate to smoke
scale; the frontier-equality and resume-identity assertions still run,
while the 3× ratio gate (meaningless on a 4-point grid) is full-only.
A full run persists the measured ratio and wall-clock numbers to
``BENCH_explore.json``.
"""

import dataclasses
import time

import pytest

from repro.explore import DesignSpace, ExploreConfig, explore
from repro.io import ExplorationCheckpointer

SEED = 2017


@pytest.fixture(scope="module")
def grid(quick):
    """The co-design grid under exploration.

    The full grid spans three technology nodes: the FP32-anchored cost
    calibration makes the SRAM-heavy MF-DFP datapath scale *worse* than
    the baseline at advanced nodes, so two thirds of the grid is
    cost-dominated at identical accuracy — exactly the structure
    successive halving should discover without full evaluations.
    """
    if quick:
        return DesignSpace(
            bits=(4, 8), min_exps=(-7,), num_pus=(1,), technologies=("65nm", "28nm")
        )
    return DesignSpace(
        bits=(3, 4, 6, 8),
        min_exps=(-5, -9),
        num_pus=(1,),
        technologies=("65nm", "45nm", "28nm"),
    )


@pytest.fixture(scope="module")
def config(quick):
    final = 1 if quick else 2
    return ExploreConfig(seed=SEED, rung_epochs=(0,), final_epochs=final, margin=0.05)


@pytest.fixture(scope="module")
def pruned(cifar_problem, grid, config, quick):
    jobs = 2 if quick else None
    t0 = time.perf_counter()
    result = explore(
        cifar_problem["net"],
        cifar_problem["train"],
        cifar_problem["test"],
        cifar_problem["train"].x[:256],
        grid,
        config,
        jobs=jobs,
    )
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def exhaustive(cifar_problem, grid, config, quick):
    jobs = 2 if quick else None
    t0 = time.perf_counter()
    result = explore(
        cifar_problem["net"],
        cifar_problem["train"],
        cifar_problem["test"],
        cifar_problem["train"].x[:256],
        grid,
        dataclasses.replace(config, prune=False),
        jobs=jobs,
    )
    return result, time.perf_counter() - t0


def test_pruned_frontier_matches_exhaustive(pruned, exhaustive, bench_metrics):
    """The whole point of the margin: pruning must not move the frontier."""
    pruned_result, pruned_s = pruned
    exhaustive_result, exhaustive_s = exhaustive
    assert [e.point for e in pruned_result.frontier] == [
        e.point for e in exhaustive_result.frontier
    ]
    # and the surviving full-fidelity accuracies are bit-identical —
    # the quantization-keyed RNG contract, not approximately equal
    exhaustive_acc = {e.point.index: e.accuracy for e in exhaustive_result.evaluations if e.full}
    for e in pruned_result.evaluations:
        if e.full:
            assert exhaustive_acc[e.point.index] == e.accuracy
    bench_metrics["frontier_size"] = len(pruned_result.frontier)
    bench_metrics["frontier"] = ", ".join(e.point.label for e in pruned_result.frontier)
    bench_metrics["pruned_s"] = round(pruned_s, 2)
    bench_metrics["exhaustive_s"] = round(exhaustive_s, 2)


def test_pruning_runs_3x_fewer_full_pipelines(pruned, exhaustive, full_only, bench_metrics):
    """ISSUE acceptance gate: same frontier, >= 3x fewer Algorithm-1 runs."""
    pruned_result, _ = pruned
    exhaustive_result, _ = exhaustive
    assert exhaustive_result.full_evaluations == len(exhaustive_result.space)
    ratio = exhaustive_result.full_evaluations / pruned_result.full_evaluations
    assert ratio >= 3.0, (
        f"pruning ran {pruned_result.full_evaluations} full pipelines vs "
        f"{exhaustive_result.full_evaluations} exhaustive — only {ratio:.2f}x savings"
    )
    bench_metrics["pruned_full_evals"] = pruned_result.full_evaluations
    bench_metrics["exhaustive_full_evals"] = exhaustive_result.full_evaluations
    bench_metrics["full_eval_ratio"] = round(ratio, 2)
    bench_metrics["survivors_per_rung"] = str(pruned_result.survivors_per_rung)


class _Interrupted(RuntimeError):
    """Simulated mid-exploration death (the SIGKILL stand-in)."""


class _InterruptingCheckpointer(ExplorationCheckpointer):
    """Dies after ``after`` saves — completed work persisted, rest lost."""

    def __init__(self, directory, after: int):
        super().__init__(directory)
        self.after = after
        self.saves = 0

    def save(self, evaluations, space, config):
        path = super().save(evaluations, space, config)
        self.saves += 1
        if self.saves >= self.after:
            raise _Interrupted("simulated mid-exploration kill")
        return path


def test_interrupted_exploration_resumes_bit_identically(
    pruned, cifar_problem, grid, config, tmp_path, bench_metrics
):
    """Kill after two checkpoint saves, resume fresh, compare exactly."""
    reference, _ = pruned
    fine = dataclasses.replace(config, checkpoint_every=2)
    run = lambda ckpt: explore(
        cifar_problem["net"],
        cifar_problem["train"],
        cifar_problem["test"],
        cifar_problem["train"].x[:256],
        grid,
        fine,
        jobs=2,
        checkpoint=ckpt,
    )
    with pytest.raises(_Interrupted):
        run(_InterruptingCheckpointer(tmp_path / "ckpt", after=2))
    restored = ExplorationCheckpointer(tmp_path / "ckpt").load(grid, fine)
    assert restored, "the interrupted run persisted nothing"

    t0 = time.perf_counter()
    resumed = run(ExplorationCheckpointer(tmp_path / "ckpt"))
    resume_s = time.perf_counter() - t0
    key = lambda r: [
        (e.point.index, e.rung, e.accuracy, e.energy_uj, e.area_mm2) for e in r.evaluations
    ]
    assert key(resumed) == key(reference)
    assert [e.point for e in resumed.frontier] == [e.point for e in reference.frontier]
    bench_metrics["resume_restored_rows"] = len(restored)
    bench_metrics["resume_s"] = round(resume_s, 2)
    bench_metrics["resume_bit_identical"] = 1
