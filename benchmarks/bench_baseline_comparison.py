"""Baseline precision comparison: MF-DFP vs binary / ternary / fixed8.

Section 1 of the paper motivates MF-DFP against two alternatives:
binary/ternary networks (cheap hardware, "unacceptable accuracy loss")
and plain >= 8-bit fixed point (accurate, but needs real multipliers).
This benchmark runs all four weight representations through the same
quantization flow (no fine-tuning, isolating representational power) and
prices their datapaths with the same cost model.
"""

import pytest

from repro.core.baselines import (
    BinaryWeightQuantizer,
    FixedPointWeightQuantizer,
    TernaryWeightQuantizer,
)
from repro.core.quantizer import NetworkQuantizer
from repro.hw.cost import CostModel
from repro.nn import error_rate

SCHEMES = {
    "pow2 (paper)": None,  # default Pow2WeightQuantizer
    "binary": BinaryWeightQuantizer,
    "ternary": TernaryWeightQuantizer,
    "fixed8": lambda: FixedPointWeightQuantizer(bits=8),
}


@pytest.fixture(scope="module")
def comparison(cifar_problem):
    net = cifar_problem["net"]
    test = cifar_problem["test"]
    calib = cifar_problem["train"].x[:256]
    rows = {}
    for label, factory in SCHEMES.items():
        clone = net.clone()
        NetworkQuantizer(weight_quantizer_factory=factory).quantize(clone, calib)
        rows[label] = error_rate(clone, test)
    rows["float"] = error_rate(net, test)
    return rows


@pytest.fixture(scope="module")
def hw_points():
    model = CostModel()
    return {
        precision: model.evaluate(precision, 1)
        for precision in ("fp32", "fixed8", "mfdfp")
    }


def test_print_comparison(comparison, hw_points, capsys, benchmark):
    benchmark(lambda: min(comparison.values()))
    with capsys.disabled():
        print()
        print("Weight-representation comparison (CIFAR surrogate, no fine-tuning)")
        for label, err in comparison.items():
            print(f"  {label:>14}: error {err:.4f}")
        print("Datapath cost (one processing unit):")
        for precision, b in hw_points.items():
            print(f"  {precision:>14}: {b.area_mm2:6.2f} mm2  {b.power_mw:8.2f} mW")


def test_pow2_more_accurate_than_binary_and_ternary(comparison, full_only):
    """The paper's accuracy argument for 8 exponent levels."""
    assert comparison["pow2 (paper)"] <= comparison["binary"] + 0.02
    assert comparison["pow2 (paper)"] <= comparison["ternary"] + 0.02


def test_pow2_competitive_with_fixed8(comparison, full_only):
    """...while giving up little against full 8-bit fixed-point weights."""
    assert comparison["pow2 (paper)"] - comparison["fixed8"] < 0.10


def test_mfdfp_cheapest_datapath(hw_points):
    """...and costing the least in hardware."""
    assert hw_points["mfdfp"].area_mm2 < hw_points["fixed8"].area_mm2
    assert hw_points["mfdfp"].power_mw < hw_points["fixed8"].power_mw
    assert hw_points["fixed8"].area_mm2 < hw_points["fp32"].area_mm2


def test_bench_baseline_quantization(cifar_problem, benchmark):
    net = cifar_problem["net"]
    calib = cifar_problem["train"].x[:128]

    def quantize_ternary():
        clone = net.clone()
        NetworkQuantizer(weight_quantizer_factory=TernaryWeightQuantizer).quantize(clone, calib)
        return clone

    clone = benchmark(quantize_ternary)
    assert clone.layer("conv1").weight_quantizer is not None
