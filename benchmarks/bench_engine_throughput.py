"""Serving throughput: compiled batched engine vs the scalar deployed path.

The deployed integer artifact can be served three ways, all bit-identical:

* **scalar** — ``execute_deployed`` once per sample (a naive server),
* **eager batch** — ``execute_deployed`` on the whole batch (re-derives
  weights and windows every call),
* **compiled engine** — :class:`repro.core.engine.BatchedEngine`
  (LUT-decoded weights, precomputed gather tables, BLAS-backed GEMM).

The speedup test is the PR's acceptance gate: the compiled engine must
deliver at least 5x the scalar path's samples/sec at batch size 64 while
producing identical output codes.
"""

import time

import numpy as np
import pytest

from repro.core import MFDFPNetwork
from repro.core.engine import BatchedEngine, execute_deployed
from repro.datasets import cifar10_surrogate
from repro.serve import ServeStats, predict_many
from repro.zoo import cifar10_small

BATCH = 64


@pytest.fixture(scope="module")
def served():
    """A deployed surrogate network, its engine, and one batch of requests."""
    train, test = cifar10_surrogate(n_train=256, n_test=BATCH, size=16, seed=5)
    net = cifar10_small(size=16, rng=np.random.default_rng(17))
    mfdfp = MFDFPNetwork.from_float(net, train.x[:128])
    mfdfp.calibrate_bias_to_accumulator_grid()
    deployed = mfdfp.deploy()
    return {"deployed": deployed, "engine": BatchedEngine(deployed), "x": test.x[:BATCH]}


def test_bench_scalar_path(served, benchmark):
    deployed, x = served["deployed"], served["x"]
    out = benchmark(lambda: [execute_deployed(deployed, x[i : i + 1]) for i in range(BATCH)])
    assert len(out) == BATCH


def test_bench_eager_batch(served, benchmark):
    out = benchmark(execute_deployed, served["deployed"], served["x"])
    assert out.shape[0] == BATCH


def test_bench_compiled_engine(served, benchmark):
    engine = served["engine"]
    engine.run_codes(served["x"])  # compile/warm outside the timer
    out = benchmark(engine.run_codes, served["x"])
    assert out.shape[0] == BATCH


def test_bench_predict_many(served, benchmark):
    stats = ServeStats()
    out = benchmark(predict_many, served["engine"], served["x"], 16, stats)
    assert out.shape[0] == BATCH


def _best_time(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_bit_exact(served):
    """Identical codes on the whole batch (runs in --quick mode too)."""
    deployed, engine, x = served["deployed"], served["engine"], served["x"]
    scalar_codes = np.concatenate(
        [execute_deployed(deployed, x[i : i + 1]) for i in range(BATCH)]
    )
    assert np.array_equal(scalar_codes, engine.run_codes(x))


def test_engine_5x_speedup(served, full_only, bench_metrics):
    """Acceptance gate: >= 5x samples/sec at batch 64."""
    deployed, engine, x = served["deployed"], served["engine"], served["x"]
    engine.run_codes(x)  # warm caches before timing
    scalar_s = _best_time(lambda: [execute_deployed(deployed, x[i : i + 1]) for i in range(BATCH)])
    engine_s = _best_time(lambda: engine.run_codes(x))
    speedup = scalar_s / engine_s
    bench_metrics.update(
        {
            "batch_size": BATCH,
            "scalar_samples_per_s": round(BATCH / scalar_s, 1),
            "engine_samples_per_s": round(BATCH / engine_s, 1),
            "speedup": round(speedup, 2),
            "gate": 5.0,
        }
    )
    print(
        f"\nbatch {BATCH}: scalar {BATCH / scalar_s:.0f} samples/s, "
        f"engine {BATCH / engine_s:.0f} samples/s ({speedup:.1f}x)"
    )
    assert speedup >= 5.0, f"engine only {speedup:.2f}x over the scalar path"
