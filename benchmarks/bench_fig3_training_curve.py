"""Figure 3: validation error during fine-tuning, per training strategy.

The paper's Figure 3 (ImageNet top-1 error vs epoch) shows three series:

* the float baseline (a horizontal line),
* Phase-1 fine-tuning with data labels only, plateauing slightly above
  the float error,
* Phase-2 student-teacher training starting from the Phase-1 trajectory
  and consistently ending at or below labels-only training.

This benchmark regenerates the same series on the ImageNet surrogate and
asserts the orderings; it prints the curve for EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.core import MFDFPConfig, MFDFPNetwork, phase1_finetune, phase2_distill
from repro.nn import error_rate


@pytest.fixture(scope="module")
def curves(imagenet_problem, quick):
    """Three Figure-3 series: float, labels-only, student-teacher."""
    train = imagenet_problem["train"]
    test = imagenet_problem["test"]
    float_net = imagenet_problem["net"]
    float_error = error_rate(float_net, test)
    epochs = 1 if quick else 6
    config = MFDFPConfig(phase1_epochs=epochs, phase2_epochs=epochs, lr=5e-3, batch_size=32)

    # labels-only trajectory: phase 1 continued (no distillation)
    labels_net = MFDFPNetwork.from_float(float_net.clone(), train.x[:256])
    h_labels_a = phase1_finetune(labels_net, train, test, config, rng=np.random.default_rng(4))
    h_labels_b = phase1_finetune(labels_net, train, test, config, rng=np.random.default_rng(5))
    labels_curve = h_labels_a.val_errors + h_labels_b.val_errors

    # student-teacher trajectory: phase 1 then phase 2 from the same point
    st_net = MFDFPNetwork.from_float(float_net.clone(), train.x[:256])
    h_st_a = phase1_finetune(st_net, train, test, config, rng=np.random.default_rng(4))
    h_st_b = phase2_distill(
        st_net, float_net, train, test, config, rng=np.random.default_rng(5)
    )
    st_curve = h_st_a.val_errors + h_st_b.val_errors

    return {
        "float_error": float_error,
        "labels_only": labels_curve,
        "student_teacher": st_curve,
        "phase1_epochs": len(h_st_a.val_errors),
    }


def test_print_figure3_series(curves, capsys, benchmark):
    benchmark(lambda: max(curves["labels_only"]))
    with capsys.disabled():
        print()
        print("Figure 3 series (ImageNet-surrogate top-1 error rate)")
        print(f"float baseline: {curves['float_error']:.4f}")
        print(f"phase 2 starts after epoch {curves['phase1_epochs']}")
        print(f"{'epoch':>5}  {'labels-only':>12}  {'student-teacher':>16}")
        for i, (a, b) in enumerate(zip(curves["labels_only"], curves["student_teacher"]), 1):
            print(f"{i:>5}  {a:>12.4f}  {b:>16.4f}")


def test_quantized_error_close_to_float(curves, full_only):
    """Paper: labels-only fine-tuning ends < ~1 point above float; allow a
    wider band at surrogate scale."""
    gap = curves["labels_only"][-1] - curves["float_error"]
    assert gap < 0.12


def test_student_teacher_not_worse_than_labels_only(curves, full_only):
    """Figure 3's key message: the student-teacher curve ends at or below
    the labels-only curve."""
    assert curves["student_teacher"][-1] <= curves["labels_only"][-1] + 0.02


def test_finetuning_improves_over_initial_quantized_error(curves, full_only):
    assert curves["labels_only"][-1] <= curves["labels_only"][0] + 0.02
    assert curves["student_teacher"][-1] <= curves["student_teacher"][0] + 0.02


def test_bench_one_distillation_epoch(imagenet_problem, benchmark):
    """Time a single phase-2 (student-teacher) epoch."""
    train = imagenet_problem["train"]
    test = imagenet_problem["test"]
    float_net = imagenet_problem["net"]
    config = MFDFPConfig(phase2_epochs=1, lr=5e-3, batch_size=32)
    student = MFDFPNetwork.from_float(float_net.clone(), train.x[:256])

    def one_epoch():
        return phase2_distill(
            student, float_net, train, test, config, rng=np.random.default_rng(0)
        )

    history = benchmark.pedantic(one_epoch, rounds=1, iterations=1)
    assert len(history.epochs) == 1
