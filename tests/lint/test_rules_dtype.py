"""dtype-discipline: explicit dtype on array creation in nn/ and core/."""

import textwrap

from repro.lint.rules.dtype import DtypeDiscipline
from repro.lint.runner import lint_source

IN_SCOPE = "repro/nn/layers/dense.py"


def run(src, relpath=IN_SCOPE):
    return lint_source(textwrap.dedent(src), rules=[DtypeDiscipline], relpath=relpath)


class TestViolating:
    def test_zeros_without_dtype_flagged(self):
        findings = run("import numpy as np\nout = np.zeros((4, 4))\n")
        assert [f.rule for f in findings] == ["dtype-discipline"]
        assert "np.zeros" in findings[0].message

    def test_ones_empty_full_flagged(self):
        findings = run(
            """
            import numpy as np
            a = np.ones(3)
            b = np.empty((2, 2))
            c = np.full((2,), 7)
            """
        )
        assert len(findings) == 3

    def test_array_without_dtype_flagged(self):
        findings = run("import numpy as np\nv = np.array([1.5])\n")
        assert len(findings) == 1


class TestCompliant:
    def test_explicit_dtype_keyword_ok(self):
        findings = run(
            """
            import numpy as np
            a = np.zeros((4, 4), dtype=np.float32)
            b = np.array([1.5], dtype=np.float64)
            """
        )
        assert findings == []

    def test_array_positional_dtype_ok(self):
        assert run("import numpy as np\nv = np.array([1], np.float32)\n") == []

    def test_dtype_propagating_creators_ok(self):
        findings = run(
            """
            import numpy as np
            def f(x):
                return np.zeros_like(x), np.asarray(x), np.arange(4)
            """
        )
        assert findings == []


class TestScoping:
    def test_outside_hot_packages_not_flagged(self):
        findings = run("import numpy as np\nx = np.zeros(3)\n", relpath="repro/serve/metrics.py")
        assert findings == []

    def test_core_in_scope(self):
        findings = run("import numpy as np\nx = np.zeros(3)\n", relpath="repro/core/engine.py")
        assert len(findings) == 1
