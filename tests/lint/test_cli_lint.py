"""The ``python -m repro lint`` front end: selection, filtering, exit codes."""

import io
import json

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

VIOLATING = "import numpy as np\nrng = np.random.default_rng(0)\n"
CLEAN = "def f(rng):\n    return rng.normal(size=2)\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "bad.py").write_text(VIOLATING)
    (tmp_path / "good.py").write_text(CLEAN)
    return tmp_path


class TestExitCodes:
    def test_nonzero_on_findings(self, tree):
        assert lint_main([str(tree)], out=io.StringIO()) == 1

    def test_zero_on_clean_path(self, tree):
        assert lint_main([str(tree / "good.py")], out=io.StringIO()) == 0

    def test_usage_error_on_unknown_rule(self, tree):
        assert lint_main([str(tree), "--rules", "no-such-rule"], out=io.StringIO()) == 2

    def test_usage_error_on_missing_path(self, tmp_path):
        assert lint_main([str(tmp_path / "absent")], out=io.StringIO()) == 2


class TestRuleSelection:
    def test_selected_rule_only(self, tree):
        out = io.StringIO()
        code = lint_main([str(tree), "--rules", "rng-discipline"], out=out)
        assert code == 1
        assert "rng-discipline" in out.getvalue()

    def test_unrelated_rule_sees_nothing(self, tree):
        assert lint_main([str(tree), "--rules", "error-taxonomy"], out=io.StringIO()) == 0

    def test_list_rules(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        listing = out.getvalue()
        for name in (
            "rng-discipline", "dtype-discipline", "lock-discipline",
            "process-picklability", "resource-lifecycle", "error-taxonomy",
        ):
            assert name in listing


class TestPathFiltering:
    def test_only_given_file_is_linted(self, tree):
        out = io.StringIO()
        lint_main([str(tree / "bad.py")], out=out)
        assert "1 files checked" in out.getvalue()


class TestOutput:
    def test_text_points_at_file_and_line(self, tree):
        out = io.StringIO()
        lint_main([str(tree / "bad.py")], out=out)
        assert f"{tree / 'bad.py'}:2:" in out.getvalue()

    def test_json_format_parses_and_counts(self, tree):
        out = io.StringIO()
        code = lint_main([str(tree), "--format", "json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 1
        assert payload["counts"]["unsuppressed"] == 1
        assert payload["findings"][0]["rule"] == "rng-discipline"


class TestReproCliIntegration:
    def test_lint_subcommand_clean_path(self, tree, capsys):
        repro_main(["lint", str(tree / "good.py")])
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_subcommand_exits_nonzero_on_findings(self, tree, capsys):
        with pytest.raises(SystemExit) as exc:
            repro_main(["lint", str(tree)])
        assert exc.value.code == 1
