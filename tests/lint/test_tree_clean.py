"""Tier-1 gate: the shipped tree stays lint-clean, suppressions stay reasoned.

This is the test that makes the contracts permanent: any new unsuppressed
finding in ``src/repro`` — or any suppression added without a written
reason — fails tier-1.
"""

from pathlib import Path

import repro
from repro.lint import all_rules, run_lint

PACKAGE = Path(repro.__file__).parent


def tree_result():
    return run_lint([PACKAGE])


def test_tree_has_no_unsuppressed_findings():
    result = tree_result()
    assert result.files_checked > 50
    offenders = result.unsuppressed
    assert offenders == [], "unsuppressed lint findings:\n" + "\n".join(
        f.render() for f in offenders
    )


def test_every_suppression_carries_a_reason():
    for finding in tree_result().suppressed:
        assert finding.suppress_reason and finding.suppress_reason.strip(), finding.render()


def test_all_six_contracts_are_registered_and_exercised():
    names = set(all_rules())
    assert {
        "rng-discipline",
        "dtype-discipline",
        "lock-discipline",
        "process-picklability",
        "resource-lifecycle",
        "error-taxonomy",
    } <= names
