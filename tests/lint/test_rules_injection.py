"""injection-discipline: typed chaos faults, statically enumerable sites."""

import textwrap

from repro.lint.rules.injection import InjectionDiscipline
from repro.lint.runner import lint_source

IN_SCOPE = "repro/chaos/faults.py"


def run(src, relpath=IN_SCOPE):
    return lint_source(textwrap.dedent(src), rules=[InjectionDiscipline], relpath=relpath)


class TestViolating:
    def test_builtin_raise_in_chaos_flagged(self):
        findings = run(
            """
            def fault_disk_full(plan, rule, ctx):
                raise OSError("no space left")
            """
        )
        assert [f.rule for f in findings] == ["injection-discipline"]
        assert "OSError" in findings[0].message
        assert "typed" in findings[0].message

    def test_bare_name_reraise_flagged(self):
        findings = run(
            """
            def fault_broken(plan, rule, ctx):
                raise RuntimeError
            """
        )
        assert len(findings) == 1
        assert "RuntimeError" in findings[0].message

    def test_non_literal_inject_site_flagged_everywhere(self):
        findings = run(
            """
            def read(path, site):
                inject(site, path=path)
            """,
            relpath="repro/io/artifacts.py",
        )
        assert len(findings) == 1
        assert "statically enumerable" in findings[0].message

    def test_computed_site_name_flagged(self):
        findings = run(
            """
            def read(path):
                inject("io." + kind + ".read", path=path)
            """,
            relpath="repro/io/artifacts.py",
        )
        assert len(findings) == 1


class TestCompliant:
    def test_typed_chaos_raise_ok(self):
        findings = run(
            """
            from repro.chaos.errors import FaultPlanError

            def fault_needs_path(plan, rule, ctx):
                raise FaultPlanError("fault needs a 'path' in the context")
            """
        )
        assert findings == []

    def test_owning_layer_hierarchy_ok(self):
        findings = run(
            """
            def fault_corrupt(plan, rule, ctx):
                from repro.io.artifacts import ArtifactCorruptError

                raise ArtifactCorruptError("injected corruption")
            """
        )
        assert findings == []

    def test_builtin_raise_outside_chaos_not_this_rules_business(self):
        # error-taxonomy owns raises in the layers; this rule only polices
        # the harness itself.
        findings = run(
            "def load(path):\n    raise ValueError('bad')\n",
            relpath="repro/io/artifacts.py",
        )
        assert findings == []

    def test_literal_inject_site_ok(self):
        findings = run(
            """
            def read(path):
                inject("io.artifact.read", path=path)
            """,
            relpath="repro/io/artifacts.py",
        )
        assert findings == []

    def test_site_constant_from_register_site_ok(self):
        # The one blessed indirection: SITE = register_site("literal", ...)
        # keeps the catalog enumerable; firing through a *plan* attribute
        # is not an inject() call at all.
        findings = run(
            """
            ENGINE_RUN_SITE = register_site("serve.engine.run", layer="serve", description="x")

            def run(self, batch):
                self._plan.fire(ENGINE_RUN_SITE, {"label": self.label})
            """,
            relpath="repro/serve/faults.py",
        )
        assert findings == []

    def test_bare_reraise_ok(self):
        findings = run(
            """
            def fault_wrap(plan, rule, ctx):
                try:
                    ctx["fn"]()
                except Exception:
                    raise
            """
        )
        assert findings == []
