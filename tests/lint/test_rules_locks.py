"""lock-discipline: mixed writes, unguarded counters, blocking under locks."""

import textwrap

from repro.lint.rules.locks import LockDiscipline
from repro.lint.runner import lint_source

IN_SCOPE = "repro/serve/runtime.py"


def run(src, relpath=IN_SCOPE):
    return lint_source(textwrap.dedent(src), rules=[LockDiscipline], relpath=relpath)


class TestMixedWrites:
    VIOLATING = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def add(self, n):
            with self._lock:
                self.total = self.total + n

        def reset(self):
            self.total = 0
    """

    def test_locked_elsewhere_unlocked_here_flagged(self):
        findings = run(self.VIOLATING)
        assert len(findings) == 1
        assert "Counter.total" in findings[0].message
        # Anchored at the unguarded write in reset(), not the guarded one.
        assert findings[0].line == 14

    def test_all_writes_locked_ok(self):
        findings = run(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total = self.total + n

                def reset(self):
                    with self._lock:
                        self.total = 0
            """
        )
        assert findings == []

    def test_locked_suffix_method_exempt(self):
        findings = run(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self._add_locked(n)

                def _add_locked(self, n):
                    self.total = self.total + n
            """
        )
        assert findings == []


class TestUnguardedCounters:
    def test_augassign_outside_lock_in_locked_class_flagged(self):
        findings = run(
            """
            import threading

            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def record(self):
                    self.hits += 1
            """
        )
        assert len(findings) == 1
        assert "read-modify-write" in findings[0].message

    def test_augassign_under_lock_ok(self):
        findings = run(
            """
            import threading

            class Metrics:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def record(self):
                    with self._lock:
                        self.hits += 1
            """
        )
        assert findings == []

    def test_docstring_marked_class_without_lock_flagged(self):
        findings = run(
            """
            class Probe:
                \"\"\"Call count shared across threads.\"\"\"

                def __init__(self):
                    self.calls = 0

                def run(self):
                    self.calls += 1
            """
        )
        assert len(findings) == 1

    def test_single_owner_class_not_flagged(self):
        findings = run(
            """
            class Accumulator:
                \"\"\"Plain sequential helper.\"\"\"

                def __init__(self):
                    self.total = 0

                def add(self, n):
                    self.total += n
            """
        )
        assert findings == []


class TestBlockingUnderLock:
    def test_future_result_under_lock_flagged(self):
        findings = run(
            """
            def drain(self, fut):
                with self._lock:
                    return fut.result()
            """
        )
        assert len(findings) == 1
        assert "blocking call" in findings[0].message

    def test_time_sleep_under_lock_flagged(self):
        findings = run(
            """
            import time

            def backoff(self):
                with self._lock:
                    time.sleep(0.1)
            """
        )
        assert len(findings) == 1

    def test_queue_put_under_lock_flagged(self):
        findings = run(
            """
            def enqueue(self, item):
                with self._lock:
                    self._task_queue.put(item)
            """
        )
        assert len(findings) == 1

    def test_dict_get_under_lock_ok(self):
        findings = run(
            """
            def lookup(self, key):
                with self._lock:
                    return self._engines.get(key)
            """
        )
        assert findings == []

    def test_condition_wait_under_lock_ok(self):
        # Condition.wait releases the lock by contract: the actor idiom.
        findings = run(
            """
            def next_item(self):
                with self.work:
                    while not self._queue_nonempty():
                        self.work.wait()
            """
        )
        assert findings == []

    def test_result_outside_lock_ok(self):
        findings = run(
            """
            def drain(self, fut):
                with self._lock:
                    self.pending = None
                return fut.result()
            """
        )
        assert findings == []


class TestScoping:
    def test_outside_concurrent_tiers_not_flagged(self):
        src = """
        def drain(self, fut):
            with self._lock:
                return fut.result()
        """
        assert run(src, relpath="repro/nn/trainer.py") == []
