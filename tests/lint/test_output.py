"""Finding rendering and the JSON report schema."""

import json

from repro.lint.findings import Finding, LintResult
from repro.lint.rules.rng import RngDiscipline
from repro.lint.runner import lint_source


def test_render_is_path_line_col_rule_message():
    f = Finding(rule="r", path="a/b.py", line=7, col=3, message="boom")
    assert f.render() == "a/b.py:7:3: r: boom"


def test_render_shows_suppression_reason():
    f = Finding(rule="r", path="a.py", line=1, col=0, message="m").suppress("why not")
    assert f.render().endswith("[suppressed: why not]")


def test_findings_sorted_by_location():
    src = (
        "import numpy as np\n"
        "b = np.random.default_rng(1)\n"
        "a = np.random.normal()\n"
    )
    findings = lint_source(src, rules=[RngDiscipline])
    assert [f.line for f in findings] == [2, 3]


class TestJsonSchema:
    def result(self):
        findings = lint_source(
            "import numpy as np\n"
            "a = np.random.default_rng(1)\n"
            "b = np.random.default_rng(2)  # repro-lint: disable=rng-discipline (fixture)\n",
            rules=[RngDiscipline],
        )
        res = LintResult(findings=findings, files_checked=1)
        return res, res.as_dict()

    def test_top_level_schema(self):
        _, payload = self.result()
        assert set(payload) == {"version", "files_checked", "counts", "findings"}
        assert payload["version"] == 1
        assert payload["files_checked"] == 1

    def test_counts_are_consistent(self):
        res, payload = self.result()
        counts = payload["counts"]
        assert counts == {"total": 2, "suppressed": 1, "unsuppressed": 1}
        assert counts["total"] == len(payload["findings"])
        assert res.exit_code == 1

    def test_finding_entry_schema(self):
        _, payload = self.result()
        for entry in payload["findings"]:
            assert set(entry) == {
                "rule", "path", "line", "col", "message",
                "rationale", "suppressed", "suppress_reason",
            }
        suppressed = [e for e in payload["findings"] if e["suppressed"]]
        assert suppressed[0]["suppress_reason"] == "fixture"

    def test_payload_is_json_serializable(self):
        _, payload = self.result()
        assert json.loads(json.dumps(payload)) == payload
