"""Inline suppression grammar: reasons required, same-line scope, meta-findings."""

import textwrap

from hypothesis import given, strategies as st

from repro.lint.findings import Finding, LintResult
from repro.lint.rules.rng import RngDiscipline
from repro.lint.runner import lint_source
from repro.lint.suppress import SYNTAX_RULE, parse_suppressions

VIOLATION = "import numpy as np\nrng = np.random.default_rng(0){comment}\n"


def run(src):
    return lint_source(textwrap.dedent(src), rules=[RngDiscipline])


class TestDirectiveParsing:
    def test_directive_with_reason_parses(self):
        src = "x = 1  # repro-lint: disable=rng-discipline (fixed seed is the contract)\n"
        by_line, findings = parse_suppressions(src, "<t>")
        assert findings == []
        assert by_line[1].rules == frozenset({"rng-discipline"})
        assert by_line[1].reason == "fixed seed is the contract"

    def test_multi_rule_directive(self):
        src = "x = 1  # repro-lint: disable=a-rule,b-rule (shared justification)\n"
        by_line, _ = parse_suppressions(src, "<t>")
        assert by_line[1].rules == frozenset({"a-rule", "b-rule"})

    def test_reason_may_contain_nested_parens(self):
        src = "x = 1  # repro-lint: disable=r (default (see docs) is deliberate)\n"
        by_line, findings = parse_suppressions(src, "<t>")
        assert findings == []
        assert by_line[1].reason == "default (see docs) is deliberate"

    def test_directive_inside_string_ignored(self):
        src = 's = "# repro-lint: disable=r (not a comment)"\n'
        by_line, findings = parse_suppressions(src, "<t>")
        assert by_line == {} and findings == []

    def test_missing_reason_is_syntax_finding(self):
        src = "x = 1  # repro-lint: disable=rng-discipline\n"
        by_line, findings = parse_suppressions(src, "<t>")
        assert by_line == {}
        assert [f.rule for f in findings] == [SYNTAX_RULE]
        assert "reason" in findings[0].message

    def test_malformed_directive_is_syntax_finding(self):
        src = "x = 1  # repro-lint: enable=rng-discipline (nope)\n"
        by_line, findings = parse_suppressions(src, "<t>")
        assert by_line == {}
        assert [f.rule for f in findings] == [SYNTAX_RULE]


class TestSuppressionSemantics:
    def test_covering_directive_suppresses(self):
        findings = run(
            VIOLATION.format(
                comment="  # repro-lint: disable=rng-discipline (test default)"
            )
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].suppress_reason == "test default"

    def test_suppressed_findings_do_not_affect_exit_code(self):
        findings = run(
            VIOLATION.format(
                comment="  # repro-lint: disable=rng-discipline (test default)"
            )
        )
        assert LintResult(findings=findings).exit_code == 0

    def test_non_covering_rule_does_not_suppress(self):
        findings = run(
            VIOLATION.format(comment="  # repro-lint: disable=dtype-discipline (wrong rule)")
        )
        assert len(findings) == 1
        assert not findings[0].suppressed

    def test_directive_on_other_line_does_not_suppress(self):
        src = (
            "# repro-lint: disable=rng-discipline (wrong line)\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
        )
        findings = run(src)
        assert len(findings) == 1
        assert not findings[0].suppressed

    def test_reasonless_directive_leaves_finding_and_adds_meta(self):
        findings = run(VIOLATION.format(comment="  # repro-lint: disable=rng-discipline"))
        rules = sorted(f.rule for f in findings)
        assert rules == ["rng-discipline", SYNTAX_RULE]
        assert all(not f.suppressed for f in findings)

    def test_syntax_finding_cannot_be_suppressed(self):
        # disable=suppression-syntax is rejected as malformed outright.
        src = "x = 1  # repro-lint: disable=suppression-syntax (gaming the meta rule)\n"
        by_line, findings = parse_suppressions(src, "<t>")
        assert by_line == {}
        assert [f.rule for f in findings] == [SYNTAX_RULE]


_reasons = st.text(
    st.characters(min_codepoint=32, max_codepoint=126, blacklist_characters="()\\#"),
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip())


class TestSuppressionProperty:
    @given(reason=_reasons)
    def test_any_reasoned_suppression_zeroes_exit_code(self, reason):
        """Property: a covering suppression with *any* non-empty reason keeps
        the finding out of the exit code, and the reason round-trips."""
        findings = run(
            VIOLATION.format(comment=f"  # repro-lint: disable=rng-discipline ({reason})")
        )
        result = LintResult(findings=findings)
        assert len(findings) == 1 and findings[0].suppressed
        assert result.exit_code == 0
        assert findings[0].suppress_reason == reason.strip()

    @given(
        suppressed_flags=st.lists(st.booleans(), min_size=0, max_size=8),
    )
    def test_exit_code_depends_only_on_unsuppressed(self, suppressed_flags):
        findings = [
            Finding(
                rule="r",
                path="p.py",
                line=i + 1,
                col=0,
                message="m",
                suppressed=flag,
                suppress_reason="why" if flag else None,
            )
            for i, flag in enumerate(suppressed_flags)
        ]
        result = LintResult(findings=findings)
        assert result.exit_code == (0 if all(suppressed_flags) else 1 if suppressed_flags else 0)
