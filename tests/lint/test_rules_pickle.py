"""process-picklability: no lambdas/local callables across process edges."""

import textwrap

from repro.lint.rules.pickle import ProcessPicklability
from repro.lint.runner import lint_source


def run(src, relpath=None):
    return lint_source(textwrap.dedent(src), rules=[ProcessPicklability], relpath=relpath)


class TestViolating:
    def test_lambda_into_runner_submit_flagged(self):
        findings = run(
            """
            from repro.parallel import ProcessPoolRunner

            def go():
                runner = ProcessPoolRunner(2)
                return runner.submit(lambda x: x + 1, 1)
            """
        )
        assert [f.rule for f in findings] == ["process-picklability"]
        assert "lambda" in findings[0].message

    def test_nested_function_into_runner_flagged(self):
        findings = run(
            """
            from repro.parallel import ProcessPoolRunner

            def go(items):
                def task(item):
                    return item * 2

                with ProcessPoolRunner(2) as runner:
                    return runner.map([task for _ in items])
            """
        )
        assert len(findings) == 1
        assert "task" in findings[0].message

    def test_lambda_list_into_process_parallel_map_flagged(self):
        findings = run(
            """
            from repro.analysis.campaign import parallel_map

            def go():
                return parallel_map([lambda: 1, lambda: 2], backend="process")
            """
        )
        assert len(findings) == 2

    def test_runner_named_receiver_flagged(self):
        findings = run(
            """
            def go(self):
                return self.runner.call(lambda: 0)
            """
        )
        assert len(findings) == 1


class TestCompliant:
    def test_module_level_function_ok(self):
        findings = run(
            """
            from repro.parallel import ProcessPoolRunner

            def task(x):
                return x + 1

            def go():
                runner = ProcessPoolRunner(2)
                return runner.submit(task, 1)
            """
        )
        assert findings == []

    def test_thread_backend_lambdas_ok(self):
        findings = run(
            """
            from repro.analysis.campaign import parallel_map

            def go():
                return parallel_map([lambda: 1], backend="thread")
            """
        )
        assert findings == []

    def test_thread_pool_executor_closures_ok(self):
        # ThreadPoolExecutor receivers named `pool` take closures freely.
        findings = run(
            """
            from concurrent.futures import ThreadPoolExecutor

            def go(fn):
                with ThreadPoolExecutor(4) as pool:
                    return pool.submit(lambda: fn()).result()
            """
        )
        assert findings == []
