"""resource-lifecycle: SharedMemory ownership and with-managed opens in io."""

import textwrap

from repro.lint.rules.lifecycle import ResourceLifecycle
from repro.lint.runner import lint_source


def run(src, relpath=None):
    return lint_source(textwrap.dedent(src), rules=[ResourceLifecycle], relpath=relpath)


class TestSharedMemory:
    SRC = """
    from multiprocessing import shared_memory

    def grab(n):
        return shared_memory.SharedMemory(create=True, size=n)
    """

    def test_outside_arena_flagged(self):
        findings = run(self.SRC, relpath="repro/serve/runtime.py")
        assert [f.rule for f in findings] == ["resource-lifecycle"]
        assert "arena" in findings[0].message

    def test_inside_owning_arena_module_ok(self):
        assert run(self.SRC, relpath="repro/parallel/arena.py") == []


class TestOpenInIo:
    def test_bare_open_flagged(self):
        findings = run(
            """
            def read(path):
                f = open(path)
                data = f.read()
                f.close()
                return data
            """,
            relpath="repro/io/store.py",
        )
        assert len(findings) == 1
        assert "with open" in findings[0].message

    def test_with_open_ok(self):
        findings = run(
            """
            def read(path):
                with open(path) as f:
                    return f.read()
            """,
            relpath="repro/io/store.py",
        )
        assert findings == []

    def test_bare_open_outside_io_ok(self):
        findings = run(
            "def read(path):\n    return open(path).read()\n",
            relpath="repro/analysis/campaign.py",
        )
        assert findings == []
