"""rng-discipline: module-state numpy randomness and literal-seeded generators."""

import textwrap

from repro.lint.rules.rng import RngDiscipline
from repro.lint.runner import lint_source


def run(src, relpath=None):
    return lint_source(textwrap.dedent(src), rules=[RngDiscipline], relpath=relpath)


class TestViolating:
    def test_module_state_call_flagged(self):
        findings = run(
            """
            import numpy as np
            x = np.random.normal(0.0, 1.0, size=10)
            """
        )
        assert [f.rule for f in findings] == ["rng-discipline"]
        assert "module-state" in findings[0].message
        assert findings[0].line == 3

    def test_module_state_seed_flagged(self):
        findings = run("import numpy as np\nnp.random.seed(7)\n")
        assert len(findings) == 1

    def test_numpy_spelling_flagged(self):
        findings = run("import numpy\nnumpy.random.shuffle([1, 2])\n")
        assert len(findings) == 1

    def test_literal_seeded_default_rng_flagged(self):
        findings = run("import numpy as np\nrng = np.random.default_rng(0)\n")
        assert len(findings) == 1
        assert "literal-seeded" in findings[0].message

    def test_imported_default_rng_literal_flagged(self):
        findings = run(
            """
            from numpy.random import default_rng
            rng = default_rng(42)
            """
        )
        assert len(findings) == 1


class TestCompliant:
    def test_passed_in_generator_ok(self):
        assert run("def f(rng):\n    return rng.normal(size=3)\n") == []

    def test_default_rng_from_parameter_ok(self):
        assert run("import numpy as np\ndef f(seed):\n    return np.random.default_rng(seed)\n") == []

    def test_default_rng_from_seed_sequence_ok(self):
        findings = run(
            """
            import numpy as np
            def child(ss):
                return np.random.default_rng(ss.spawn(1)[0])
            """
        )
        assert findings == []

    def test_default_rng_unseeded_ok(self):
        # No argument = OS entropy; only *literal* seeds are the hazard.
        assert run("import numpy as np\nrng = np.random.default_rng()\n") == []


class TestScoping:
    def test_cli_module_excluded(self):
        findings = run(
            "import numpy as np\nrng = np.random.default_rng(0)\n",
            relpath="repro/cli.py",
        )
        assert findings == []

    def test_library_module_in_scope(self):
        findings = run(
            "import numpy as np\nrng = np.random.default_rng(0)\n",
            relpath="repro/nn/trainer.py",
        )
        assert len(findings) == 1
