"""error-taxonomy: typed hierarchies instead of bare ValueError/RuntimeError."""

import textwrap

from repro.lint.rules.errors import ErrorTaxonomy
from repro.lint.runner import lint_source

IN_SCOPE = "repro/serve/runtime.py"


def run(src, relpath=IN_SCOPE):
    return lint_source(textwrap.dedent(src), rules=[ErrorTaxonomy], relpath=relpath)


class TestViolating:
    def test_bare_value_error_flagged(self):
        findings = run(
            """
            def submit(self, batch):
                if batch is None:
                    raise ValueError("no batch")
            """
        )
        assert [f.rule for f in findings] == ["error-taxonomy"]
        assert "ServeError" in findings[0].message

    def test_bare_runtime_error_flagged(self):
        findings = run(
            "def stop(self):\n    raise RuntimeError('already stopped')\n",
            relpath="repro/parallel/pool.py",
        )
        assert len(findings) == 1
        assert "PoolError" in findings[0].message

    def test_io_names_artifact_hierarchy(self):
        findings = run(
            "def load(path):\n    raise ValueError('bad container')\n",
            relpath="repro/io/artifacts.py",
        )
        assert len(findings) == 1
        assert "ArtifactError" in findings[0].message


class TestCompliant:
    def test_typed_raise_ok(self):
        findings = run(
            """
            from repro.serve.errors import QueueFullError

            def submit(self, batch):
                raise QueueFullError("queue is full")
            """
        )
        assert findings == []

    def test_constructor_validation_exempt(self):
        findings = run(
            """
            class Policy:
                def __init__(self, max_batch):
                    if max_batch < 1:
                        raise ValueError("max_batch must be >= 1")
            """
        )
        assert findings == []

    def test_post_init_validation_exempt(self):
        findings = run(
            """
            class Policy:
                def __post_init__(self):
                    if self.max_batch < 1:
                        raise ValueError("max_batch must be >= 1")
            """
        )
        assert findings == []

    def test_reraise_without_exc_ok(self):
        findings = run(
            """
            def forward(self):
                try:
                    self._run()
                except Exception:
                    raise
            """
        )
        assert findings == []


class TestScoping:
    def test_outside_owning_packages_not_flagged(self):
        findings = run(
            "def f(x):\n    raise ValueError('bad')\n",
            relpath="repro/nn/loss.py",
        )
        assert findings == []
