"""The pinned ruff baseline stays clean and stays pinned.

ruff is the syntax-level layer under ``repro lint`` (see
docs/static-analysis.md).  CI installs the pinned version and runs
``ruff check src tests``; this test runs the same command locally when
a ruff binary is available, and verifies the pin itself regardless, so
the config cannot silently drift from what CI enforces.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_ruff_config_is_pinned():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.ruff]" in pyproject
    assert 'required-version = "==' in pyproject, (
        "ruff must be version-pinned so local and CI results agree"
    )
    assert "[tool.ruff.lint]" in pyproject
    assert "select" in pyproject


def test_ci_workflow_pins_the_same_ruff_version():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    pin = next(
        line.split('"==')[1].split('"')[0]
        for line in pyproject.splitlines()
        if line.startswith("required-version")
    )
    assert f"ruff=={pin}" in workflow, (
        f"ci.yml must install ruff=={pin} to match pyproject.toml"
    )


def test_tree_is_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed in this environment; CI runs it")
    proc = subprocess.run(
        ["ruff", "check", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}\n{proc.stderr}"


def test_selected_rule_classes_hold_on_tree():
    """Local stand-in for the ruff gate: the defect classes ruff's
    baseline selection targets (undefined names, return outside
    function, invalid syntax) are all compile-time detectable, so
    ``compile()`` over the tree approximates E9/F7 without the binary.
    """
    failures = []
    for root in ("src", "tests", "benchmarks"):
        for path in sorted((REPO_ROOT / root).rglob("*.py")):
            try:
                compile(path.read_text(), str(path), "exec")
            except SyntaxError as exc:
                failures.append(f"{path}: {exc}")
    assert not failures, "\n".join(failures)
    assert sys.version_info >= (3, 11)
