"""CLI smoke tests (fast subcommands only; table2/fig3 train and are
exercised through their underlying library functions elsewhere)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "schedule", "fig3", "serve"):
            args = parser.parse_args([cmd])
            assert callable(args.fn)

    def test_epochs_flag(self):
        args = build_parser().parse_args(["table2", "--epochs", "4"])
        assert args.epochs == 4

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    def test_training_flags_default_off(self, command):
        args = build_parser().parse_args([command])
        assert args.no_compiled is False
        assert args.profile is False

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    def test_training_flags_parse(self, command):
        args = build_parser().parse_args([command, "--no-compiled", "--profile"])
        assert args.no_compiled is True
        assert args.profile is True

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--models", "alexnet,cifar10_full",
                "--workers", "4",
                "--batch", "8",
                "--max-queue", "128",
                "--requests", "32",
            ]
        )
        assert args.models == "alexnet,cifar10_full"
        assert args.workers == 4 and args.max_queue == 128
        assert args.batch == 8 and args.requests == 32

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.models is None  # resolved at run time: zoo default or store contents
        assert args.store is None
        assert args.workers == 2 and args.max_queue == 1024
        assert args.target_p99_ms is None and args.min_batch == 1
        assert args.quarantine_after == 3 and args.health is False

    def test_serve_slo_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--target-p99-ms", "5.5",
                "--min-batch", "2",
                "--quarantine-after", "5",
                "--health",
            ]
        )
        assert args.target_p99_ms == 5.5 and args.min_batch == 2
        assert args.quarantine_after == 5 and args.health is True

    def test_serve_rejects_nonpositive_slo_target(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--target-p99-ms", "0"])

    def test_serve_store_flag(self):
        args = build_parser().parse_args(["serve", "--store", "/tmp/somewhere"])
        assert args.store == "/tmp/somewhere"

    def test_export_flags(self):
        args = build_parser().parse_args(["export", "--store", "dir", "--models", "a,b"])
        assert args.store == "dir" and args.models == "a,b"
        with pytest.raises(SystemExit):  # --store is required
            build_parser().parse_args(["export"])

    def test_import_flags(self):
        args = build_parser().parse_args(["import", "file.npz", "--store", "dir", "--name", "x"])
        assert args.src == "file.npz" and args.store == "dir" and args.name == "x"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["import", "file.npz"])

    def test_resume_flags(self):
        args = build_parser().parse_args(["resume", "--checkpoint-dir", "ck", "--epochs", "9"])
        assert args.checkpoint_dir == "ck" and args.epochs == 9
        assert args.no_compiled is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    def test_checkpoint_flags(self, command):
        args = build_parser().parse_args(
            [command, "--checkpoint-dir", "ck", "--checkpoint-every", "3"]
        )
        assert args.checkpoint_dir == "ck" and args.checkpoint_every == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--checkpoint-every", "0"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    @pytest.mark.parametrize("epochs", ["0", "-3"])
    def test_nonpositive_epochs_rejected(self, command, epochs):
        """Regression: bare type=int let --epochs 0/-3 crash deep in training."""
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--epochs", epochs])

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "faults", "--jobs", "8", "--points", "3", "--epochs", "2"]
        )
        assert args.campaign == "faults"
        assert args.jobs == 8 and args.points == 3 and args.epochs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "bitwidth"])
        assert args.campaign == "bitwidth"
        # --jobs None = "every core", resolved by run_campaign/resolve_jobs
        assert args.jobs is None and args.points is None and args.epochs == 3
        assert args.backend == "thread"

    def test_sweep_backend_flag(self):
        args = build_parser().parse_args(["sweep", "faults", "--backend", "process"])
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "faults", "--backend", "coroutine"])

    def test_serve_backend_flags(self):
        args = build_parser().parse_args(["serve", "--backend", "process", "--pool-workers", "2"])
        assert args.backend == "process" and args.pool_workers == 2
        defaults = build_parser().parse_args(["serve"])
        assert defaults.backend == "thread" and defaults.pool_workers is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--pool-workers", "0"])

    def test_sweep_rejects_unknown_campaign(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "voltage"])

    def test_sweep_rejects_nonpositive_values(self):
        for flag in ("--jobs", "--points", "--epochs"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "faults", flag, "0"])

    def test_sweep_rejects_excess_points_before_training(self):
        """--points beyond the campaign's set fails fast, not after training."""
        with pytest.raises(SystemExit, match="supports 1..6 points"):
            main(["sweep", "faults", "--points", "99"])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.bits == [4, 8] and args.min_exps == [-7, -9]
        assert args.weight_modes == ["deterministic"]
        assert args.num_pus == [1, 2] and args.technologies == ["65nm"]
        assert args.seed == 0 and args.rung_epochs == [0, 1]
        assert args.final_epochs == 2 and args.margin == 0.02
        assert args.no_prune is False and args.checkpoint_dir is None
        assert args.jobs is None and args.backend == "thread" and args.epochs == 3

    def test_explore_flags(self):
        args = build_parser().parse_args(
            [
                "explore",
                "--bits", "4,6,8",
                "--min-exps=-5,-7",
                "--weight-modes", "deterministic,stochastic",
                "--num-pus", "1,2,4",
                "--technologies", "65nm,28nm",
                "--seed", "7",
                "--rung-epochs", "0,1,2",
                "--final-epochs", "3",
                "--margin", "0.05",
                "--no-prune",
                "--jobs", "4",
                "--backend", "process",
                "--checkpoint-dir", "ck",
            ]
        )
        assert args.bits == [4, 6, 8] and args.min_exps == [-5, -7]
        assert args.weight_modes == ["deterministic", "stochastic"]
        assert args.num_pus == [1, 2, 4] and args.technologies == ["65nm", "28nm"]
        assert args.seed == 7 and args.rung_epochs == [0, 1, 2]
        assert args.final_epochs == 3 and args.margin == 0.05 and args.no_prune is True
        assert args.jobs == 4 and args.backend == "process" and args.checkpoint_dir == "ck"

    def test_explore_rejects_bad_axis_lists(self):
        with pytest.raises(SystemExit):  # not integers
            build_parser().parse_args(["explore", "--bits", "a,b"])
        with pytest.raises(SystemExit):  # empty list
            build_parser().parse_args(["explore", "--bits", ","])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--backend", "coroutine"])

    def test_explore_rejects_invalid_space_before_training(self):
        """A bad grid must fail fast, not after paying for surrogate training."""
        with pytest.raises(SystemExit, match="error:"):
            main(["explore", "--bits", "0"])
        with pytest.raises(SystemExit, match="error:"):
            main(["explore", "--technologies", "7nm"])
        with pytest.raises(SystemExit, match="error:"):
            main(["explore", "--rung-epochs", "2,1"])
        with pytest.raises(SystemExit, match="error:"):
            main(["explore", "--margin=-0.5"])


class TestFastCommands:
    def test_table1_prints_all_designs(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Floating-point(32,32)" in out
        assert "Proposed MF-DFP(8,4)" in out
        assert "16.52" in out

    def test_table3_prints_both_networks(self, capsys):
        main(["table3"])
        out = capsys.readouterr().out
        assert "cifar10_full" in out
        assert "alexnet" in out
        assert "237.95" in out

    def test_schedule_prints_latencies(self, capsys):
        main(["schedule"])
        out = capsys.readouterr().out
        assert "fp32" in out and "mfdfp" in out
        assert "us" in out and "uJ" in out

    def test_serve_reports_multi_model_metrics(self, capsys):
        main(
            [
                "serve",
                "--models", "cifar10_full,alexnet",
                "--workers", "2",
                "--requests", "24",
                "--batch", "8",
            ]
        )
        out = capsys.readouterr().out
        assert "hosting cifar10_full, alexnet: 2 workers" in out
        assert "cifar10_full" in out and "alexnet" in out
        assert out.count("24 served") == 2  # both models served everything
        assert "modeled NPU" in out
        assert "p50" in out and "p99" in out
        assert "engine cache: 2 compiled" in out
        assert "48 served / 0 shed" in out

    def test_serve_health_prints_structured_json(self, capsys):
        import json

        main(["serve", "--models", "cifar10_full", "--workers", "1", "--health"])
        health = json.loads(capsys.readouterr().out)
        snap = health["models"]["cifar10_full"]
        assert snap["state"] == "running"
        assert snap["completed"] == 1 and snap["queue_depth"] == 0
        assert snap["restarts"] == 0 and snap["active_version"]
        assert health["workers_per_model"] == 1
        assert health["policy"]["max_failures"] == 3

    def test_sweep_runs_fault_campaign(self, capsys):
        main(["sweep", "faults", "--epochs", "1", "--points", "2", "--jobs", "2"])
        out = capsys.readouterr().out
        assert "faults campaign (2 points, --jobs 2, thread backend)" in out
        assert "ber=0e+00" in out and "ber=1e-04" in out
        assert "engine cache:" in out
        assert "modeled NPU" in out
        assert "compiled trainer" in out  # surrogate training took the fast path

    def test_fig3_profile_prints_layer_breakdown(self, capsys):
        main(["fig3", "--epochs", "1", "--profile"])
        out = capsys.readouterr().out
        assert "per-layer training time" in out
        assert "compiled fast path" in out
        assert "conv1" in out and "ip1" in out
        assert "float baseline error" in out  # the figure still prints

    def test_fig3_no_compiled_profiles_eager_layers(self, capsys):
        main(["fig3", "--epochs", "1", "--no-compiled", "--profile"])
        out = capsys.readouterr().out
        assert "per-layer training time" in out
        assert "eager layers" in out
        assert "conv1" in out


class TestPersistenceCommands:
    @pytest.fixture
    def tiny_store(self, tmp_path, monkeypatch):
        """A store + zoo monkeypatched down to one fast tiny deployable."""
        import numpy as np

        import repro.zoo as zoo
        from repro.core.mfdfp import deploy_calibrated
        from repro.zoo import cifar10_small

        def tiny_builder():
            net = cifar10_small(size=8, width=4, rng=np.random.default_rng(0), dtype=np.float64)
            return deploy_calibrated(net, np.random.default_rng(1).normal(size=(16, 3, 8, 8)))

        monkeypatch.setattr(zoo, "DEPLOYABLE_BUILDERS", {"tiny": tiny_builder})
        return tmp_path / "store"

    def test_export_then_serve_from_store(self, tiny_store, capsys):
        main(["export", "--store", str(tiny_store)])
        out = capsys.readouterr().out
        assert "tiny" in out and "v0001" in out and "fingerprint" in out
        assert "1 model(s) published" in out

        main(["serve", "--store", str(tiny_store), "--requests", "8", "--workers", "1"])
        out = capsys.readouterr().out
        assert "hosting tiny: 1 workers" in out
        assert "8 served" in out

    def test_export_unknown_model_fails_cleanly(self, tiny_store):
        with pytest.raises(SystemExit, match="unknown deployable"):
            main(["export", "--store", str(tiny_store), "--models", "ghost"])

    def test_serve_missing_store_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="error: .*not a repro artifact store"):
            main(["serve", "--store", str(tmp_path / "nope")])

    def test_export_with_any_unknown_model_publishes_nothing(self, tiny_store):
        """Names validate up front: a typo must not half-populate the store."""
        from repro.io import ArtifactStore

        with pytest.raises(SystemExit, match="unknown deployable"):
            main(["export", "--store", str(tiny_store), "--models", "tiny,ghost"])
        assert ArtifactStore(tiny_store).model_names() == []

    def test_import_roundtrip(self, tiny_store, tmp_path, capsys):
        import numpy as np

        from repro.core.mfdfp import deploy_calibrated
        from repro.io import ArtifactStore, save_deployed
        from repro.zoo import cifar10_small

        net = cifar10_small(size=8, width=4, rng=np.random.default_rng(2), dtype=np.float64)
        deployed = deploy_calibrated(net, np.random.default_rng(3).normal(size=(16, 3, 8, 8)))
        src = tmp_path / "artifact.npz"
        save_deployed(deployed, src)
        main(["import", str(src), "--store", str(tiny_store), "--name", "imported"])
        out = capsys.readouterr().out
        assert "imported" in out and "v0001" in out
        assert ArtifactStore(tiny_store).model_names() == ["imported"]

    def test_import_rejects_corrupt_file(self, tiny_store, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an artifact")
        with pytest.raises(SystemExit, match="error"):
            main(["import", str(bad), "--store", str(tiny_store)])

    def test_resume_without_checkpoint_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoint"):
            main(["resume", "--checkpoint-dir", str(tmp_path / "empty")])

    def test_resume_with_nothing_left_to_train_fails_cleanly(self, tmp_path):
        from repro.cli import _surrogate_trainer
        from repro.io import Checkpointer

        trainer, train, test = _surrogate_trainer()
        ck_dir = tmp_path / "ck"
        trainer.fit(train, test, epochs=2, checkpoint=Checkpointer(ck_dir))
        with pytest.raises(SystemExit, match="nothing to train"):
            main(["resume", "--checkpoint-dir", str(ck_dir), "--epochs", "2"])

    def test_resume_continues_surrogate_training(self, tmp_path, capsys):
        from repro.cli import _surrogate_trainer
        from repro.io import Checkpointer

        trainer, train, test = _surrogate_trainer()
        ck_dir = tmp_path / "ck"
        trainer.fit(train, test, epochs=1, checkpoint=Checkpointer(ck_dir))

        main(["resume", "--checkpoint-dir", str(ck_dir), "--epochs", "2"])
        out = capsys.readouterr().out
        assert "resuming surrogate training at epoch 2/2" in out
        assert "(resumed)" in out
        # The resumed epoch's numbers must match an uninterrupted run.
        ref, train, test = _surrogate_trainer()
        ref.fit(train, test, epochs=2)
        assert f"{ref.history.epochs[1].train_loss:.4f}" in out
        assert f"{ref.history.epochs[1].val_error:.4f}" in out
