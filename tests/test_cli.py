"""CLI smoke tests (fast subcommands only; table2/fig3 train and are
exercised through their underlying library functions elsewhere)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "schedule", "fig3", "serve"):
            args = parser.parse_args([cmd])
            assert callable(args.fn)

    def test_epochs_flag(self):
        args = build_parser().parse_args(["table2", "--epochs", "4"])
        assert args.epochs == 4

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--models", "alexnet,cifar10_full",
                "--workers", "4",
                "--batch", "8",
                "--max-queue", "128",
                "--requests", "32",
            ]
        )
        assert args.models == "alexnet,cifar10_full"
        assert args.workers == 4 and args.max_queue == 128
        assert args.batch == 8 and args.requests == 32

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.models == "cifar10_full"
        assert args.workers == 2 and args.max_queue == 1024

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])


class TestFastCommands:
    def test_table1_prints_all_designs(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Floating-point(32,32)" in out
        assert "Proposed MF-DFP(8,4)" in out
        assert "16.52" in out

    def test_table3_prints_both_networks(self, capsys):
        main(["table3"])
        out = capsys.readouterr().out
        assert "cifar10_full" in out
        assert "alexnet" in out
        assert "237.95" in out

    def test_schedule_prints_latencies(self, capsys):
        main(["schedule"])
        out = capsys.readouterr().out
        assert "fp32" in out and "mfdfp" in out
        assert "us" in out and "uJ" in out

    def test_serve_reports_multi_model_metrics(self, capsys):
        main(
            [
                "serve",
                "--models", "cifar10_full,alexnet",
                "--workers", "2",
                "--requests", "24",
                "--batch", "8",
            ]
        )
        out = capsys.readouterr().out
        assert "hosting cifar10_full, alexnet: 2 workers" in out
        assert "cifar10_full" in out and "alexnet" in out
        assert out.count("24 served") == 2  # both models served everything
        assert "modeled NPU" in out
        assert "p50" in out and "p99" in out
        assert "engine cache: 2 compiled" in out
        assert "48 served / 0 shed" in out
