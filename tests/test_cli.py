"""CLI smoke tests (fast subcommands only; table2/fig3 train and are
exercised through their underlying library functions elsewhere)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "schedule", "fig3", "serve"):
            args = parser.parse_args([cmd])
            assert callable(args.fn)

    def test_epochs_flag(self):
        args = build_parser().parse_args(["table2", "--epochs", "4"])
        assert args.epochs == 4

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    def test_training_flags_default_off(self, command):
        args = build_parser().parse_args([command])
        assert args.no_compiled is False
        assert args.profile is False

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    def test_training_flags_parse(self, command):
        args = build_parser().parse_args([command, "--no-compiled", "--profile"])
        assert args.no_compiled is True
        assert args.profile is True

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--models", "alexnet,cifar10_full",
                "--workers", "4",
                "--batch", "8",
                "--max-queue", "128",
                "--requests", "32",
            ]
        )
        assert args.models == "alexnet,cifar10_full"
        assert args.workers == 4 and args.max_queue == 128
        assert args.batch == 8 and args.requests == 32

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.models == "cifar10_full"
        assert args.workers == 2 and args.max_queue == 1024

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    @pytest.mark.parametrize("command", ["table2", "fig3"])
    @pytest.mark.parametrize("epochs", ["0", "-3"])
    def test_nonpositive_epochs_rejected(self, command, epochs):
        """Regression: bare type=int let --epochs 0/-3 crash deep in training."""
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--epochs", epochs])

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "faults", "--jobs", "8", "--points", "3", "--epochs", "2"]
        )
        assert args.campaign == "faults"
        assert args.jobs == 8 and args.points == 3 and args.epochs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "bitwidth"])
        assert args.campaign == "bitwidth"
        assert args.jobs == 4 and args.points is None and args.epochs == 3

    def test_sweep_rejects_unknown_campaign(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "voltage"])

    def test_sweep_rejects_nonpositive_values(self):
        for flag in ("--jobs", "--points", "--epochs"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "faults", flag, "0"])

    def test_sweep_rejects_excess_points_before_training(self):
        """--points beyond the campaign's set fails fast, not after training."""
        with pytest.raises(SystemExit, match="supports 1..6 points"):
            main(["sweep", "faults", "--points", "99"])


class TestFastCommands:
    def test_table1_prints_all_designs(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Floating-point(32,32)" in out
        assert "Proposed MF-DFP(8,4)" in out
        assert "16.52" in out

    def test_table3_prints_both_networks(self, capsys):
        main(["table3"])
        out = capsys.readouterr().out
        assert "cifar10_full" in out
        assert "alexnet" in out
        assert "237.95" in out

    def test_schedule_prints_latencies(self, capsys):
        main(["schedule"])
        out = capsys.readouterr().out
        assert "fp32" in out and "mfdfp" in out
        assert "us" in out and "uJ" in out

    def test_serve_reports_multi_model_metrics(self, capsys):
        main(
            [
                "serve",
                "--models", "cifar10_full,alexnet",
                "--workers", "2",
                "--requests", "24",
                "--batch", "8",
            ]
        )
        out = capsys.readouterr().out
        assert "hosting cifar10_full, alexnet: 2 workers" in out
        assert "cifar10_full" in out and "alexnet" in out
        assert out.count("24 served") == 2  # both models served everything
        assert "modeled NPU" in out
        assert "p50" in out and "p99" in out
        assert "engine cache: 2 compiled" in out
        assert "48 served / 0 shed" in out

    def test_sweep_runs_fault_campaign(self, capsys):
        main(["sweep", "faults", "--epochs", "1", "--points", "2", "--jobs", "2"])
        out = capsys.readouterr().out
        assert "faults campaign (2 points, --jobs 2)" in out
        assert "ber=0e+00" in out and "ber=1e-04" in out
        assert "engine cache:" in out
        assert "modeled NPU" in out
        assert "compiled trainer" in out  # surrogate training took the fast path

    def test_fig3_profile_prints_layer_breakdown(self, capsys):
        main(["fig3", "--epochs", "1", "--profile"])
        out = capsys.readouterr().out
        assert "per-layer training time" in out
        assert "compiled fast path" in out
        assert "conv1" in out and "ip1" in out
        assert "float baseline error" in out  # the figure still prints

    def test_fig3_no_compiled_profiles_eager_layers(self, capsys):
        main(["fig3", "--epochs", "1", "--no-compiled", "--profile"])
        out = capsys.readouterr().out
        assert "per-layer training time" in out
        assert "eager layers" in out
        assert "conv1" in out
