"""RTL golden-vector generation."""

import numpy as np
import pytest

from repro.hw.vectors import (
    NeuronVector,
    generate_neuron_vectors,
    read_vectors,
    verify_vectors,
    write_vectors,
)


@pytest.fixture(scope="module")
def vectors():
    return generate_neuron_vectors(count=64, rng=np.random.default_rng(5))


class TestGeneration:
    def test_count(self, vectors):
        assert len(vectors) == 64

    def test_deterministic(self):
        a = generate_neuron_vectors(16, np.random.default_rng(3))
        b = generate_neuron_vectors(16, np.random.default_rng(3))
        assert a == b

    def test_corner_cases_included(self, vectors):
        """The all-max-product corners (adder-tree extremes) are present."""
        assert vectors[0].x_codes == (127,) * 16
        assert vectors[0].w_codes == (0x0,) * 16
        assert vectors[1].w_codes == (0x8,) * 16

    def test_corner_expected_values(self, vectors):
        # all +max products: 16 * 16256 at acc grid m+7=7, n=0 -> saturates
        assert vectors[0].expected == 127
        assert vectors[1].expected == -127

    def test_outputs_in_8bit_range(self, vectors):
        assert all(-127 <= v.expected <= 127 for v in vectors)

    def test_all_verify_against_model(self, vectors):
        assert verify_vectors(vectors) == 0

    def test_corrupted_vector_detected(self, vectors):
        import dataclasses

        bad = dataclasses.replace(vectors[10], expected=(vectors[10].expected + 1) % 127)
        assert verify_vectors([bad]) == 1


class TestFileFormat:
    def test_roundtrip(self, vectors, tmp_path):
        path = tmp_path / "neuron_vectors.txt"
        write_vectors(vectors, path)
        loaded = read_vectors(path)
        assert loaded == vectors

    def test_header_and_comments_skipped(self, tmp_path, vectors):
        path = tmp_path / "v.txt"
        write_vectors(vectors[:2], path)
        with open(path) as f:
            first = f.readline()
        assert first.startswith("#")
        assert len(read_vectors(path)) == 2

    def test_line_roundtrip(self, vectors):
        for v in vectors[:8]:
            assert NeuronVector.from_line(v.to_line()) == v

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            NeuronVector.from_line("1 2 3")
