"""65 nm cost model: Table 1 anchors, savings bands, scaling laws."""

import numpy as np
import pytest

from repro.hw.cost import (
    FP32_BASELINE_AREA_MM2,
    FP32_BASELINE_POWER_MW,
    PAPER_TABLE1,
    TECHNOLOGY_PRESETS,
    CostModel,
    CostModelError,
    NPUDesign,
    barrel_shifter_ge,
    fp32_adder_ge,
    fp32_multiplier_ge,
    int_adder_ge,
    int_multiplier_ge,
    register_ge,
    technology,
)
from repro.hw.memory import BufferConfig


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestComponentCounts:
    def test_fp32_multiplier_much_larger_than_shifter(self):
        assert fp32_multiplier_ge() > 50 * barrel_shifter_ge(16, 3)

    def test_fp32_adder_much_larger_than_int_adder(self):
        assert fp32_adder_ge() > 10 * int_adder_ge(20)

    def test_int_adder_linear_in_width(self):
        assert int_adder_ge(20) == 2 * int_adder_ge(10)

    def test_register_linear(self):
        assert register_ge(32) == 2 * register_ge(16)

    def test_numpy_integer_widths_accepted(self):
        assert int_adder_ge(np.int64(20)) == int_adder_ge(20)
        assert barrel_shifter_ge(np.int32(16), np.int32(3)) == barrel_shifter_ge(16, 3)


class TestComponentValidation:
    """Degenerate datapaths must fail loudly, never price as free."""

    @pytest.mark.parametrize("bad", [0, -1, -32])
    def test_nonpositive_widths_rejected(self, bad):
        for fn in (int_adder_ge, int_multiplier_ge, register_ge):
            with pytest.raises(CostModelError, match=">= 1"):
                fn(bad)
        with pytest.raises(CostModelError, match=">= 1"):
            barrel_shifter_ge(bad, 3)
        with pytest.raises(CostModelError, match=">= 1"):
            barrel_shifter_ge(16, bad)

    @pytest.mark.parametrize("bad", [2.5, "8", None, True, float("nan")])
    def test_non_integral_widths_rejected(self, bad):
        for fn in (int_adder_ge, int_multiplier_ge, register_ge):
            with pytest.raises(CostModelError, match="positive integer"):
                fn(bad)
        with pytest.raises(CostModelError, match="positive integer"):
            barrel_shifter_ge(16, bad)

    def test_cost_model_error_is_a_value_error(self):
        assert issubclass(CostModelError, ValueError)


class TestTechnologyPresets:
    def test_default_preset_is_65nm(self):
        model = TECHNOLOGY_PRESETS["65nm"]
        from repro.hw.cost import TechnologyParams

        assert model == TechnologyParams()
        assert technology("65nm") == model

    def test_unknown_node_rejected_with_known_list(self):
        with pytest.raises(CostModelError, match="28nm"):
            technology("7nm")

    def test_scaled_nodes_shrink_logic_faster_than_sram(self):
        base = technology("65nm")
        for node in ("45nm", "28nm"):
            tech = technology(node)
            logic_shrink = tech.um2_per_ge / base.um2_per_ge
            sram_shrink = tech.um2_per_sram_bit / base.um2_per_sram_bit
            assert logic_shrink < sram_shrink < 1.0

    def test_fp32_anchor_holds_at_every_node(self):
        """Calibration re-anchors the FP32 baseline at each corner; the
        interesting signal is the *relative* design costs."""
        for node in TECHNOLOGY_PRESETS:
            b = CostModel(technology(node)).evaluate("fp32", 1)
            assert b.area_mm2 == pytest.approx(FP32_BASELINE_AREA_MM2, rel=1e-9)
            assert b.power_mw == pytest.approx(FP32_BASELINE_POWER_MW, rel=1e-9)

    def test_sram_heavy_designs_cost_relatively_more_at_advanced_nodes(self):
        """SRAM scales worse than logic, so the buffer-dominated MF-DFP
        design keeps a larger fraction of the FP32 area at 28 nm."""
        area_65 = CostModel(technology("65nm")).evaluate("mfdfp", 1).area_mm2
        area_28 = CostModel(technology("28nm")).evaluate("mfdfp", 1).area_mm2
        assert area_28 > area_65


class TestNPUDesign:
    def test_bits8_bill_bit_identical_to_legacy_mfdfp(self, model):
        for pus in (1, 2):
            legacy = model.evaluate("mfdfp", pus)
            design = model.evaluate_design(NPUDesign(activation_bits=8, num_pus=pus))
            assert design.area_mm2 == legacy.area_mm2
            assert design.power_mw == legacy.power_mw
            assert design.raw_area_um2 == legacy.raw_area_um2
            assert design.raw_power_uw == legacy.raw_power_uw
            assert [(i.name, i.ge, i.sram_bits) for i in design.items] == [
                (i.name, i.ge, i.sram_bits) for i in legacy.items
            ]

    def test_cost_monotone_in_activation_bits(self, model):
        areas = [
            model.evaluate_design(NPUDesign(activation_bits=b)).area_mm2 for b in (4, 6, 8, 12, 16)
        ]
        assert all(a < b for a, b in zip(areas, areas[1:]))

    def test_validation(self):
        with pytest.raises(CostModelError):
            NPUDesign(activation_bits=0)
        with pytest.raises(CostModelError):
            NPUDesign(activation_bits=17)
        with pytest.raises(CostModelError):
            NPUDesign(num_pus=0)
        with pytest.raises(CostModelError):
            NPUDesign(activation_bits=2.5)

    def test_numpy_widths_normalized_to_python_ints(self):
        d = NPUDesign(activation_bits=np.int64(8), num_pus=np.int32(2))
        assert type(d.activation_bits) is int and d.activation_bits == 8
        assert type(d.num_pus) is int and d.num_pus == 2


class TestBaselineAnchors:
    def test_fp32_area_matches_paper_exactly(self, model):
        b = model.evaluate("fp32", 1)
        assert b.area_mm2 == pytest.approx(FP32_BASELINE_AREA_MM2, rel=1e-9)

    def test_fp32_power_matches_paper_exactly(self, model):
        b = model.evaluate("fp32", 1)
        assert b.power_mw == pytest.approx(FP32_BASELINE_POWER_MW, rel=1e-9)

    def test_fp32_savings_are_zero(self, model):
        area, power = model.savings_vs_baseline(model.evaluate("fp32", 1))
        assert area == pytest.approx(0.0)
        assert power == pytest.approx(0.0)


class TestMfdfpPredictions:
    def test_area_saving_in_paper_band(self, model):
        """Paper: 87.97% area saving.  The model's gate-ratio prediction
        must land within a few points of that."""
        area, _ = model.savings_vs_baseline(model.evaluate("mfdfp", 1))
        assert 85.0 < area < 91.0

    def test_power_saving_in_paper_band(self, model):
        """Paper: 89.79% power saving."""
        _, power = model.savings_vs_baseline(model.evaluate("mfdfp", 1))
        assert 87.0 < power < 92.0

    def test_area_close_to_paper_value(self, model):
        b = model.evaluate("mfdfp", 1)
        assert abs(b.area_mm2 - PAPER_TABLE1["mfdfp"]["area_mm2"]) < 0.4

    def test_power_close_to_paper_value(self, model):
        b = model.evaluate("mfdfp", 1)
        assert abs(b.power_mw - PAPER_TABLE1["mfdfp"]["power_mw"]) < 20.0


class TestEnsemblePredictions:
    def test_ensemble_nearly_doubles_single(self, model):
        single = model.evaluate("mfdfp", 1)
        double = model.evaluate("mfdfp", 2)
        assert 1.9 < double.area_mm2 / single.area_mm2 <= 2.0
        assert 1.9 < double.power_mw / single.power_mw <= 2.0

    def test_ensemble_savings_in_paper_band(self, model):
        """Paper: 76.0% area, 80.15% power for the 2-PU ensemble."""
        area, power = model.savings_vs_baseline(model.evaluate("mfdfp", 2))
        assert 72.0 < area < 80.0
        assert 77.0 < power < 83.0

    def test_monotone_in_pus(self, model):
        areas = [model.evaluate("mfdfp", n).area_mm2 for n in (1, 2, 3, 4)]
        assert all(a < b for a, b in zip(areas, areas[1:]))


class TestModelStructure:
    def test_unknown_precision_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate("int8", 1)

    def test_nonpositive_pus_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate("mfdfp", 0)

    def test_multipliers_dominate_fp32_area(self, model):
        b = model.evaluate("fp32", 1)
        fractions = b.item_area_fraction()
        assert fractions["pu0.multipliers"] > 0.3

    def test_buffers_dominate_mfdfp_area(self, model):
        """After removing multipliers, SRAM is the biggest piece."""
        b = model.evaluate("mfdfp", 1)
        fractions = b.item_area_fraction()
        logic = sum(v for k, v in fractions.items() if "buffers" not in k)
        assert fractions["pu0.buffers"] > 0.25
        assert fractions["pu0.buffers"] < logic  # but not everything

    def test_custom_buffers_change_cost(self, model):
        small = BufferConfig(input_words=1024, output_words=1024, weight_words=4096)
        a = model.evaluate("mfdfp", 1, small).area_mm2
        b = model.evaluate("mfdfp", 1).area_mm2
        assert a < b

    def test_mfdfp_weight_buffer_8x_narrower(self):
        fp = CostModel._fp32_buffers()
        mf = BufferConfig()
        assert fp.weight_bits == 8 * mf.weight_bits

    def test_area_power_positive(self, model):
        for precision in ("fp32", "mfdfp"):
            b = model.evaluate(precision, 1)
            assert b.area_mm2 > 0
            assert b.power_mw > 0
