"""65 nm cost model: Table 1 anchors, savings bands, scaling laws."""

import numpy as np
import pytest

from repro.hw.cost import (
    FP32_BASELINE_AREA_MM2,
    FP32_BASELINE_POWER_MW,
    PAPER_TABLE1,
    CostModel,
    barrel_shifter_ge,
    fp32_adder_ge,
    fp32_multiplier_ge,
    int_adder_ge,
    register_ge,
)
from repro.hw.memory import BufferConfig


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestComponentCounts:
    def test_fp32_multiplier_much_larger_than_shifter(self):
        assert fp32_multiplier_ge() > 50 * barrel_shifter_ge(16, 3)

    def test_fp32_adder_much_larger_than_int_adder(self):
        assert fp32_adder_ge() > 10 * int_adder_ge(20)

    def test_int_adder_linear_in_width(self):
        assert int_adder_ge(20) == 2 * int_adder_ge(10)

    def test_register_linear(self):
        assert register_ge(32) == 2 * register_ge(16)


class TestBaselineAnchors:
    def test_fp32_area_matches_paper_exactly(self, model):
        b = model.evaluate("fp32", 1)
        assert b.area_mm2 == pytest.approx(FP32_BASELINE_AREA_MM2, rel=1e-9)

    def test_fp32_power_matches_paper_exactly(self, model):
        b = model.evaluate("fp32", 1)
        assert b.power_mw == pytest.approx(FP32_BASELINE_POWER_MW, rel=1e-9)

    def test_fp32_savings_are_zero(self, model):
        area, power = model.savings_vs_baseline(model.evaluate("fp32", 1))
        assert area == pytest.approx(0.0)
        assert power == pytest.approx(0.0)


class TestMfdfpPredictions:
    def test_area_saving_in_paper_band(self, model):
        """Paper: 87.97% area saving.  The model's gate-ratio prediction
        must land within a few points of that."""
        area, _ = model.savings_vs_baseline(model.evaluate("mfdfp", 1))
        assert 85.0 < area < 91.0

    def test_power_saving_in_paper_band(self, model):
        """Paper: 89.79% power saving."""
        _, power = model.savings_vs_baseline(model.evaluate("mfdfp", 1))
        assert 87.0 < power < 92.0

    def test_area_close_to_paper_value(self, model):
        b = model.evaluate("mfdfp", 1)
        assert abs(b.area_mm2 - PAPER_TABLE1["mfdfp"]["area_mm2"]) < 0.4

    def test_power_close_to_paper_value(self, model):
        b = model.evaluate("mfdfp", 1)
        assert abs(b.power_mw - PAPER_TABLE1["mfdfp"]["power_mw"]) < 20.0


class TestEnsemblePredictions:
    def test_ensemble_nearly_doubles_single(self, model):
        single = model.evaluate("mfdfp", 1)
        double = model.evaluate("mfdfp", 2)
        assert 1.9 < double.area_mm2 / single.area_mm2 <= 2.0
        assert 1.9 < double.power_mw / single.power_mw <= 2.0

    def test_ensemble_savings_in_paper_band(self, model):
        """Paper: 76.0% area, 80.15% power for the 2-PU ensemble."""
        area, power = model.savings_vs_baseline(model.evaluate("mfdfp", 2))
        assert 72.0 < area < 80.0
        assert 77.0 < power < 83.0

    def test_monotone_in_pus(self, model):
        areas = [model.evaluate("mfdfp", n).area_mm2 for n in (1, 2, 3, 4)]
        assert all(a < b for a, b in zip(areas, areas[1:]))


class TestModelStructure:
    def test_unknown_precision_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate("int8", 1)

    def test_nonpositive_pus_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate("mfdfp", 0)

    def test_multipliers_dominate_fp32_area(self, model):
        b = model.evaluate("fp32", 1)
        fractions = b.item_area_fraction()
        assert fractions["pu0.multipliers"] > 0.3

    def test_buffers_dominate_mfdfp_area(self, model):
        """After removing multipliers, SRAM is the biggest piece."""
        b = model.evaluate("mfdfp", 1)
        fractions = b.item_area_fraction()
        logic = sum(v for k, v in fractions.items() if "buffers" not in k)
        assert fractions["pu0.buffers"] > 0.25
        assert fractions["pu0.buffers"] < logic  # but not everything

    def test_custom_buffers_change_cost(self, model):
        small = BufferConfig(input_words=1024, output_words=1024, weight_words=4096)
        a = model.evaluate("mfdfp", 1, small).area_mm2
        b = model.evaluate("mfdfp", 1).area_mm2
        assert a < b

    def test_mfdfp_weight_buffer_8x_narrower(self):
        fp = CostModel._fp32_buffers()
        mf = BufferConfig()
        assert fp.weight_bits == 8 * mf.weight_bits

    def test_area_power_positive(self, model):
        for precision in ("fp32", "mfdfp"):
            b = model.evaluate(precision, 1)
            assert b.area_mm2 > 0
            assert b.power_mw > 0
