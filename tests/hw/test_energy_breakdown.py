"""Per-layer energy breakdown."""

import numpy as np
import pytest

from repro.hw import Accelerator, AcceleratorConfig
from repro.zoo import cifar10_full


@pytest.fixture(scope="module")
def breakdown():
    acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
    return acc, acc.energy_breakdown(cifar10_full())


class TestEnergyBreakdown:
    def test_sums_to_total_energy(self, breakdown):
        acc, rows = breakdown
        total = sum(r["energy_uj"] for r in rows)
        assert total == pytest.approx(acc.energy_uj(cifar10_full()))

    def test_times_sum_to_latency(self, breakdown):
        acc, rows = breakdown
        total = sum(r["time_us"] for r in rows)
        assert total == pytest.approx(acc.latency_us(cifar10_full()))

    def test_one_row_per_scheduled_layer(self, breakdown):
        _, rows = breakdown
        names = [r["name"] for r in rows]
        assert names == ["conv1", "pool1", "conv2", "pool2", "conv3", "pool3", "ip1"]

    def test_conv2_dominates(self, breakdown):
        """conv2 has the most MACs in cifar10_full; it must dominate."""
        _, rows = breakdown
        by_name = {r["name"]: r["energy_uj"] for r in rows}
        assert by_name["conv2"] == max(by_name.values())

    def test_all_positive(self, breakdown):
        _, rows = breakdown
        assert all(r["energy_uj"] > 0 and r["cycles"] > 0 for r in rows)

    def test_works_on_deployed(self, rng):
        from repro.core.mfdfp import MFDFPNetwork
        from repro.zoo import cifar10_small

        net = cifar10_small(size=16, dtype=np.float64)
        dep = MFDFPNetwork.from_float(net, rng.normal(size=(4, 3, 16, 16))).deploy()
        acc = Accelerator(AcceleratorConfig(precision="mfdfp"))
        rows = acc.energy_breakdown(dep)
        assert sum(r["energy_uj"] for r in rows) == pytest.approx(acc.energy_uj(dep))
