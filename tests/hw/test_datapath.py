"""Bit-accurate datapath primitives: shifts, adder tree, rounding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.datapath import (
    CODE_MAX,
    DatapathOverflowError,
    accumulator_route,
    adder_tree,
    check_width,
    div_round_half_even,
    requantize_codes,
    rshift_round_half_even,
    saturate,
    shift_product,
)

codes_st = st.integers(-CODE_MAX, CODE_MAX)
exps_st = st.integers(-7, 0)
signs_st = st.sampled_from([-1, 1])


class TestCheckWidth:
    def test_accepts_in_range(self):
        check_width(np.array([-32768, 32767]), 16, "test")

    def test_rejects_overflow(self):
        with pytest.raises(DatapathOverflowError):
            check_width(np.array([32768]), 16, "test")
        with pytest.raises(DatapathOverflowError):
            check_width(np.array([-32769]), 16, "test")

    def test_empty_ok(self):
        check_width(np.array([]), 8, "test")


class TestShiftProduct:
    def test_equals_real_multiplication(self):
        """(s*x) << (7+e) represents x * s*2^e on the 2^-(m+7) grid."""
        x = np.array([100, -50, 3])
        s = np.array([1, -1, 1])
        e = np.array([0, -3, -7])
        products = shift_product(x, s, e)
        real = x * (s * np.exp2(e.astype(float)))
        assert np.allclose(products, real * 2.0**7)

    def test_never_overflows_16_bits(self):
        """Worst case |x|=127, e=0: 127 << 7 = 16256 < 2^15."""
        products = shift_product(np.array([127, -127]), np.array([1, -1]), np.array([0, 0]))
        assert np.array_equal(products, [16256, 16256])

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError):
            shift_product(np.array([128]), np.array([1]), np.array([0]))

    def test_rejects_bad_exponents(self):
        with pytest.raises(ValueError):
            shift_product(np.array([1]), np.array([1]), np.array([1]))
        with pytest.raises(ValueError):
            shift_product(np.array([1]), np.array([1]), np.array([-8]))

    @given(
        x=st.lists(codes_st, min_size=1, max_size=32),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_exact_and_16bit(self, x, seed):
        rng = np.random.default_rng(seed)
        x = np.array(x)
        s = rng.choice([-1, 1], size=x.shape)
        e = rng.integers(-7, 1, size=x.shape)
        products = shift_product(x, s, e)
        assert np.allclose(products, x * s * np.exp2(e + 7.0))
        check_width(products, 16, "products")  # must never raise


class TestAdderTree:
    def test_simple_sum(self):
        products = np.arange(16)
        assert adder_tree(products) == products.sum()

    def test_batched(self, rng):
        products = rng.integers(-16000, 16000, size=(5, 3, 16))
        out = adder_tree(products)
        assert np.array_equal(out, products.sum(axis=-1))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            adder_tree(np.zeros(8))

    def test_input_overflow_detected(self):
        bad = np.zeros(16, dtype=np.int64)
        bad[0] = 1 << 16
        with pytest.raises(DatapathOverflowError):
            adder_tree(bad)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=200, deadline=None)
    def test_property_no_level_overflow_for_legal_inputs(self, seed):
        """The widening 16->20 bit tree cannot overflow for any legal
        product inputs — the paper's 'no loss in intermediate values'."""
        rng = np.random.default_rng(seed)
        x = rng.integers(-CODE_MAX, CODE_MAX + 1, size=16)
        s = rng.choice([-1, 1], size=16)
        e = rng.integers(-7, 1, size=16)
        products = shift_product(x, s, e)
        out = adder_tree(products, check_widths=True)  # raises on overflow
        assert out == products.sum()

    def test_extreme_all_max_inputs(self):
        """All 16 products at the extreme +/-16256 still fit every level."""
        for sign in (1, -1):
            products = np.full(16, sign * 16256, dtype=np.int64)
            out = adder_tree(products)
            assert out == sign * 16256 * 16
            check_width(np.array([out]), 20, "root")


class TestRounding:
    @given(v=st.integers(-(2**40), 2**40), shift=st.integers(0, 20))
    @settings(max_examples=300, deadline=None)
    def test_rshift_matches_rint(self, v, shift):
        got = rshift_round_half_even(np.array([v]), shift)[0]
        want = np.rint(v / 2.0**shift) if shift < 53 else None
        assert got == int(want)

    def test_negative_shift_is_left_shift(self):
        assert rshift_round_half_even(np.array([3]), -2)[0] == 12

    def test_ties_to_even(self):
        assert rshift_round_half_even(np.array([1]), 1)[0] == 0   # 0.5 -> 0
        assert rshift_round_half_even(np.array([3]), 1)[0] == 2   # 1.5 -> 2
        assert rshift_round_half_even(np.array([-1]), 1)[0] == 0  # -0.5 -> 0
        assert rshift_round_half_even(np.array([-3]), 1)[0] == -2  # -1.5 -> -2

    @given(num=st.integers(-(2**40), 2**40), den=st.integers(1, 1000))
    @settings(max_examples=300, deadline=None)
    def test_div_matches_rint(self, num, den):
        got = div_round_half_even(np.array([num]), den)[0]
        # exact rational tie detection
        q, r = divmod(num, den)
        if 2 * r == den:
            want = q if q % 2 == 0 else q + 1
        else:
            want = q + (1 if 2 * r > den else 0)
        assert got == want

    def test_div_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            div_round_half_even(np.array([1]), 0)

    def test_div_array_denominator(self):
        out = div_round_half_even(np.array([10, 10]), np.array([2, 5]))
        assert np.array_equal(out, [5, 2])


class TestSaturateAndRoute:
    def test_saturate(self):
        assert np.array_equal(saturate(np.array([200, -200, 5])), [127, -127, 5])

    def test_requantize_coarser(self):
        # value 16 at f=4 (i.e. 1.0) -> f=2 -> code 4
        assert requantize_codes(np.array([16]), 4, 2)[0] == 4

    def test_requantize_finer_saturates(self):
        # code 127 at f=0 -> f=2 would need 508: saturate at 127
        assert requantize_codes(np.array([127]), 0, 2)[0] == 127

    def test_route_relu_zeroes_negative_accumulator(self):
        out = accumulator_route(np.array([-5000, 5000]), acc_frac=10, out_frac=3, activation="relu")
        assert out[0] == 0
        assert out[1] > 0

    def test_route_none_keeps_negative(self):
        out = accumulator_route(np.array([-5000]), acc_frac=10, out_frac=3, activation="none")
        assert out[0] < 0

    def test_route_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            accumulator_route(np.array([1]), 10, 3, activation="tanh")

    def test_route_matches_float_reference(self, rng):
        """Route == quantize(value) computed in floats."""
        m, n = 4, 2
        acc = rng.integers(-(2**20), 2**20, size=100)
        out = accumulator_route(acc, m + 7, n, "none")
        real = acc / 2.0 ** (m + 7)
        want = np.clip(np.rint(real * 2.0**n), -127, 127)
        assert np.array_equal(out, want.astype(np.int64))
