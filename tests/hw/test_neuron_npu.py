"""Neuron and processing-unit models vs a float reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.neuron import Neuron
from repro.hw.npu import NeuralProcessingUnit, ProcessingUnit


def reference_output(x_codes, w_sign, w_exp, bias_int, m, n, activation):
    """Float-domain reference of a quantized dot product."""
    x = np.asarray(x_codes, dtype=np.float64) * 2.0**-m
    w = np.asarray(w_sign) * np.exp2(np.asarray(w_exp, dtype=np.float64))
    acc = (x * w).sum() + bias_int * 2.0 ** -(m + 7)
    if activation == "relu":
        acc = max(acc, 0.0)
    return int(np.clip(np.rint(acc * 2.0**n), -127, 127))


def random_case(rng, synapses):
    x = rng.integers(-127, 128, size=synapses)
    s = rng.choice([-1, 1], size=synapses)
    e = rng.integers(-7, 1, size=synapses)
    bias = int(rng.integers(-(2**12), 2**12))
    return x, s, e, bias


class TestNeuron:
    def test_requires_16_synapses(self):
        with pytest.raises(ValueError):
            Neuron(num_synapses=8)

    def test_single_chunk_matches_reference(self, rng):
        neuron = Neuron()
        x, s, e, bias = random_case(rng, 16)
        out = neuron.compute_output(x, s, e, bias, m=4, n=4, activation="none")
        assert out == reference_output(x, s, e, bias, 4, 4, "none")

    @pytest.mark.parametrize("synapses", [3, 16, 17, 75, 100])
    def test_chunked_dot_product_matches_reference(self, rng, synapses):
        neuron = Neuron()
        x, s, e, bias = random_case(rng, synapses)
        out = neuron.compute_output(x, s, e, bias, m=3, n=5, activation="relu")
        assert out == reference_output(x, s, e, bias, 3, 5, "relu")

    @given(seed=st.integers(0, 2**16), m=st.integers(0, 7), n=st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_property_always_matches_reference(self, seed, m, n):
        rng = np.random.default_rng(seed)
        synapses = int(rng.integers(1, 64))
        neuron = Neuron()
        x, s, e, bias = random_case(rng, synapses)
        for act in ("none", "relu"):
            got = neuron.compute_output(x, s, e, bias, m, n, act)
            assert got == reference_output(x, s, e, bias, m, n, act)

    def test_accumulate_shape_check(self):
        neuron = Neuron()
        with pytest.raises(ValueError):
            neuron.accumulate(np.zeros(8), np.ones(8), np.zeros(8))

    def test_reset_clears_accumulator(self, rng):
        neuron = Neuron()
        x, s, e, _ = random_case(rng, 16)
        neuron.accumulate(x, s, e)
        neuron.reset()
        assert neuron.acc == 0

    def test_bias_preloaded(self):
        neuron = Neuron()
        neuron.load_bias(1024)  # = 1.0 at m+7 = 10
        assert neuron.emit(m=3, n=3, activation="none") == 8  # 1.0 * 2^3


class TestProcessingUnit:
    def test_tile_matches_16_independent_neurons(self, rng):
        pu = ProcessingUnit()
        k = 40
        x = rng.integers(-127, 128, size=k)
        s = rng.choice([-1, 1], size=(16, k))
        e = rng.integers(-7, 1, size=(16, k))
        bias = rng.integers(-(2**10), 2**10, size=16)
        out = pu.compute_tile(x, s, e, bias, m=4, n=4, activation="relu")
        for i in range(16):
            want = reference_output(x, s[i], e[i], int(bias[i]), 4, 4, "relu")
            assert out[i] == want

    def test_weight_shape_validated(self, rng):
        pu = ProcessingUnit()
        with pytest.raises(ValueError):
            pu.compute_tile(
                np.zeros(10, dtype=int),
                np.ones((16, 9), dtype=int),
                np.zeros((16, 9), dtype=int),
                np.zeros(16, dtype=int),
                0,
                0,
            )

    def test_bias_shape_validated(self):
        pu = ProcessingUnit()
        with pytest.raises(ValueError):
            pu.load_bias(np.zeros(4, dtype=int))

    def test_cycle_weight_shape_validated(self):
        pu = ProcessingUnit()
        with pytest.raises(ValueError):
            pu.cycle(np.zeros(16, dtype=int), np.ones((8, 16), dtype=int), np.zeros((8, 16), dtype=int))


class TestNPU:
    def test_pu_count(self):
        assert NeuralProcessingUnit(num_pus=2).num_pus == 2

    def test_requires_positive_pus(self):
        with pytest.raises(ValueError):
            NeuralProcessingUnit(num_pus=0)

    def test_pus_are_independent(self, rng):
        npu = NeuralProcessingUnit(num_pus=2)
        x, s, e, _ = random_case(rng, 16)
        npu.processing_units[0].cycle(x, np.tile(s, (16, 1)), np.tile(e, (16, 1)))
        assert all(n.acc == 0 for n in npu.processing_units[1].neurons)
